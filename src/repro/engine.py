"""The columnar-first query facade: build/load/save and plan execution.

:class:`SpatialEngine` is the library's single public entry point for
serving spatial workloads.  It owns the index lifecycle — build from a
dataset (:meth:`SpatialEngine.build`), restore from a snapshot
(:meth:`SpatialEngine.load`), the build-once/serve-many combination of both
(:meth:`SpatialEngine.open`), persist (:meth:`SpatialEngine.save`) — and it
executes the typed query plans of :mod:`repro.query` through one dispatch:

    engine = SpatialEngine.build("wazi", points, workload, seed=1)
    hits   = engine.execute(RangeQuery(rect))                  # lazy ResultSet
    n      = engine.execute(RangeQuery(rect), count_only=True) # int, no boxing
    firsts = engine.execute_many(plans, limit=10)

``execute_many`` recognises homogeneous plan lists and routes them through
the index's amortised batch entry points (``batch_range_query`` /
``batch_knn`` / ``batch_radius_query`` and their count-only twins), which
the Z-index family answers on its flat coordinate columns.  ``count_only``
and array-consuming executions on that family never box a single
:class:`~repro.geometry.Point`.

Beyond plan execution, the engine owns the **adaptive lifecycle** that
makes "workload-aware" a runtime property instead of a build flag:

* **observe** — ``SpatialEngine.build(..., record=True)`` (or the
  ``engine.recording():`` context manager) attaches a columnar
  :class:`~repro.workload_log.WorkloadLog` that appends every executed
  range / kNN / radius plan, cheaply enough to leave on in production;
* **advise** — :meth:`SpatialEngine.advise` scores the current layout
  against the observed (or a given) workload with a measured count-only
  replay plus the density estimators, returning a
  :class:`~repro.analysis.tuning.TuningReport`;
* **adapt** — :meth:`SpatialEngine.adapt` re-derives the layout from the
  observed workload and atomically hot-swaps the index underneath running
  queries (retained result sets stay valid through the generation-counter
  boxers), and :meth:`SpatialEngine.save` persists the observed history
  alongside the structure so :meth:`SpatialEngine.open` restores both.

The engine also keeps the free-function era working: ``build_index`` and
``build_or_load_index`` live here as the canonical implementations and are
re-exported by :mod:`repro.api` as deprecation shims.
"""

# repro-lint: public-api
from __future__ import annotations

import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.baselines import (
    CURTree,
    FloodIndex,
    KDTreeIndex,
    QuadTreeIndex,
    QUASIIIndex,
    RTree,
    STRRTree,
    ZPGMIndex,
)
from repro.core import BaseWithSkipping, WaZI, WaZIWithoutSkipping
from repro.geometry import Point, Rect, points_to_arrays
from repro.interfaces import SpatialIndex
from repro.persistence import (
    KIND_REBUILD,
    KIND_ZINDEX,
    SnapshotError,
    dataset_fingerprint,
    load_snapshot,
    load_snapshot_with_history,
    read_container,
    read_manifest,
    rects_from_array,
    rects_to_array,
    save_rebuild_snapshot,
    save_snapshot,
    workload_fingerprint,
)
from repro.obs.instrument import EngineMetrics, OnlineMetrics, plan_kind
from repro.online import MaintenanceLoop, MaintenancePolicy, OnlineIndex
from repro.persistence.snapshot import json_clone
from repro.plancache import MISS, PlanCache
from repro.query import JoinQuery, KnnQuery, PointQuery, Query, RadiusQuery, RangeQuery
from repro.results import ResultSet
from repro.workload_log import WorkloadLog
from repro.workloads.workload import Workload
from repro.zindex import BaseZIndex, ZIndex

__all__ = [
    "INDEX_NAMES",
    "SpatialEngine",
    "as_engine",
    "build_index",
    "build_or_load_index",
]

#: Accepted aliases for the Z-index ablation variants (shared between
#: :func:`build_index` dispatch and the snapshot-matching table, so the two
#: can never drift apart).
_WAZI_SK_ALIASES = ("wazi-sk", "wazi_nosk", "wazi-noskip")
_BASE_SK_ALIASES = ("base+sk", "base_sk", "basesk")

#: Index names accepted by :func:`build_index` /
#: :meth:`SpatialEngine.build`.  Workload-aware indexes use the
#: ``workload`` argument; the rest ignore it.
INDEX_NAMES = (
    "wazi",
    "wazi-sk",
    "base",
    "base+sk",
    "str",
    "cur",
    "flood",
    "quasii",
    "zpgm",
    "rtree",
    "quadtree",
    "kdtree",
)


def build_index(
    name: str,
    points: Sequence[Point],
    workload: Sequence[Rect] = (),
    *,
    leaf_capacity: int = 64,
    seed: Optional[int] = 0,
    **kwargs,
) -> SpatialIndex:
    """Build any index in the library by name.

    Parameters
    ----------
    name:
        One of :data:`INDEX_NAMES` (case-insensitive).
    points:
        The dataset.
    workload:
        Anticipated range queries; required for the workload-aware indexes
        (``wazi``, ``wazi-sk``, ``cur``, ``flood``, ``quasii``) to have any
        effect, ignored by the others.
    leaf_capacity:
        Page size ``L`` (or the grid cell target for Flood).
    seed:
        Seed for the learned / randomised components.  ``None`` is
        forwarded verbatim to every workload-aware index (earlier revisions
        silently coerced it to ``0`` for Flood only).
    kwargs:
        Forwarded to the index constructor for index-specific options.
    """
    key = name.lower()
    if key == "wazi":
        return WaZI(points, workload, leaf_capacity=leaf_capacity, seed=seed, **kwargs)
    if key in _WAZI_SK_ALIASES:
        return WaZIWithoutSkipping(points, workload, leaf_capacity=leaf_capacity, seed=seed, **kwargs)
    if key == "base":
        return BaseZIndex(points, leaf_capacity=leaf_capacity, **kwargs)
    if key in _BASE_SK_ALIASES:
        return BaseWithSkipping(points, leaf_capacity=leaf_capacity, **kwargs)
    if key == "str":
        return STRRTree(points, leaf_capacity=leaf_capacity, **kwargs)
    if key == "cur":
        return CURTree(points, workload, leaf_capacity=leaf_capacity, **kwargs)
    if key == "flood":
        return FloodIndex(points, workload, cell_target=leaf_capacity, seed=seed, **kwargs)
    if key == "quasii":
        return QUASIIIndex(points, workload, **kwargs)
    if key == "zpgm":
        return ZPGMIndex(points, leaf_capacity=leaf_capacity, **kwargs)
    if key == "rtree":
        return RTree(points, leaf_capacity=leaf_capacity, **kwargs)
    if key == "quadtree":
        return QuadTreeIndex(points, leaf_capacity=leaf_capacity, **kwargs)
    if key == "kdtree":
        return KDTreeIndex(points, leaf_capacity=leaf_capacity, **kwargs)
    raise ValueError(f"Unknown index name {name!r}; expected one of {INDEX_NAMES}")


#: What a structural snapshot of each Z-index-family build name reports as
#: its index name, used to check that an existing snapshot actually stores
#: the index a caller is asking for.  Derived from the shared alias tuples
#: and the classes' own ``name`` attributes (the value ``save_snapshot``
#: records), so new aliases or renamed classes cannot desync the probe.
_ZINDEX_SNAPSHOT_NAMES = {
    "wazi": WaZI.name,
    "base": BaseZIndex.name,
    **{alias: WaZIWithoutSkipping.name for alias in _WAZI_SK_ALIASES},
    **{alias: BaseWithSkipping.name for alias in _BASE_SK_ALIASES},
}


def _encode_build_request(name, workload, seed, kwargs, adapted: bool = False) -> Optional[Dict]:
    """The JSON record of a build request stored in structural manifests.

    Returns ``None`` when the request cannot be represented (non-JSON
    kwargs); a ``None`` request never matches a stored one, forcing a
    rebuild.  ``adapted`` marks a layout re-derived from observed traffic
    by :meth:`SpatialEngine.adapt`; matching then ignores the build-time
    workload and seed (the observed layout supersedes them).
    """
    encoded_kwargs = json_clone(kwargs or {})
    if encoded_kwargs is None:
        return None
    request = {
        "name": str(name).lower(),
        "seed": None if seed is None else int(seed),
        "num_queries": len(workload or ()),
        "workload_fingerprint": workload_fingerprint(rects_to_array(workload or ())),
        "kwargs": encoded_kwargs,
    }
    if adapted:
        request["adapted"] = True
    return request


def _snapshot_matches_request(
    path, name, points, leaf_capacity, seed, workload=None, kwargs=None
) -> bool:
    """Whether the snapshot at ``path`` plausibly stores the requested index.

    A manifest-only probe (no array reads): the index/build name, the
    dataset (via an order-insensitive content fingerprint, so a regenerated
    same-size dataset is detected) and leaf capacity must match the
    request — plus, for rebuild recipes, everything else the manifest
    records (seed, workload content, extra build kwargs).  Structural
    Z-index snapshots carry the same information in the ``build_request``
    section the helper records at save time; snapshots saved through bare
    ``save_snapshot`` lack it and are conservatively rebuilt.
    """
    try:
        manifest = read_manifest(path)
    except SnapshotError:
        return False
    key = name.lower()
    kind = manifest.get("kind")
    if kind == KIND_ZINDEX:
        info = manifest.get("index") or {}
        expected = _ZINDEX_SNAPSHOT_NAMES.get(key)
        if expected is None or info.get("name") != expected:
            return False
        # The structure does not retain its build arguments, so the helper
        # records them as a build_request section at save time; a snapshot
        # without one (saved through bare save_snapshot) cannot be verified
        # against this request and is rebuilt.
        recorded = manifest.get("build_request")
        if not isinstance(recorded, dict):
            return False
        expected_request = _encode_build_request(name, workload, seed, kwargs)
        if expected_request is None:
            return False
        adapted = bool(recorded.get("adapted"))
        if adapted:
            # An adapted snapshot's layout was re-derived from *observed*
            # traffic, superseding any build-time workload/seed — and its
            # page granularity, which adapt() retunes from observed result
            # sizes.  Serving it is the whole point, so only the identity
            # of the request (index name, extra kwargs) and of the dataset
            # below is verified.
            if (
                recorded.get("name") != expected_request["name"]
                or recorded.get("kwargs") != expected_request["kwargs"]
            ):
                return False
        elif recorded != expected_request:
            return False
        return (
            info.get("num_points") == len(points)
            and (adapted or info.get("leaf_capacity") == leaf_capacity)
            and info.get("dataset_fingerprint") == dataset_fingerprint(
                *points_to_arrays(points)
            )
        )
    if kind == KIND_REBUILD:
        build = manifest.get("build") or {}
        if str(build.get("name", "")).lower() != key:
            return False
        encoded_kwargs = json_clone(kwargs or {})
        if encoded_kwargs is None:
            return False  # unstorable kwargs can never match a stored recipe
        adapted = bool(build.get("adapted"))
        return (
            build.get("num_points") == len(points)
            and (adapted or build.get("leaf_capacity") == leaf_capacity)
            # An adapted recipe replays the *observed* workload (and kept
            # its own seed); the caller's build-time workload/seed are
            # superseded, mirroring the structural-snapshot rule above.
            and (
                adapted
                or build.get("seed") == (None if seed is None else int(seed))
            )
            and (
                adapted
                or workload is None
                or (
                    build.get("num_queries") == len(workload)
                    and build.get("workload_fingerprint")
                    == workload_fingerprint(rects_to_array(workload))
                )
            )
            and (build.get("kwargs") or {}) == encoded_kwargs
            and build.get("dataset_fingerprint") == dataset_fingerprint(
                *points_to_arrays(points)
            )
        )
    return False


def build_or_load_index(
    name: str,
    points: Sequence[Point],
    workload: Sequence[Rect] = (),
    *,
    snapshot_path: Union[str, Path],
    leaf_capacity: int = 64,
    seed: Optional[int] = 0,
    rebuild: bool = False,
    _factory=None,
    **kwargs,
) -> SpatialIndex:
    """Build-once / serve-many: load a snapshot if present, else build and save.

    The deployment helper for the paper's offline-build workflow.  When
    ``snapshot_path`` exists (and ``rebuild`` is false) the index is
    restored from it — an O(n) load for the Z-index family, a deterministic
    replay of the build recipe for the rest of the zoo.  A snapshot whose
    manifest does not match the request (different index name, point
    count, leaf capacity — or seed, workload content and extra kwargs, for
    rebuild recipes), or that is unreadable or version-incompatible,
    silently falls back to a fresh build that overwrites it.  Snapshots
    written by this helper record the full build request (seed, workload
    fingerprint, extra kwargs) so any change to it is detected; snapshots
    saved through bare :func:`save_snapshot` lack that record and are
    conservatively rebuilt.  Otherwise the index is built with
    :func:`build_index` and the snapshot is written for the next process.

    For non-Z-index names the ``kwargs`` must be JSON-serialisable (they
    travel in the rebuild recipe's manifest).
    """
    path = Path(snapshot_path)
    if path.exists() and not rebuild:
        if _snapshot_matches_request(
            path, name, points, leaf_capacity, seed,
            workload=workload, kwargs=kwargs,
        ):
            try:
                return load_snapshot(path)
            except SnapshotError:
                pass  # stale/corrupt snapshot: rebuild and overwrite below
    factory = build_index if _factory is None else _factory
    index = factory(
        name, points, workload, leaf_capacity=leaf_capacity, seed=seed, **kwargs
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    if isinstance(index, ZIndex):
        save_snapshot(
            index, path,
            build_request=_encode_build_request(name, workload, seed, kwargs),
        )
    else:
        save_rebuild_snapshot(
            name, points, path,
            workload=workload, leaf_capacity=leaf_capacity, seed=seed, **kwargs,
        )
    return index


def _make_recipe(index, name, points, workload, leaf_capacity, seed, kwargs) -> Dict:
    """The build request an engine remembers for :meth:`SpatialEngine.save`.

    For the Z-index family ``save`` writes a structural snapshot and only
    needs the request metadata (name, workload, seed, kwargs); the dataset
    itself is recorded only for the rebuild-recipe zoo, so a
    build-once/serve-many Z-index engine never pins the boxed point list.
    """
    return {
        "name": name,
        "points": None if isinstance(index, ZIndex) else points,
        "workload": list(workload),
        "leaf_capacity": leaf_capacity,
        "seed": seed,
        "kwargs": dict(kwargs),
        "adapted": False,
    }


#: Reverse lookup from an index's ``name`` attribute (what snapshots
#: record) back to a :func:`build_index` key, so an engine restored with
#: :meth:`SpatialEngine.load` can still :meth:`~SpatialEngine.adapt`.
_BUILD_KEY_BY_INDEX_NAME = {
    WaZI.name: "wazi",
    WaZIWithoutSkipping.name: "wazi-sk",
    BaseZIndex.name: "base",
    BaseWithSkipping.name: "base+sk",
    ZIndex.name: "base",
}


def _recipe_from_loaded_index(index) -> Optional[Dict]:
    """A minimal adapt-capable recipe for a snapshot-restored Z-index.

    Structural snapshots do not retain build arguments, but the restored
    structure knows its name, points and leaf capacity — enough to
    re-derive a layout from an observed workload.  Non-Z-index loads
    (rebuild recipes) return ``None``; such engines cannot ``save``/
    ``adapt`` without a recipe, matching the pre-lifecycle behaviour of
    :meth:`SpatialEngine.load`.
    """
    if not isinstance(index, ZIndex):
        return None
    key = _BUILD_KEY_BY_INDEX_NAME.get(getattr(index, "name", None))
    if key is None:
        return None
    return {
        "name": key,
        "points": None,
        "workload": [],
        "leaf_capacity": index.leaf_capacity,
        "seed": 0,
        "kwargs": {},
        "adapted": False,
    }


def _adapted_recipe_from_snapshot(path, index, name, points, kwargs) -> Optional[Dict]:
    """The recipe of a *served adapted* snapshot, or ``None``.

    When :meth:`SpatialEngine.open` serves a snapshot whose layout was
    re-derived from observed traffic, the engine's recipe must describe
    that layout — its retuned page size, its observed workload, its
    ``adapted`` mark — not the caller's build-time request.  Otherwise the
    next ``save`` would record a non-adapted request with the stale
    parameters, and the open → save → open cycle would silently revert
    the adaptation and drop the observed history.  Returns ``None`` when
    the snapshot is missing, unreadable, or not adapted (including the
    case where ``open`` just rebuilt it fresh).
    """
    try:
        manifest = read_manifest(path)
    except (SnapshotError, OSError):
        return None
    kind = manifest.get("kind")
    if kind == KIND_ZINDEX:
        recorded = manifest.get("build_request")
        if not (isinstance(recorded, dict) and recorded.get("adapted")):
            return None
        # The structure itself is what save() persists, so the recipe only
        # needs the request metadata; the workload that derived the layout
        # is not retained by structural snapshots (mirroring adapt()).
        return {
            "name": name,
            "points": None,
            "workload": [],
            "leaf_capacity": getattr(
                index, "leaf_capacity",
                (manifest.get("index") or {}).get("leaf_capacity"),
            ),
            "seed": recorded.get("seed"),
            "kwargs": dict(kwargs),
            "adapted": True,
        }
    if kind == KIND_REBUILD:
        build = manifest.get("build") or {}
        if not build.get("adapted"):
            return None
        try:
            _, arrays = read_container(path)
            workload = rects_from_array(arrays["workload_rects"])
        except (SnapshotError, OSError, KeyError):
            return None
        # Re-saving must replay the *adapted* workload, not the caller's.
        return {
            "name": name,
            "points": list(points),
            "workload": workload,
            "leaf_capacity": build.get("leaf_capacity", 64),
            "seed": build.get("seed"),
            "kwargs": dict(kwargs),
            "adapted": True,
        }
    return None


def _read_history(path):
    """The workload history embedded in a snapshot, or ``None``.

    Tolerant probe used by :meth:`SpatialEngine.open`: a missing or
    history-less (or even unreadable — ``open`` may have just rebuilt over
    it) snapshot simply yields no history.
    """
    from repro.persistence.snapshot import load_workload_history

    try:
        return load_workload_history(path)
    except (SnapshotError, OSError):
        return None


def _as_plan_cache(
    plan_cache: Union[None, bool, int, "PlanCache"]
) -> Optional[PlanCache]:
    """Normalize the ``plan_cache`` constructor argument to a cache or None."""
    if plan_cache is None or plan_cache is False:
        return None
    if plan_cache is True:
        return PlanCache()
    if isinstance(plan_cache, PlanCache):
        return plan_cache
    if isinstance(plan_cache, int):
        return PlanCache(capacity=plan_cache)
    raise TypeError(
        f"plan_cache must be None, bool, int or PlanCache, "
        f"got {type(plan_cache).__name__}"
    )


class SpatialEngine:
    """Facade owning one index's lifecycle and executing query plans on it.

    Wraps any :class:`~repro.interfaces.SpatialIndex` (an existing one, or
    one produced by the :meth:`build` / :meth:`load` / :meth:`open`
    constructors) and exposes:

    * ``execute(plan, *, count_only=False, limit=None)`` — run one typed
      plan from :mod:`repro.query`,
    * ``execute_many(plans, ...)`` — run a workload, batched through the
      index's amortised entry points when the plans are homogeneous,
    * ``save(path)`` — persist (structural snapshot for the Z-index
      family, build-recipe snapshot for the rest when the engine knows the
      recipe),
    * the full index protocol (``range_query``, ``knn``, ``insert``,
      counters, …) by delegation, so the engine can stand in for a bare
      index anywhere in the library.

    ``count_only`` executions return plain ``int`` counts; on the columnar
    Z-index family they are answered entirely on the coordinate columns
    (no ``Point`` is ever boxed).  ``limit`` truncates each result to its
    first ``limit`` rows in result order, staying columnar.
    """

    def __init__(
        self,
        index: SpatialIndex,
        *,
        record: bool = False,
        plan_cache: Union[None, bool, int, PlanCache] = None,
        metrics=None,
        _recipe: Optional[Dict] = None,
        _workload_log: Optional[WorkloadLog] = None,
        _build_seconds: Optional[float] = None,
    ) -> None:
        if not isinstance(index, SpatialIndex):
            raise TypeError(
                f"SpatialEngine wraps a SpatialIndex, got {type(index).__name__}"
            )
        self.index = index
        #: The observability sink (see :mod:`repro.obs`), or ``None`` (the
        #: default — execution pays nothing).  Accepts a MetricsRegistry
        #: (an :class:`~repro.obs.instrument.EngineMetrics` adapter is
        #: created over it) or a ready-made adapter.
        self.metrics: Optional[EngineMetrics] = None
        if metrics is not None:
            self.attach_metrics(metrics)
        #: The query-plan cache (see :mod:`repro.plancache`), or ``None``
        #: (the default — repeats re-execute, counters count every query).
        #: ``plan_cache=True`` attaches one with the default capacity, an
        #: ``int`` sets the capacity, and a :class:`PlanCache` instance is
        #: adopted as-is (sharable between engines serving the same index).
        self.plan_cache = _as_plan_cache(plan_cache)
        #: The build request, when this engine built the index itself —
        #: lets :meth:`save` write rebuild recipes for the non-Z-index zoo.
        self._recipe = _recipe
        #: The observe stage: a columnar log of executed plans (or None).
        self.workload_log: Optional[WorkloadLog] = _workload_log
        if record and self.workload_log is None:
            self.workload_log = WorkloadLog()
        self._recording = bool(record)
        #: Wall-clock seconds of the last build/adapt this engine ran
        #: itself; feeds the advise stage's break-even arithmetic.
        self._build_seconds = _build_seconds
        #: The maintenance loop while the engine is online (see
        #: :meth:`online`), or ``None``.
        self._online_loop: Optional[MaintenanceLoop] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        name: str,
        points: Sequence[Point],
        workload: Sequence[Rect] = (),
        *,
        leaf_capacity: int = 64,
        seed: Optional[int] = 0,
        record: bool = False,
        plan_cache: Union[None, bool, int, PlanCache] = None,
        metrics=None,
        **kwargs,
    ) -> "SpatialEngine":
        """Build an index by name (see :data:`INDEX_NAMES`) and wrap it.

        ``record=True`` attaches a :class:`~repro.workload_log.WorkloadLog`
        and starts the observe stage immediately: every executed range /
        kNN / radius plan is appended to the log.
        """
        start = time.perf_counter()
        index = build_index(
            name, points, workload, leaf_capacity=leaf_capacity, seed=seed, **kwargs
        )
        build_seconds = time.perf_counter() - start
        return cls(
            index, record=record, plan_cache=plan_cache, metrics=metrics,
            _recipe=_make_recipe(
                index, name, points, workload, leaf_capacity, seed, kwargs
            ),
            _build_seconds=build_seconds,
        )

    @classmethod
    def load(
        cls,
        path: Union[str, Path],
        *,
        record: bool = False,
        mmap: bool = False,
        validate: bool = True,
        plan_cache: Union[None, bool, int, PlanCache] = None,
        metrics=None,
    ) -> "SpatialEngine":
        """Restore an engine from a snapshot written by :meth:`save`.

        A workload history embedded in the snapshot is restored into the
        engine's log (recording resumes only with ``record=True``), and a
        Z-index snapshot yields an engine that can :meth:`adapt` — the
        recipe is reconstructed from what the snapshot records.

        ``mmap=True`` maps the snapshot's columns zero-copy instead of
        reading them (Z-index snapshots only; see ``docs/PERSISTENCE.md``),
        and ``validate=False`` skips the O(n) bbox cross-check on open —
        the serving-path combination.
        """
        index, history = load_snapshot_with_history(path, mmap=mmap, validate=validate)
        log = WorkloadLog.from_workload(history) if history is not None else None
        return cls(
            index, record=record, plan_cache=plan_cache, metrics=metrics,
            _workload_log=log, _recipe=_recipe_from_loaded_index(index),
        )

    @classmethod
    def open(
        cls,
        name: str,
        points: Sequence[Point],
        workload: Sequence[Rect] = (),
        *,
        snapshot_path: Union[str, Path],
        leaf_capacity: int = 64,
        seed: Optional[int] = 0,
        rebuild: bool = False,
        record: bool = False,
        plan_cache: Union[None, bool, int, PlanCache] = None,
        metrics=None,
        **kwargs,
    ) -> "SpatialEngine":
        """Build-once / serve-many (see :func:`build_or_load_index`).

        When the snapshot at ``snapshot_path`` is served (including one
        written after :meth:`adapt` — its re-derived layout supersedes the
        requested ``workload``), any observed-workload history embedded in
        it is restored too, so the adaptive loop resumes where the saving
        process left off.  ``record=True`` (re)starts recording either way.
        """
        start = time.perf_counter()
        index = build_or_load_index(
            name, points, workload,
            snapshot_path=snapshot_path, leaf_capacity=leaf_capacity,
            seed=seed, rebuild=rebuild, **kwargs,
        )
        build_seconds = time.perf_counter() - start
        history = _read_history(snapshot_path)
        log = WorkloadLog.from_workload(history) if history is not None else None
        # When the served snapshot holds an adapted layout, the recipe must
        # describe *that* layout (retuned page size, observed workload,
        # adapted mark) — not the caller's request — so a later save keeps
        # the adaptation instead of silently reverting it.
        recipe = _adapted_recipe_from_snapshot(
            snapshot_path, index, name, points, kwargs
        )
        if recipe is None:
            recipe = _make_recipe(
                index, name, points, workload, leaf_capacity, seed, kwargs
            )
        return cls(
            index, record=record, plan_cache=plan_cache, metrics=metrics,
            _workload_log=log, _recipe=recipe, _build_seconds=build_seconds,
        )

    def save(self, path: Union[str, Path]) -> None:
        """Persist the engine's index — and its observed history — for
        a later :meth:`load` / :meth:`open`.

        Z-index-family indexes are written as structural snapshots (O(n)
        load, no construction re-run).  Other indexes are written as
        build-recipe snapshots when this engine built them itself (the
        recipe is known); wrapping a foreign non-Z-index raises
        :class:`TypeError`, mirroring ``save_snapshot``.  A non-empty
        workload log travels in the same container, and an adapted layout
        is marked as such so :meth:`open` serves it instead of rebuilding
        for the stale build-time workload.
        """
        if isinstance(self.index, OnlineIndex):
            raise ValueError(
                "engine is online — call offline() to stop maintenance and "
                "drain the delta buffer before save()"
            )
        history = None
        if self.workload_log is not None and len(self.workload_log):
            history = self.workload_log.snapshot()
        if isinstance(self.index, ZIndex):
            build_request = None
            if self._recipe is not None:
                build_request = _encode_build_request(
                    self._recipe["name"], self._recipe["workload"],
                    self._recipe["seed"], self._recipe["kwargs"],
                    adapted=self._recipe.get("adapted", False),
                )
            save_snapshot(
                self.index, path,
                build_request=build_request, workload_history=history,
            )
            return
        if self._recipe is None:
            raise TypeError(
                f"{self.name} has no structural snapshot support and this engine "
                "does not know its build recipe; use SpatialEngine.build/open"
            )
        save_rebuild_snapshot(
            self._recipe["name"], self._recipe["points"], path,
            workload=self._recipe["workload"],
            leaf_capacity=self._recipe["leaf_capacity"],
            seed=self._recipe["seed"],
            workload_history=history,
            adapted=self._recipe.get("adapted", False),
            **self._recipe["kwargs"],
        )

    # ------------------------------------------------------------------
    # observability (see repro.obs)
    # ------------------------------------------------------------------
    def attach_metrics(self, registry) -> Optional[EngineMetrics]:
        """Attach (or detach, with ``None``) a metrics sink.

        Accepts a :class:`~repro.obs.registry.MetricsRegistry` — the usual
        case, an :class:`~repro.obs.instrument.EngineMetrics` adapter is
        created over it — or a ready-made adapter (sharable labels).
        Returns the active adapter.  From then on every
        :meth:`execute` / :meth:`execute_many` call records its latency,
        per-kind query total, scan-cost counter deltas and plan-cache
        hit/miss deltas; :meth:`advise` and :meth:`adapt` record the
        lifecycle series.
        """
        if registry is None:
            self.metrics = None
        elif isinstance(registry, EngineMetrics):
            self.metrics = registry
        else:
            self.metrics = EngineMetrics(registry)
        return self.metrics

    def _cache_mark(self) -> Optional[tuple]:
        """The plan cache's (hits, misses) totals, or None without a cache."""
        if self.plan_cache is None:
            return None
        stats = self.plan_cache.stats
        return (stats.hits, stats.misses)

    def _observe(
        self, kind: str, seconds: float, count: int,
        counters_before: Dict, cache_mark: Optional[tuple],
    ) -> None:
        cache_delta = None
        if cache_mark is not None:
            stats = self.plan_cache.stats
            cache_delta = (stats.hits - cache_mark[0], stats.misses - cache_mark[1])
        self.metrics.observe_query(
            kind, seconds, count,
            counters_before, vars(self.index.counters), cache_delta,
        )

    # ------------------------------------------------------------------
    # observe
    # ------------------------------------------------------------------
    @property
    def is_recording(self) -> bool:
        """Whether executed plans are currently appended to the log."""
        return self._recording

    def start_recording(self) -> WorkloadLog:
        """Attach a log (if absent) and start appending executed plans."""
        if self.workload_log is None:
            self.workload_log = WorkloadLog()
        self._recording = True
        return self.workload_log

    def stop_recording(self) -> None:
        """Stop appending executed plans (the log and its contents remain)."""
        self._recording = False

    # ------------------------------------------------------------------
    # online lifecycle (see repro.online)
    # ------------------------------------------------------------------
    @property
    def is_online(self) -> bool:
        """Whether the engine is serving through an online (LSM) index."""
        return isinstance(self.index, OnlineIndex)

    @property
    def online_loop(self) -> Optional[MaintenanceLoop]:
        """The maintenance loop while online, or ``None``."""
        return self._online_loop

    def online(
        self, policy: Optional[MaintenancePolicy] = None, *, start: bool = True
    ) -> MaintenanceLoop:
        """Switch to the online lifecycle: LSM writes + continuous adaptation.

        Wraps the current index in an
        :class:`~repro.online.OnlineIndex` (inserts and deletes land in
        its delta buffer; queries serve the merged view), turns recording
        on with the policy's sliding window installed on the workload
        log, and attaches a :class:`~repro.online.MaintenanceLoop` that
        compacts the delta and incrementally re-derives regressed
        subtrees.  With ``start=True`` (default) the loop's background
        thread starts ticking; either way the returned loop's
        ``run_once()`` drives maintenance deterministically.

        Idempotent: calling it again returns the existing loop (starting
        it if asked).
        """
        if isinstance(self.index, OnlineIndex) and self._online_loop is not None:
            if start:
                self._online_loop.start()
            return self._online_loop
        policy = policy or MaintenancePolicy()
        if not isinstance(self.index, OnlineIndex):
            self.index = OnlineIndex(self.index)
        log = self.start_recording()
        if policy.window_size is not None:
            log.window_size = policy.window_size
        metrics = None
        if self.metrics is not None:
            metrics = OnlineMetrics(self.metrics.registry)
        loop = MaintenanceLoop(self.index, log, policy, metrics=metrics)
        self._online_loop = loop
        if start:
            loop.start()
        return loop

    def offline(self, *, compact: bool = True) -> "SpatialEngine":
        """Leave the online lifecycle: stop maintenance, drain, unwrap.

        Stops the background loop, compacts any buffered writes into the
        columnar core, and rebinds the engine to the plain base index.
        With ``compact=False`` buffered writes are *discarded* (the base
        reverts to its last compacted contents).  No-op when not online.
        """
        loop = self._online_loop
        if loop is not None:
            loop.stop()
            self._online_loop = None
        index = self.index
        if isinstance(index, OnlineIndex):
            if compact:
                index.compact()
            self.index = index.base
        return self

    @contextmanager
    def recording(self, enabled: bool = True):
        """Scope recording to a ``with`` block, yielding the log.

        ``with engine.recording():`` turns the observe stage on for the
        block (attaching a log on first use) and restores the previous
        recording state afterwards; ``enabled=False`` scopes a recording
        *pause* the same way.
        """
        previous = self._recording
        if enabled:
            self.start_recording()
        else:
            self._recording = False
        try:
            yield self.workload_log
        finally:
            self._recording = previous

    def observed(self, **metadata) -> Workload:
        """The observed workload so far, as a frozen :class:`Workload`.

        Returns an empty workload when nothing has been recorded.
        """
        if self.workload_log is None:
            return Workload(**metadata)
        return self.workload_log.snapshot(**metadata)

    def _resolve_workload(self, workload) -> Workload:
        if workload is None:
            resolved = self.observed()
            if not resolved:
                raise ValueError(
                    "no workload given and nothing observed — build/open with "
                    "record=True (or use engine.recording()) before advise/adapt, "
                    "or pass a workload explicitly"
                )
            return resolved
        if isinstance(workload, Workload):
            return workload
        return Workload(queries=list(workload))

    # ------------------------------------------------------------------
    # advise
    # ------------------------------------------------------------------
    def advise(
        self,
        workload: Optional[Workload] = None,
        *,
        min_improvement: float = 1.2,
        expected_future_queries: Optional[float] = None,
        density=None,
        sample: Optional[int] = None,
    ):
        """Score the current layout against the observed (or given) workload.

        Returns a :class:`~repro.analysis.tuning.TuningReport` with the
        measured scan cost of the current layout, the density-model
        estimate for a re-derived one, the drift score against the
        layout's reference workload (when the engine knows it), the
        Table 4 break-even count (using this engine's measured build
        time), and a ``should_adapt`` verdict.
        """
        from repro.analysis.tuning import advise_layout

        resolved = self._resolve_workload(workload)
        reference = None
        if self._recipe is not None and self._recipe.get("workload"):
            reference = self._recipe["workload"]
        extra = {} if sample is None else {"sample": sample}
        report = advise_layout(
            self.index, resolved,
            reference=reference, density=density,
            min_improvement=min_improvement,
            rebuild_seconds=self._build_seconds,
            expected_future_queries=expected_future_queries,
            **extra,
        )
        if self.metrics is not None:
            self.metrics.observe_advise(report)
        return report

    # ------------------------------------------------------------------
    # adapt
    # ------------------------------------------------------------------
    def _tuned_leaf_capacity(self, rects: Sequence[Rect]) -> int:
        """The page size the observed result sizes ask for.

        Probes the mean result size with an exact count-only replay of (a
        sample of) the observed rectangles — columnar, no boxing — and
        maps it through :func:`repro.analysis.tuning.tuned_leaf_capacity`.
        The probe's counter increments are rolled back so measurement
        workflows around ``adapt`` see only their own queries.
        """
        from repro.analysis.tuning import tuned_leaf_capacity

        if not rects:
            return self._recipe["leaf_capacity"]
        sample = rects
        if len(rects) > 256:
            step = len(rects) // 256
            sample = rects[::step][:256]
        counters = self.index.counters
        saved = vars(counters).copy()
        try:
            counts = self.index.batch_range_count(sample)
        finally:
            vars(counters).update(saved)
        return tuned_leaf_capacity(sum(counts) / len(sample))

    def adapt(
        self,
        workload: Optional[Workload] = None,
        *,
        in_place: bool = True,
        tune_leaf_capacity: bool = True,
    ) -> "SpatialEngine":
        """Re-derive the layout from the observed workload and hot-swap it.

        The workload defaults to this engine's observed log.  kNN and
        radius probes participate through their equivalent range
        rectangles.  The re-derivation covers both layout dimensions the
        paper treats as workload parameters: the split points/orderings
        (the greedy construction re-runs against the observed
        rectangles) and — with ``tune_leaf_capacity=True`` (default) —
        the page granularity, matched to the observed result sizes (tiny
        interactive queries keep small pages; analytical scans get big
        ones).  With ``in_place=True`` (default) the new index atomically
        replaces the engine's current one — in-flight and retained result
        sets stay valid, because Z-index result boxers hold only a weak
        reference to the index that produced them plus a flat-column
        generation counter and re-box their captured coordinates once that
        index is superseded.  With ``in_place=False`` the serving engine
        is left untouched and a new engine (with a copy of the observed
        history) is returned.

        Raises :class:`TypeError` when the engine wraps a foreign index it
        knows no build recipe for, and :class:`ValueError` when there is
        neither an observed nor a given workload.
        """
        resolved = self._resolve_workload(workload)
        recipe = self._recipe
        if recipe is None:
            raise TypeError(
                f"{self.name} engine has no build recipe to re-derive a layout "
                "from; construct engines with SpatialEngine.build/open/load"
            )
        rects = resolved.equivalent_rects(len(self.index), self.index.extent())
        leaf_capacity = recipe["leaf_capacity"]
        if tune_leaf_capacity:
            leaf_capacity = self._tuned_leaf_capacity(rects)
        if in_place and isinstance(self.index, OnlineIndex):
            # The online path re-derives through the freeze → build →
            # swap protocol, so writes arriving during the build stay
            # visible and land in the new active delta.
            captured: Dict = {}

            def builder(points: List[Point]) -> SpatialIndex:
                captured["points"] = points
                return build_index(
                    recipe["name"], points, rects,
                    leaf_capacity=leaf_capacity, seed=recipe["seed"],
                    **recipe["kwargs"],
                )

            start = time.perf_counter()
            new_base = self.index.rebuild(builder)
            build_seconds = time.perf_counter() - start
            new_recipe = _make_recipe(
                new_base, recipe["name"], captured["points"], rects,
                leaf_capacity, recipe["seed"], recipe["kwargs"],
            )
            new_recipe["adapted"] = True
            self._recipe = new_recipe
            self._build_seconds = build_seconds
            if self.metrics is not None:
                self.metrics.observe_adapt(build_seconds)
            return self
        if isinstance(self.index, (ZIndex, OnlineIndex)):
            points = self.index.all_points()
        else:
            points = recipe["points"]
        start = time.perf_counter()
        new_index = build_index(
            recipe["name"], points, rects,
            leaf_capacity=leaf_capacity, seed=recipe["seed"],
            **recipe["kwargs"],
        )
        build_seconds = time.perf_counter() - start
        new_recipe = _make_recipe(
            new_index, recipe["name"], points, rects,
            leaf_capacity, recipe["seed"], recipe["kwargs"],
        )
        new_recipe["adapted"] = True
        if not in_place:
            log = None
            if self.workload_log is not None and len(self.workload_log):
                log = WorkloadLog.from_workload(self.workload_log.snapshot())
            return SpatialEngine(
                new_index, record=self._recording,
                _recipe=new_recipe, _workload_log=log,
                _build_seconds=build_seconds,
            )
        # The hot swap: one attribute rebind, atomic under the GIL — a
        # concurrent reader sees either the old or the new index, never a
        # mix, and result sets produced by the old one remain valid.
        self.index = new_index
        self._recipe = new_recipe
        self._build_seconds = build_seconds
        if self.metrics is not None:
            self.metrics.observe_adapt(build_seconds)
        return self

    # ------------------------------------------------------------------
    # plan execution
    # ------------------------------------------------------------------
    def execute(
        self, query: Query, *, count_only: bool = False, limit: Optional[int] = None
    ):
        """Execute one typed query plan.

        Returns a lazy :class:`~repro.results.ResultSet` for range / kNN /
        radius plans, ``bool`` for :class:`PointQuery`, and the join
        operator's native pair shape for :class:`JoinQuery`.  With
        ``count_only=True`` every plan returns an ``int`` instead, computed
        without materialising results wherever the index allows it.
        """
        if self.metrics is None:
            return self._execute(query, count_only=count_only, limit=limit)
        counters_before = vars(self.index.counters).copy()
        cache_mark = self._cache_mark()
        start = time.perf_counter()
        result = self._execute(query, count_only=count_only, limit=limit)
        self._observe(
            plan_kind(query), time.perf_counter() - start, 1,
            counters_before, cache_mark,
        )
        return result

    def _execute(
        self, query: Query, *, count_only: bool = False, limit: Optional[int] = None
    ):
        self._check_limit(limit)
        recording = self._recording
        cache = self.plan_cache
        if isinstance(query, RangeQuery):
            rect = query.rect
            if count_only:
                # Cached values are always *uncapped* counts — the cap is
                # applied per call, so one entry serves every ``limit`` of
                # its key and recording sees the true count, like a miss.
                count = MISS
                if cache is not None:
                    key = ("range", rect.xmin, rect.ymin, rect.xmax, rect.ymax,
                           True, limit)
                    count = cache.lookup(key, self.index)
                if count is MISS:
                    count = self.index.range_count(rect)
                    if cache is not None:
                        cache.store(key, self.index, count)
                if recording:
                    self.workload_log.record_range(rect, count)
                return self._capped(count, limit)
            if recording:
                self.workload_log.record_range(rect)
            result = MISS
            if cache is not None:
                key = ("range", rect.xmin, rect.ymin, rect.xmax, rect.ymax,
                       False, limit)
                result = cache.lookup(key, self.index)
            if result is MISS:
                result = self._truncated(self.index.range_query(rect), limit)
                if cache is not None:
                    cache.store(key, self.index, result)
            return result
        if isinstance(query, PointQuery):
            found = self.index.point_query(query.point)
            return int(found) if count_only else found
        if isinstance(query, KnnQuery):
            if recording and query.k > 0:
                self.workload_log.record_knn(query.center, query.k)
            value = MISS
            if cache is not None:
                key = ("knn", query.center.x, query.center.y, query.k,
                       query.initial_radius, count_only, limit)
                value = cache.lookup(key, self.index)
            if value is MISS:
                result = self.index.knn(query.center, query.k, query.initial_radius)
                value = result.count() if count_only else self._truncated(result, limit)
                if cache is not None:
                    cache.store(key, self.index, value)
            if count_only:
                return self._capped(value, limit)
            return value
        if isinstance(query, RadiusQuery):
            if recording:
                self.workload_log.record_radius(query.center, query.radius)
            value = MISS
            if cache is not None:
                key = ("radius", query.center.x, query.center.y, query.radius,
                       count_only, limit)
                value = cache.lookup(key, self.index)
            if value is MISS:
                result = self.index.radius_query(query.center, query.radius)
                value = result.count() if count_only else self._truncated(result, limit)
                if cache is not None:
                    cache.store(key, self.index, value)
            if count_only:
                return self._capped(value, limit)
            return value
        if isinstance(query, JoinQuery):
            return self._execute_join(query, count_only=count_only, limit=limit)
        raise TypeError(f"Unknown query plan type {type(query).__name__}")

    def execute_many(
        self,
        queries: Sequence[Query],
        *,
        count_only: bool = False,
        limit: Optional[int] = None,
    ) -> List:
        """Execute a workload of plans, batching homogeneous runs.

        A list of :class:`RangeQuery` plans is submitted through
        ``batch_range_query`` (or ``batch_range_count`` under
        ``count_only``), kNN plans sharing ``k``/``initial_radius`` through
        ``batch_knn``, radius plans sharing ``radius`` through
        ``batch_radius_query`` — the amortised paths the columnar engine
        optimises.  Anything else falls back to one :meth:`execute` per
        plan.  Results come back in workload order either way.
        """
        if self.metrics is None:
            return self._execute_many(queries, count_only=count_only, limit=limit)
        queries = list(queries)
        if not queries:
            return []
        first_type = type(queries[0])
        if any(type(q) is not first_type for q in queries):
            # Mixed plans: instrument per plan so the kind labels stay exact.
            return [
                self.execute(query, count_only=count_only, limit=limit)
                for query in queries
            ]
        counters_before = vars(self.index.counters).copy()
        cache_mark = self._cache_mark()
        start = time.perf_counter()
        results = self._execute_many(queries, count_only=count_only, limit=limit)
        self._observe(
            plan_kind(queries[0]), time.perf_counter() - start, len(queries),
            counters_before, cache_mark,
        )
        return results

    def _execute_many(
        self,
        queries: Sequence[Query],
        *,
        count_only: bool = False,
        limit: Optional[int] = None,
    ) -> List:
        self._check_limit(limit)
        queries = list(queries)
        if not queries:
            return []
        index = self.index
        recording = self._recording
        cache = self.plan_cache
        if all(type(q) is RangeQuery for q in queries):
            rects = [q.rect for q in queries]
            if count_only:
                if cache is None:
                    counts = list(index.batch_range_count(rects))
                else:
                    # Serve exact repeats from the cache and run only the
                    # misses through the batch kernel, merging back in
                    # workload order.  Counters and recording see true
                    # (uncapped) counts for hits and misses alike.
                    keys = [
                        ("range", r.xmin, r.ymin, r.xmax, r.ymax, True, limit)
                        for r in rects
                    ]
                    counts = [cache.lookup(key, index) for key in keys]
                    missing = [i for i, c in enumerate(counts) if c is MISS]
                    if missing:
                        fresh = index.batch_range_count([rects[i] for i in missing])
                        for i, count in zip(missing, fresh):
                            cache.store(keys[i], index, count)
                            counts[i] = count
                if recording:
                    self.workload_log.record_ranges(rects, counts)
                return [self._capped(c, limit) for c in counts]
            if recording:
                # One vectorised block append for the whole batch — the
                # recording cost the production path actually pays.
                self.workload_log.record_ranges(rects)
            if cache is None:
                return [
                    self._truncated(r, limit) for r in index.batch_range_query(rects)
                ]
            keys = [
                ("range", r.xmin, r.ymin, r.xmax, r.ymax, False, limit)
                for r in rects
            ]
            results = [cache.lookup(key, index) for key in keys]
            missing = [i for i, r in enumerate(results) if r is MISS]
            if missing:
                fresh = index.batch_range_query([rects[i] for i in missing])
                for i, result in zip(missing, fresh):
                    truncated = self._truncated(result, limit)
                    cache.store(keys[i], index, truncated)
                    results[i] = truncated
            return results
        if all(type(q) is KnnQuery for q in queries):
            first = queries[0]
            if all(
                q.k == first.k and q.initial_radius == first.initial_radius
                for q in queries
            ):
                centers = [q.center for q in queries]
                if recording and first.k > 0:
                    self.workload_log.record_knns(centers, first.k)
                if cache is None:
                    results = index.batch_knn(centers, first.k, first.initial_radius)
                    if count_only:
                        return [self._capped(r.count(), limit) for r in results]
                    return [self._truncated(r, limit) for r in results]
                keys = [
                    ("knn", c.x, c.y, first.k, first.initial_radius,
                     count_only, limit)
                    for c in centers
                ]
                values = [cache.lookup(key, index) for key in keys]
                missing = [i for i, v in enumerate(values) if v is MISS]
                if missing:
                    fresh = index.batch_knn(
                        [centers[i] for i in missing], first.k, first.initial_radius
                    )
                    for i, result in zip(missing, fresh):
                        value = (
                            result.count() if count_only
                            else self._truncated(result, limit)
                        )
                        cache.store(keys[i], index, value)
                        values[i] = value
                if count_only:
                    return [self._capped(v, limit) for v in values]
                return values
        if all(type(q) is RadiusQuery for q in queries):
            first = queries[0]
            if all(q.radius == first.radius for q in queries):
                centers = [q.center for q in queries]
                if recording:
                    self.workload_log.record_radii(centers, first.radius)
                if cache is None:
                    results = index.batch_radius_query(centers, first.radius)
                    if count_only:
                        return [self._capped(r.count(), limit) for r in results]
                    return [self._truncated(r, limit) for r in results]
                keys = [
                    ("radius", c.x, c.y, first.radius, count_only, limit)
                    for c in centers
                ]
                values = [cache.lookup(key, index) for key in keys]
                missing = [i for i, v in enumerate(values) if v is MISS]
                if missing:
                    fresh = index.batch_radius_query(
                        [centers[i] for i in missing], first.radius
                    )
                    for i, result in zip(missing, fresh):
                        value = (
                            result.count() if count_only
                            else self._truncated(result, limit)
                        )
                        cache.store(keys[i], index, value)
                        values[i] = value
                if count_only:
                    return [self._capped(v, limit) for v in values]
                return values
        return [
            self._execute(query, count_only=count_only, limit=limit)
            for query in queries
        ]

    def _execute_join(
        self, query: JoinQuery, *, count_only: bool, limit: Optional[int]
    ):
        from repro import joins

        index = self.index
        if count_only:
            # Pair counting runs on the batch entry points' lazy result
            # sets: on the columnar core not a single pair (or Point) is
            # materialised.
            if query.kind == "box":
                counts = self._box_join_counts(query)
            elif query.kind == "radius":
                counts = [
                    r.count()
                    for r in index.batch_radius_query(query.probes, query.radius)
                ]
            else:
                counts = [r.count() for r in index.batch_knn(query.probes, query.k)]
            return self._capped(sum(counts), limit)
        if query.kind == "box":
            pairs = joins.box_join(
                index, query.probes, query.half_width, query.half_height
            )
        elif query.kind == "radius":
            pairs = joins.radius_join(index, query.probes, query.radius)
        else:
            # The kNN operator's native rows are per-probe entries, so
            # ``limit`` truncates entries (like it truncates pairs above).
            pairs = joins.knn_join(index, query.probes, query.k)
        return pairs if limit is None else pairs[:limit]

    def _box_join_counts(self, query: JoinQuery) -> List[int]:
        from repro.joins import _probe_columns, _probe_windows

        half_height = (
            query.half_width if query.half_height is None else query.half_height
        )
        xs, ys = _probe_columns(query.probes)
        windows = _probe_windows(xs, ys, query.half_width, half_height)
        return self.index.batch_range_count(windows)

    @staticmethod
    def _check_limit(limit: Optional[int]) -> None:
        if limit is not None and limit < 0:
            raise ValueError(f"limit must be non-negative, got {limit}")

    @staticmethod
    def _capped(count: int, limit: Optional[int]) -> int:
        return count if limit is None else min(count, limit)

    @staticmethod
    def _truncated(result: ResultSet, limit: Optional[int]) -> ResultSet:
        return result if limit is None else result.head(limit)

    # ------------------------------------------------------------------
    # index protocol delegation
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.index.name

    @property
    def counters(self):
        return self.index.counters

    @property
    def phase_timer(self):
        """The wrapped index's phase timer (``None`` where unsupported)."""
        return getattr(self.index, "phase_timer", None)

    @phase_timer.setter
    def phase_timer(self, value) -> None:
        self.index.phase_timer = value

    def reset_counters(self) -> None:
        self.index.reset_counters()

    def __len__(self) -> int:
        return len(self.index)

    def size_bytes(self) -> int:
        return self.index.size_bytes()

    def extent(self):
        return self.index.extent()

    def insert(self, point: Point) -> None:
        self.index.insert(point)

    def delete(self, point: Point) -> bool:
        return self.index.delete(point)

    def range_query(self, query: Rect) -> ResultSet:
        if self._recording:
            self.workload_log.record_range(query)
        return self.index.range_query(query)

    def batch_range_query(self, queries: Sequence[Rect]) -> List[ResultSet]:
        if self._recording:
            self.workload_log.record_ranges(queries)
        return self.index.batch_range_query(queries)

    def range_count(self, query: Rect) -> int:
        count = self.index.range_count(query)
        if self._recording:
            self.workload_log.record_range(query, count)
        return count

    def batch_range_count(self, queries: Sequence[Rect]) -> List[int]:
        counts = self.index.batch_range_count(queries)
        if self._recording:
            self.workload_log.record_ranges(queries, counts)
        return counts

    def point_query(self, point: Point) -> bool:
        return self.index.point_query(point)

    def knn(self, center: Point, k: int, initial_radius: Optional[float] = None) -> ResultSet:
        if self._recording and k > 0:
            self.workload_log.record_knn(center, k)
        return self.index.knn(center, k, initial_radius)

    def batch_knn(
        self, centers: Sequence[Point], k: int, initial_radius: Optional[float] = None
    ) -> List[ResultSet]:
        if self._recording and k > 0:
            self.workload_log.record_knns(centers, k)
        return self.index.batch_knn(centers, k, initial_radius)

    def radius_query(self, center: Point, radius: float) -> ResultSet:
        if self._recording:
            self.workload_log.record_radius(center, radius)
        return self.index.radius_query(center, radius)

    def batch_radius_query(
        self, centers: Sequence[Point], radius: float
    ) -> List[ResultSet]:
        if self._recording:
            self.workload_log.record_radii(centers, radius)
        return self.index.batch_radius_query(centers, radius)

    def __repr__(self) -> str:
        return f"SpatialEngine({self.name}, {len(self)} points)"


def as_engine(index_or_engine) -> SpatialEngine:
    """Wrap a bare index into an engine; pass engines through unchanged."""
    if isinstance(index_or_engine, SpatialEngine):
        return index_or_engine
    return SpatialEngine(index_or_engine)
