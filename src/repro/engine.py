"""The columnar-first query facade: build/load/save and plan execution.

:class:`SpatialEngine` is the library's single public entry point for
serving spatial workloads.  It owns the index lifecycle — build from a
dataset (:meth:`SpatialEngine.build`), restore from a snapshot
(:meth:`SpatialEngine.load`), the build-once/serve-many combination of both
(:meth:`SpatialEngine.open`), persist (:meth:`SpatialEngine.save`) — and it
executes the typed query plans of :mod:`repro.query` through one dispatch:

    engine = SpatialEngine.build("wazi", points, workload, seed=1)
    hits   = engine.execute(RangeQuery(rect))                  # lazy ResultSet
    n      = engine.execute(RangeQuery(rect), count_only=True) # int, no boxing
    firsts = engine.execute_many(plans, limit=10)

``execute_many`` recognises homogeneous plan lists and routes them through
the index's amortised batch entry points (``batch_range_query`` /
``batch_knn`` / ``batch_radius_query`` and their count-only twins), which
the Z-index family answers on its flat coordinate columns.  ``count_only``
and array-consuming executions on that family never box a single
:class:`~repro.geometry.Point`.

The engine also keeps the free-function era working: ``build_index`` and
``build_or_load_index`` live here as the canonical implementations and are
re-exported by :mod:`repro.api` as deprecation shims.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.baselines import (
    CURTree,
    FloodIndex,
    KDTreeIndex,
    QuadTreeIndex,
    QUASIIIndex,
    RTree,
    STRRTree,
    ZPGMIndex,
)
from repro.core import BaseWithSkipping, WaZI, WaZIWithoutSkipping
from repro.geometry import Point, Rect, points_to_arrays
from repro.interfaces import SpatialIndex
from repro.persistence import (
    KIND_REBUILD,
    KIND_ZINDEX,
    SnapshotError,
    dataset_fingerprint,
    load_snapshot,
    read_manifest,
    rects_to_array,
    save_rebuild_snapshot,
    save_snapshot,
    workload_fingerprint,
)
from repro.persistence.snapshot import json_clone
from repro.query import JoinQuery, KnnQuery, PointQuery, Query, RadiusQuery, RangeQuery
from repro.results import ResultSet
from repro.zindex import BaseZIndex, ZIndex

__all__ = [
    "INDEX_NAMES",
    "SpatialEngine",
    "as_engine",
    "build_index",
    "build_or_load_index",
]

#: Accepted aliases for the Z-index ablation variants (shared between
#: :func:`build_index` dispatch and the snapshot-matching table, so the two
#: can never drift apart).
_WAZI_SK_ALIASES = ("wazi-sk", "wazi_nosk", "wazi-noskip")
_BASE_SK_ALIASES = ("base+sk", "base_sk", "basesk")

#: Index names accepted by :func:`build_index` /
#: :meth:`SpatialEngine.build`.  Workload-aware indexes use the
#: ``workload`` argument; the rest ignore it.
INDEX_NAMES = (
    "wazi",
    "wazi-sk",
    "base",
    "base+sk",
    "str",
    "cur",
    "flood",
    "quasii",
    "zpgm",
    "rtree",
    "quadtree",
    "kdtree",
)


def build_index(
    name: str,
    points: Sequence[Point],
    workload: Sequence[Rect] = (),
    leaf_capacity: int = 64,
    seed: Optional[int] = 0,
    **kwargs,
) -> SpatialIndex:
    """Build any index in the library by name.

    Parameters
    ----------
    name:
        One of :data:`INDEX_NAMES` (case-insensitive).
    points:
        The dataset.
    workload:
        Anticipated range queries; required for the workload-aware indexes
        (``wazi``, ``wazi-sk``, ``cur``, ``flood``, ``quasii``) to have any
        effect, ignored by the others.
    leaf_capacity:
        Page size ``L`` (or the grid cell target for Flood).
    seed:
        Seed for the learned / randomised components.  ``None`` is
        forwarded verbatim to every workload-aware index (earlier revisions
        silently coerced it to ``0`` for Flood only).
    kwargs:
        Forwarded to the index constructor for index-specific options.
    """
    key = name.lower()
    if key == "wazi":
        return WaZI(points, workload, leaf_capacity=leaf_capacity, seed=seed, **kwargs)
    if key in _WAZI_SK_ALIASES:
        return WaZIWithoutSkipping(points, workload, leaf_capacity=leaf_capacity, seed=seed, **kwargs)
    if key == "base":
        return BaseZIndex(points, leaf_capacity=leaf_capacity, **kwargs)
    if key in _BASE_SK_ALIASES:
        return BaseWithSkipping(points, leaf_capacity=leaf_capacity, **kwargs)
    if key == "str":
        return STRRTree(points, leaf_capacity=leaf_capacity, **kwargs)
    if key == "cur":
        return CURTree(points, workload, leaf_capacity=leaf_capacity, **kwargs)
    if key == "flood":
        return FloodIndex(points, workload, cell_target=leaf_capacity, seed=seed, **kwargs)
    if key == "quasii":
        return QUASIIIndex(points, workload, **kwargs)
    if key == "zpgm":
        return ZPGMIndex(points, leaf_capacity=leaf_capacity, **kwargs)
    if key == "rtree":
        return RTree(points, leaf_capacity=leaf_capacity, **kwargs)
    if key == "quadtree":
        return QuadTreeIndex(points, leaf_capacity=leaf_capacity, **kwargs)
    if key == "kdtree":
        return KDTreeIndex(points, leaf_capacity=leaf_capacity, **kwargs)
    raise ValueError(f"Unknown index name {name!r}; expected one of {INDEX_NAMES}")


#: What a structural snapshot of each Z-index-family build name reports as
#: its index name, used to check that an existing snapshot actually stores
#: the index a caller is asking for.  Derived from the shared alias tuples
#: and the classes' own ``name`` attributes (the value ``save_snapshot``
#: records), so new aliases or renamed classes cannot desync the probe.
_ZINDEX_SNAPSHOT_NAMES = {
    "wazi": WaZI.name,
    "base": BaseZIndex.name,
    **{alias: WaZIWithoutSkipping.name for alias in _WAZI_SK_ALIASES},
    **{alias: BaseWithSkipping.name for alias in _BASE_SK_ALIASES},
}


def _encode_build_request(name, workload, seed, kwargs) -> Optional[Dict]:
    """The JSON record of a build request stored in structural manifests.

    Returns ``None`` when the request cannot be represented (non-JSON
    kwargs); a ``None`` request never matches a stored one, forcing a
    rebuild.
    """
    encoded_kwargs = json_clone(kwargs or {})
    if encoded_kwargs is None:
        return None
    return {
        "name": str(name).lower(),
        "seed": None if seed is None else int(seed),
        "num_queries": len(workload or ()),
        "workload_fingerprint": workload_fingerprint(rects_to_array(workload or ())),
        "kwargs": encoded_kwargs,
    }


def _snapshot_matches_request(
    path, name, points, leaf_capacity, seed, workload=None, kwargs=None
) -> bool:
    """Whether the snapshot at ``path`` plausibly stores the requested index.

    A manifest-only probe (no array reads): the index/build name, the
    dataset (via an order-insensitive content fingerprint, so a regenerated
    same-size dataset is detected) and leaf capacity must match the
    request — plus, for rebuild recipes, everything else the manifest
    records (seed, workload content, extra build kwargs).  Structural
    Z-index snapshots carry the same information in the ``build_request``
    section the helper records at save time; snapshots saved through bare
    ``save_snapshot`` lack it and are conservatively rebuilt.
    """
    try:
        manifest = read_manifest(path)
    except SnapshotError:
        return False
    key = name.lower()
    kind = manifest.get("kind")
    if kind == KIND_ZINDEX:
        info = manifest.get("index") or {}
        expected = _ZINDEX_SNAPSHOT_NAMES.get(key)
        if expected is None or info.get("name") != expected:
            return False
        # The structure does not retain its build arguments, so the helper
        # records them as a build_request section at save time; a snapshot
        # without one (saved through bare save_snapshot) cannot be verified
        # against this request and is rebuilt.
        recorded = manifest.get("build_request")
        if not isinstance(recorded, dict):
            return False
        if recorded != _encode_build_request(name, workload, seed, kwargs):
            return False
        return (
            info.get("num_points") == len(points)
            and info.get("leaf_capacity") == leaf_capacity
            and info.get("dataset_fingerprint") == dataset_fingerprint(
                *points_to_arrays(points)
            )
        )
    if kind == KIND_REBUILD:
        build = manifest.get("build") or {}
        if str(build.get("name", "")).lower() != key:
            return False
        encoded_kwargs = json_clone(kwargs or {})
        if encoded_kwargs is None:
            return False  # unstorable kwargs can never match a stored recipe
        return (
            build.get("num_points") == len(points)
            and build.get("leaf_capacity") == leaf_capacity
            and build.get("seed") == (None if seed is None else int(seed))
            and (
                workload is None
                or (
                    build.get("num_queries") == len(workload)
                    and build.get("workload_fingerprint")
                    == workload_fingerprint(rects_to_array(workload))
                )
            )
            and (build.get("kwargs") or {}) == encoded_kwargs
            and build.get("dataset_fingerprint") == dataset_fingerprint(
                *points_to_arrays(points)
            )
        )
    return False


def build_or_load_index(
    name: str,
    points: Sequence[Point],
    workload: Sequence[Rect] = (),
    *,
    snapshot_path: Union[str, Path],
    leaf_capacity: int = 64,
    seed: Optional[int] = 0,
    rebuild: bool = False,
    _factory=None,
    **kwargs,
) -> SpatialIndex:
    """Build-once / serve-many: load a snapshot if present, else build and save.

    The deployment helper for the paper's offline-build workflow.  When
    ``snapshot_path`` exists (and ``rebuild`` is false) the index is
    restored from it — an O(n) load for the Z-index family, a deterministic
    replay of the build recipe for the rest of the zoo.  A snapshot whose
    manifest does not match the request (different index name, point
    count, leaf capacity — or seed, workload content and extra kwargs, for
    rebuild recipes), or that is unreadable or version-incompatible,
    silently falls back to a fresh build that overwrites it.  Snapshots
    written by this helper record the full build request (seed, workload
    fingerprint, extra kwargs) so any change to it is detected; snapshots
    saved through bare :func:`save_snapshot` lack that record and are
    conservatively rebuilt.  Otherwise the index is built with
    :func:`build_index` and the snapshot is written for the next process.

    For non-Z-index names the ``kwargs`` must be JSON-serialisable (they
    travel in the rebuild recipe's manifest).
    """
    path = Path(snapshot_path)
    if path.exists() and not rebuild:
        if _snapshot_matches_request(
            path, name, points, leaf_capacity, seed,
            workload=workload, kwargs=kwargs,
        ):
            try:
                return load_snapshot(path)
            except SnapshotError:
                pass  # stale/corrupt snapshot: rebuild and overwrite below
    factory = build_index if _factory is None else _factory
    index = factory(
        name, points, workload, leaf_capacity=leaf_capacity, seed=seed, **kwargs
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    if isinstance(index, ZIndex):
        save_snapshot(
            index, path,
            build_request=_encode_build_request(name, workload, seed, kwargs),
        )
    else:
        save_rebuild_snapshot(
            name, points, path,
            workload=workload, leaf_capacity=leaf_capacity, seed=seed, **kwargs,
        )
    return index


def _make_recipe(index, name, points, workload, leaf_capacity, seed, kwargs) -> Dict:
    """The build request an engine remembers for :meth:`SpatialEngine.save`.

    For the Z-index family ``save`` writes a structural snapshot and only
    needs the request metadata (name, workload, seed, kwargs); the dataset
    itself is recorded only for the rebuild-recipe zoo, so a
    build-once/serve-many Z-index engine never pins the boxed point list.
    """
    return {
        "name": name,
        "points": None if isinstance(index, ZIndex) else points,
        "workload": list(workload),
        "leaf_capacity": leaf_capacity,
        "seed": seed,
        "kwargs": dict(kwargs),
    }


class SpatialEngine:
    """Facade owning one index's lifecycle and executing query plans on it.

    Wraps any :class:`~repro.interfaces.SpatialIndex` (an existing one, or
    one produced by the :meth:`build` / :meth:`load` / :meth:`open`
    constructors) and exposes:

    * ``execute(plan, *, count_only=False, limit=None)`` — run one typed
      plan from :mod:`repro.query`,
    * ``execute_many(plans, ...)`` — run a workload, batched through the
      index's amortised entry points when the plans are homogeneous,
    * ``save(path)`` — persist (structural snapshot for the Z-index
      family, build-recipe snapshot for the rest when the engine knows the
      recipe),
    * the full index protocol (``range_query``, ``knn``, ``insert``,
      counters, …) by delegation, so the engine can stand in for a bare
      index anywhere in the library.

    ``count_only`` executions return plain ``int`` counts; on the columnar
    Z-index family they are answered entirely on the coordinate columns
    (no ``Point`` is ever boxed).  ``limit`` truncates each result to its
    first ``limit`` rows in result order, staying columnar.
    """

    def __init__(self, index: SpatialIndex, *, _recipe: Optional[Dict] = None) -> None:
        if not isinstance(index, SpatialIndex):
            raise TypeError(
                f"SpatialEngine wraps a SpatialIndex, got {type(index).__name__}"
            )
        self.index = index
        #: The build request, when this engine built the index itself —
        #: lets :meth:`save` write rebuild recipes for the non-Z-index zoo.
        self._recipe = _recipe

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        name: str,
        points: Sequence[Point],
        workload: Sequence[Rect] = (),
        *,
        leaf_capacity: int = 64,
        seed: Optional[int] = 0,
        **kwargs,
    ) -> "SpatialEngine":
        """Build an index by name (see :data:`INDEX_NAMES`) and wrap it."""
        index = build_index(
            name, points, workload, leaf_capacity=leaf_capacity, seed=seed, **kwargs
        )
        return cls(index, _recipe=_make_recipe(
            index, name, points, workload, leaf_capacity, seed, kwargs
        ))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SpatialEngine":
        """Restore an engine from a snapshot written by :meth:`save`."""
        return cls(load_snapshot(path))

    @classmethod
    def open(
        cls,
        name: str,
        points: Sequence[Point],
        workload: Sequence[Rect] = (),
        *,
        snapshot_path: Union[str, Path],
        leaf_capacity: int = 64,
        seed: Optional[int] = 0,
        rebuild: bool = False,
        **kwargs,
    ) -> "SpatialEngine":
        """Build-once / serve-many (see :func:`build_or_load_index`)."""
        index = build_or_load_index(
            name, points, workload,
            snapshot_path=snapshot_path, leaf_capacity=leaf_capacity,
            seed=seed, rebuild=rebuild, **kwargs,
        )
        return cls(index, _recipe=_make_recipe(
            index, name, points, workload, leaf_capacity, seed, kwargs
        ))

    def save(self, path: Union[str, Path]) -> None:
        """Persist the engine's index for a later :meth:`load`.

        Z-index-family indexes are written as structural snapshots (O(n)
        load, no construction re-run).  Other indexes are written as
        build-recipe snapshots when this engine built them itself (the
        recipe is known); wrapping a foreign non-Z-index raises
        :class:`TypeError`, mirroring ``save_snapshot``.
        """
        if isinstance(self.index, ZIndex):
            build_request = None
            if self._recipe is not None:
                build_request = _encode_build_request(
                    self._recipe["name"], self._recipe["workload"],
                    self._recipe["seed"], self._recipe["kwargs"],
                )
            save_snapshot(self.index, path, build_request=build_request)
            return
        if self._recipe is None:
            raise TypeError(
                f"{self.name} has no structural snapshot support and this engine "
                "does not know its build recipe; use SpatialEngine.build/open"
            )
        save_rebuild_snapshot(
            self._recipe["name"], self._recipe["points"], path,
            workload=self._recipe["workload"],
            leaf_capacity=self._recipe["leaf_capacity"],
            seed=self._recipe["seed"], **self._recipe["kwargs"],
        )

    # ------------------------------------------------------------------
    # plan execution
    # ------------------------------------------------------------------
    def execute(
        self, query: Query, *, count_only: bool = False, limit: Optional[int] = None
    ):
        """Execute one typed query plan.

        Returns a lazy :class:`~repro.results.ResultSet` for range / kNN /
        radius plans, ``bool`` for :class:`PointQuery`, and the join
        operator's native pair shape for :class:`JoinQuery`.  With
        ``count_only=True`` every plan returns an ``int`` instead, computed
        without materialising results wherever the index allows it.
        """
        self._check_limit(limit)
        if isinstance(query, RangeQuery):
            if count_only:
                return self._capped(self.index.range_count(query.rect), limit)
            return self._truncated(self.index.range_query(query.rect), limit)
        if isinstance(query, PointQuery):
            found = self.index.point_query(query.point)
            return int(found) if count_only else found
        if isinstance(query, KnnQuery):
            result = self.index.knn(query.center, query.k, query.initial_radius)
            if count_only:
                return self._capped(result.count(), limit)
            return self._truncated(result, limit)
        if isinstance(query, RadiusQuery):
            result = self.index.radius_query(query.center, query.radius)
            if count_only:
                return self._capped(result.count(), limit)
            return self._truncated(result, limit)
        if isinstance(query, JoinQuery):
            return self._execute_join(query, count_only=count_only, limit=limit)
        raise TypeError(f"Unknown query plan type {type(query).__name__}")

    def execute_many(
        self,
        queries: Sequence[Query],
        *,
        count_only: bool = False,
        limit: Optional[int] = None,
    ) -> List:
        """Execute a workload of plans, batching homogeneous runs.

        A list of :class:`RangeQuery` plans is submitted through
        ``batch_range_query`` (or ``batch_range_count`` under
        ``count_only``), kNN plans sharing ``k``/``initial_radius`` through
        ``batch_knn``, radius plans sharing ``radius`` through
        ``batch_radius_query`` — the amortised paths the columnar engine
        optimises.  Anything else falls back to one :meth:`execute` per
        plan.  Results come back in workload order either way.
        """
        self._check_limit(limit)
        queries = list(queries)
        if not queries:
            return []
        index = self.index
        if all(type(q) is RangeQuery for q in queries):
            rects = [q.rect for q in queries]
            if count_only:
                return [self._capped(c, limit) for c in index.batch_range_count(rects)]
            return [
                self._truncated(r, limit) for r in index.batch_range_query(rects)
            ]
        if all(type(q) is KnnQuery for q in queries):
            first = queries[0]
            if all(
                q.k == first.k and q.initial_radius == first.initial_radius
                for q in queries
            ):
                results = index.batch_knn(
                    [q.center for q in queries], first.k, first.initial_radius
                )
                if count_only:
                    return [self._capped(r.count(), limit) for r in results]
                return [self._truncated(r, limit) for r in results]
        if all(type(q) is RadiusQuery for q in queries):
            first = queries[0]
            if all(q.radius == first.radius for q in queries):
                results = index.batch_radius_query(
                    [q.center for q in queries], first.radius
                )
                if count_only:
                    return [self._capped(r.count(), limit) for r in results]
                return [self._truncated(r, limit) for r in results]
        return [
            self.execute(query, count_only=count_only, limit=limit)
            for query in queries
        ]

    def _execute_join(
        self, query: JoinQuery, *, count_only: bool, limit: Optional[int]
    ):
        from repro import joins

        index = self.index
        if count_only:
            # Pair counting runs on the batch entry points' lazy result
            # sets: on the columnar core not a single pair (or Point) is
            # materialised.
            if query.kind == "box":
                counts = self._box_join_counts(query)
            elif query.kind == "radius":
                counts = [
                    r.count()
                    for r in index.batch_radius_query(query.probes, query.radius)
                ]
            else:
                counts = [r.count() for r in index.batch_knn(query.probes, query.k)]
            return self._capped(sum(counts), limit)
        if query.kind == "box":
            pairs = joins.box_join(
                index, query.probes, query.half_width, query.half_height
            )
        elif query.kind == "radius":
            pairs = joins.radius_join(index, query.probes, query.radius)
        else:
            # The kNN operator's native rows are per-probe entries, so
            # ``limit`` truncates entries (like it truncates pairs above).
            pairs = joins.knn_join(index, query.probes, query.k)
        return pairs if limit is None else pairs[:limit]

    def _box_join_counts(self, query: JoinQuery) -> List[int]:
        from repro.joins import _probe_columns, _probe_windows

        half_height = (
            query.half_width if query.half_height is None else query.half_height
        )
        xs, ys = _probe_columns(query.probes)
        windows = _probe_windows(xs, ys, query.half_width, half_height)
        return self.index.batch_range_count(windows)

    @staticmethod
    def _check_limit(limit: Optional[int]) -> None:
        if limit is not None and limit < 0:
            raise ValueError(f"limit must be non-negative, got {limit}")

    @staticmethod
    def _capped(count: int, limit: Optional[int]) -> int:
        return count if limit is None else min(count, limit)

    @staticmethod
    def _truncated(result: ResultSet, limit: Optional[int]) -> ResultSet:
        return result if limit is None else result.head(limit)

    # ------------------------------------------------------------------
    # index protocol delegation
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.index.name

    @property
    def counters(self):
        return self.index.counters

    @property
    def phase_timer(self):
        """The wrapped index's phase timer (``None`` where unsupported)."""
        return getattr(self.index, "phase_timer", None)

    @phase_timer.setter
    def phase_timer(self, value) -> None:
        self.index.phase_timer = value

    def reset_counters(self) -> None:
        self.index.reset_counters()

    def __len__(self) -> int:
        return len(self.index)

    def size_bytes(self) -> int:
        return self.index.size_bytes()

    def extent(self):
        return self.index.extent()

    def insert(self, point: Point) -> None:
        self.index.insert(point)

    def delete(self, point: Point) -> bool:
        return self.index.delete(point)

    def range_query(self, query: Rect) -> ResultSet:
        return self.index.range_query(query)

    def batch_range_query(self, queries: Sequence[Rect]) -> List[ResultSet]:
        return self.index.batch_range_query(queries)

    def range_count(self, query: Rect) -> int:
        return self.index.range_count(query)

    def batch_range_count(self, queries: Sequence[Rect]) -> List[int]:
        return self.index.batch_range_count(queries)

    def point_query(self, point: Point) -> bool:
        return self.index.point_query(point)

    def knn(self, center: Point, k: int, initial_radius: Optional[float] = None) -> ResultSet:
        return self.index.knn(center, k, initial_radius)

    def batch_knn(
        self, centers: Sequence[Point], k: int, initial_radius: Optional[float] = None
    ) -> List[ResultSet]:
        return self.index.batch_knn(centers, k, initial_radius)

    def radius_query(self, center: Point, radius: float) -> ResultSet:
        return self.index.radius_query(center, radius)

    def batch_radius_query(
        self, centers: Sequence[Point], radius: float
    ) -> List[ResultSet]:
        return self.index.batch_radius_query(centers, radius)

    def __repr__(self) -> str:
        return f"SpatialEngine({self.name}, {len(self)} points)"


def as_engine(index_or_engine) -> SpatialEngine:
    """Wrap a bare index into an engine; pass engines through unchanged."""
    if isinstance(index_or_engine, SpatialEngine):
        return index_or_engine
    return SpatialEngine(index_or_engine)
