"""The advise stage: score a live layout against an observed workload.

``engine.advise()`` answers the operational question between *observe* and
*adapt*: "is the layout I am serving still the right one for the traffic I
am actually seeing?".  The answer combines three ingredients this library
already measures exactly:

* a **count-only replay** of the observed workload on the live index — its
  ``points_filtered`` counter delta is the real scan cost of the current
  layout (no estimation, no boxing, array-speed on the columnar core);
* a **density estimate** of the same workload's true result sizes
  (:mod:`repro.density`) — an idealised re-derived layout cannot scan
  fewer points than the results themselves, plus a page-granularity
  overhead of a couple of leaf pages per query, which gives the
  *after* cost without building anything;
* the **cost-redemption arithmetic** of Table 4
  (:mod:`repro.evaluation.cost_redemption`) — given the measured rebuild
  time, after how many future queries does the adaptation pay for itself?

The result is a :class:`TuningReport`: estimated scan cost before/after, a
drift score against the layout's reference workload (when known), the
break-even query count, and a ``should_adapt`` verdict.
"""

from __future__ import annotations

import math
import time
from dataclasses import asdict, dataclass
from typing import Optional, Sequence

import numpy as np

from repro.analysis.drift import WorkloadDriftDetector
from repro.density import DensityEstimator, ExactDensity, RandomForestDensity
from repro.evaluation.cost_redemption import CostRedemption, cost_redemption
from repro.geometry import Rect
from repro.workloads.workload import Workload

__all__ = ["TuningReport", "advise_layout", "tuned_leaf_capacity"]

#: Leaf pages an idealised workload-aligned layout still scans per query on
#: top of the true result (boundary pages the result straddles).
_PAGE_OVERHEAD = 2.0

#: Queries replayed/estimated at most (larger workloads are subsampled —
#: the report's per-query numbers are means, which converge long before
#: that).
_ADVISE_SAMPLE = 512

#: Per-node/page projection cost of the columnar engine, in seconds — the
#: price of one Python-level tree/page visit.  Together with
#: :data:`_POINT_SECONDS` this calibrates the engine's measured behaviour
#: at 100k points (a tiny query on a deep tree ~12us, a 2k-result scan on
#: 64-point pages ~70us), and only their *ratio* matters for the
#: improvement estimate.
_NODE_SECONDS = 1.5e-6
#: Per-point vectorised filtering cost (one row of the flat-column mask).
_POINT_SECONDS = 1.2e-9

#: Bounds for workload-derived page sizes: no smaller than the library
#: default, no larger than the biggest page the paper's sweeps use.
_MIN_LEAF_CAPACITY = 64
_MAX_LEAF_CAPACITY = 4096


def tuned_leaf_capacity(
    mean_result: float,
    *,
    minimum: int = _MIN_LEAF_CAPACITY,
    maximum: int = _MAX_LEAF_CAPACITY,
) -> int:
    """The page size a workload with this mean result size wants.

    Page granularity is a layout parameter like the split points: tiny
    interactive queries want small pages (excess points per touched page
    stay low), analytical scans want big pages (projection visits per
    query collapse while the vectorised scan is almost free per point).
    Matching the page size to the mean result size — rounded to a power
    of two and clamped to ``[minimum, maximum]`` — places one typical
    result on O(1) pages, which is where the engine's measured per-query
    cost bottoms out.
    """
    if not math.isfinite(mean_result) or mean_result <= minimum:
        return minimum
    return int(min(maximum, 2 ** round(math.log2(mean_result))))


def _estimated_query_seconds(
    num_points: int, leaf_capacity: int, mean_result: float
) -> float:
    """Model of the columnar engine's per-query cost for a given page size.

    ``projection`` walks ``log4(n / L)`` tree levels plus one visit per
    touched page (``R / L`` pages hold the result, plus boundary pages);
    ``scan`` masks the result rows plus the page-granularity slack.
    """
    leaves = max(1.0, num_points / max(1, leaf_capacity))
    depth = math.log(leaves, 4) if leaves > 1 else 0.0
    pages = mean_result / max(1, leaf_capacity) + _PAGE_OVERHEAD
    projection = _NODE_SECONDS * (depth + pages)
    scan = _POINT_SECONDS * (mean_result + _PAGE_OVERHEAD * leaf_capacity)
    return projection + scan


@dataclass(frozen=True)
class TuningReport:
    """The advisor's verdict and every number behind it.

    ``scanned_before`` is measured on the live index; ``scanned_after`` is
    the density-model estimate for a layout re-derived from the workload.
    Costs are per query (points scanned); ``seconds_*`` cover one replay of
    the scored sample.  ``break_even_queries`` is ``None`` when no rebuild
    cost was supplied or the adaptation never pays off.
    """

    index_name: str
    workload_queries: int
    scored_queries: int
    scanned_before: float
    scanned_after: float
    leaf_capacity_before: int
    leaf_capacity_after: int
    estimated_improvement: float
    drift_score: Optional[float]
    seconds_before: float
    estimated_seconds_after: float
    rebuild_seconds: Optional[float]
    break_even_queries: Optional[float]
    redemption: Optional[CostRedemption]
    should_adapt: bool
    reason: str

    def render(self) -> str:
        """One-paragraph human-readable summary."""
        lines = [
            f"TuningReport for {self.index_name} over {self.workload_queries} "
            f"observed queries ({self.scored_queries} scored):",
            f"  scan cost/query: {self.scanned_before:,.0f} now vs "
            f"~{self.scanned_after:,.0f} re-derived "
            f"({self.estimated_improvement:.2f}x estimated improvement)",
        ]
        if self.leaf_capacity_after != self.leaf_capacity_before:
            lines.append(
                f"  page size: {self.leaf_capacity_before} now, observed "
                f"result sizes want {self.leaf_capacity_after}"
            )
        if self.drift_score is not None:
            lines.append(f"  drift vs reference workload: {self.drift_score:.2f}")
        if self.break_even_queries is not None:
            lines.append(
                f"  adaptation pays off after ~{self.break_even_queries:,.0f} queries"
            )
        lines.append(f"  verdict: {'ADAPT' if self.should_adapt else 'KEEP'} — {self.reason}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """The report as JSON-shaped plain data (the ``/advise`` body).

        The nested :class:`CostRedemption` flattens to a dict too; every
        value is an int, float, str, bool or ``None``.
        """
        return asdict(self)


def _index_coordinates(index) -> np.ndarray:
    """The indexed points as an ``(n, 2)`` array, columnar when possible."""
    flat = getattr(index, "_flat_columns", None)
    if callable(flat):
        xs, ys, _ = flat()
        return np.column_stack([xs, ys])
    extent = index.extent()
    if extent is None:
        return np.empty((0, 2), dtype=np.float64)
    xs, ys = index.range_query(extent).as_arrays()
    return np.column_stack([xs, ys])


def _resolve_density(index, density) -> DensityEstimator:
    if isinstance(density, DensityEstimator):
        return density
    coordinates = _index_coordinates(index)
    if density in (None, "exact"):
        return ExactDensity(coordinates)
    if density == "rfde":
        return RandomForestDensity(coordinates, seed=0)
    raise ValueError(f"Unknown density selector {density!r}; expected 'exact' or 'rfde'")


def advise_layout(
    index,
    workload: Workload,
    *,
    reference: Optional[Sequence[Rect]] = None,
    density=None,
    min_improvement: float = 1.2,
    rebuild_seconds: Optional[float] = None,
    expected_future_queries: Optional[float] = None,
    sample: int = _ADVISE_SAMPLE,
    seed: int = 0,
) -> TuningReport:
    """Score ``index``'s current layout against an observed ``workload``.

    Parameters
    ----------
    index:
        The live index (any :class:`~repro.interfaces.SpatialIndex`).
    workload:
        The observed (or anticipated) :class:`~repro.workloads.Workload`.
        kNN and radius probes are scored through their equivalent range
        rectangles (Section 6.3's decomposition).
    reference:
        The workload the current layout was derived from (rectangles), for
        the drift score; ``None`` leaves drift unreported.
    density:
        ``"exact"`` (default), ``"rfde"``, or a prebuilt estimator — how
        the re-derived layout's scan cost is estimated.
    min_improvement:
        Estimated improvement ratio below which the verdict is "keep".
    rebuild_seconds:
        Measured/estimated cost of re-deriving the layout; enables the
        Table 4 break-even arithmetic.
    expected_future_queries:
        When given together with a finite break-even count, an adaptation
        that would not pay off within this horizon is vetoed.
    sample:
        Cap on the number of queries replayed/estimated (uniform sample).
    """
    if min_improvement <= 0:
        raise ValueError(f"min_improvement must be positive, got {min_improvement}")
    if not isinstance(workload, Workload):
        workload = Workload(queries=list(workload))
    total_queries = len(workload)
    if total_queries == 0:
        raise ValueError("Cannot advise on an empty workload; record or pass queries")
    scored = workload
    if total_queries > sample:
        scored = workload.sample(sample, seed=seed)
    table = scored.equivalent_ranges(len(index), index.extent())
    rects = [Rect(float(r[0]), float(r[1]), float(r[2]), float(r[3])) for r in table]

    # --- measured cost of the *current* layout -------------------------
    # The replay's counter increments are rolled back afterwards: advising
    # is an introspection step, and measurement workflows bracketing it
    # must see only their own queries in the counters.
    counters = index.counters
    saved_counters = vars(counters).copy()
    try:
        start = time.perf_counter()
        counts = index.batch_range_count(rects)
        seconds_before = time.perf_counter() - start
        scanned_total = float(
            counters.points_filtered - saved_counters["points_filtered"]
        )
    finally:
        vars(counters).update(saved_counters)
    num_scored = max(1, len(rects))
    scanned_before = scanned_total / num_scored

    # --- estimated cost of a re-derived layout -------------------------
    leaf_before = int(getattr(index, "leaf_capacity", _MIN_LEAF_CAPACITY)
                      or _MIN_LEAF_CAPACITY)
    if density in (None, "exact") or isinstance(density, ExactDensity):
        # The count-only replay above already produced the exact per-query
        # result sizes; estimating them again over the full point set
        # would only duplicate that work.
        estimated_results = float(sum(counts))
    else:
        estimator = _resolve_density(index, density)
        estimated_results = float(sum(estimator.estimate(rect) for rect in rects))
    mean_result = estimated_results / num_scored
    leaf_after = tuned_leaf_capacity(mean_result)
    ideal_after = mean_result + _PAGE_OVERHEAD * leaf_after
    # A re-derived layout never needs to be *worse* than the current one —
    # keeping the current layout is always on the table — so estimates are
    # clamped by the measured cost and the improvement ratio is >= 1.
    scanned_after = min(scanned_before, ideal_after) if scanned_before > 0 else ideal_after
    if leaf_after == leaf_before:
        # Same page granularity: the gain can only come from re-aligning
        # split points/orderings with the observed footprints, which the
        # conservative scanned-points ratio captures.
        improvement = scanned_before / max(scanned_after, 1e-9)
        estimated_seconds_after = seconds_before / max(improvement, 1e-9)
    else:
        # Granularity drift: the observed result sizes want a different
        # page size, and the dominant effect is the engine's per-page
        # projection cost vs per-point scan trade-off — estimated with the
        # calibrated latency model, clamped by the measured cost.
        per_query_model = _estimated_query_seconds(len(index), leaf_after, mean_result)
        estimated_seconds_after = min(seconds_before, per_query_model * num_scored)
        improvement = seconds_before / max(estimated_seconds_after, 1e-12)
        # Report the equivalent-work figure so the rendered before/after
        # ratio matches the improvement estimate.
        scanned_after = scanned_before / max(improvement, 1e-9)

    # --- drift ----------------------------------------------------------
    drift = None
    reference_rects = list(reference) if reference else []
    if reference_rects:
        detector = WorkloadDriftDetector.from_workload(
            reference_rects, extent=index.extent()
        )
        drift = detector.drift_score(rects)

    # --- Table 4 break-even arithmetic ---------------------------------
    redemption = None
    break_even = None
    if rebuild_seconds is not None and num_scored > 0:
        per_query_before = seconds_before / num_scored
        per_query_after = estimated_seconds_after / num_scored
        redemption = cost_redemption(
            getattr(index, "name", type(index).__name__),
            index_build_seconds=float(rebuild_seconds),
            index_query_seconds=per_query_after,
            base_build_seconds=0.0,
            base_query_seconds=per_query_before,
        )
        if redemption.sign == "+":
            break_even = redemption.queries_to_break_even

    # --- verdict --------------------------------------------------------
    if improvement < min_improvement:
        should_adapt = False
        reason = (
            f"estimated improvement {improvement:.2f}x is below the "
            f"{min_improvement:.2f}x threshold"
        )
    elif (
        expected_future_queries is not None
        and break_even is not None
        and break_even > expected_future_queries
    ):
        should_adapt = False
        reason = (
            f"improvement {improvement:.2f}x, but the rebuild only pays off after "
            f"{break_even:,.0f} queries and just {expected_future_queries:,.0f} "
            f"are expected"
        )
    else:
        should_adapt = True
        reason = f"re-deriving the layout should cut scan cost {improvement:.2f}x"
        if drift is not None:
            reason += f" (drift {drift:.2f} from the reference workload)"

    return TuningReport(
        index_name=getattr(index, "name", type(index).__name__),
        workload_queries=total_queries,
        scored_queries=num_scored,
        scanned_before=scanned_before,
        scanned_after=scanned_after,
        leaf_capacity_before=leaf_before,
        leaf_capacity_after=leaf_after,
        estimated_improvement=improvement,
        drift_score=drift,
        seconds_before=seconds_before,
        estimated_seconds_after=estimated_seconds_after,
        rebuild_seconds=rebuild_seconds,
        break_even_queries=break_even,
        redemption=redemption,
        should_adapt=should_adapt,
        reason=reason,
    )
