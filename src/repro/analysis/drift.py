"""Detecting query-workload drift.

A workload-aware index is only as good as the workload it was built for.
The detector here summarises the *spatial footprint* of a workload — which
parts of the data space its queries touch, and how heavily — as a coarse
grid histogram, and measures drift between the training workload and an
observed workload as the total-variation distance between their normalised
footprints.  The measure is 0 for identical workloads and approaches 1 when
the observed queries touch completely different regions; the workload-change
experiment (Figure 12) shows WaZI's advantage eroding once roughly half the
workload has moved, which motivates the default rebuild threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.geometry import Rect, bounding_box_of_rects


@dataclass(frozen=True)
class _Footprint:
    """Normalised spatial footprint of a workload over a fixed grid."""

    weights: np.ndarray

    def distance(self, other: "_Footprint") -> float:
        """Total-variation distance between two footprints (in ``[0, 1]``)."""
        return float(np.abs(self.weights - other.weights).sum() / 2.0)


class WorkloadDriftDetector:
    """Scores how far an observed workload has drifted from a reference one.

    Parameters
    ----------
    extent:
        The data-space rectangle over which footprints are histogrammed.
    grid:
        Histogram resolution per axis (``grid x grid`` cells).
    rebuild_threshold:
        Drift score above which :meth:`should_rebuild` returns ``True``.
        The default of 0.35 corresponds to roughly half of a skewed workload
        having moved to different hot spots in the Figure 12 experiment.
    """

    def __init__(self, extent: Rect, grid: int = 16, rebuild_threshold: float = 0.35) -> None:
        if grid <= 0:
            raise ValueError(f"grid must be positive, got {grid}")
        if not 0.0 < rebuild_threshold <= 1.0:
            raise ValueError(f"rebuild_threshold must be in (0, 1], got {rebuild_threshold}")
        self.extent = extent
        self.grid = grid
        self.rebuild_threshold = rebuild_threshold
        self._reference: Optional[_Footprint] = None

    # ------------------------------------------------------------------
    @classmethod
    def from_workload(
        cls,
        queries: Sequence[Rect],
        grid: int = 16,
        rebuild_threshold: float = 0.35,
        extent: Optional[Rect] = None,
    ) -> "WorkloadDriftDetector":
        """Build a detector whose reference footprint is the given workload."""
        if extent is None:
            if not queries:
                raise ValueError("Cannot infer an extent from an empty workload")
            extent = bounding_box_of_rects(queries)
        detector = cls(extent, grid=grid, rebuild_threshold=rebuild_threshold)
        detector.fit(queries)
        return detector

    def fit(self, queries: Sequence[Rect]) -> None:
        """Set (or reset) the reference workload."""
        self._reference = self._footprint(queries)

    # ------------------------------------------------------------------
    def _footprint(self, queries: Sequence[Rect]) -> _Footprint:
        weights = np.zeros((self.grid, self.grid), dtype=np.float64)
        span_x = self.extent.width if self.extent.width > 0 else 1.0
        span_y = self.extent.height if self.extent.height > 0 else 1.0
        for query in queries:
            clipped = query.intersection(self.extent)
            if clipped is None:
                continue
            ix_lo = self._cell(clipped.xmin, self.extent.xmin, span_x)
            ix_hi = self._cell(clipped.xmax, self.extent.xmin, span_x)
            iy_lo = self._cell(clipped.ymin, self.extent.ymin, span_y)
            iy_hi = self._cell(clipped.ymax, self.extent.ymin, span_y)
            # Spread one unit of mass over the touched cells so large and
            # small queries contribute equally to the footprint.
            touched = (ix_hi - ix_lo + 1) * (iy_hi - iy_lo + 1)
            weights[ix_lo:ix_hi + 1, iy_lo:iy_hi + 1] += 1.0 / touched
        total = weights.sum()
        if total > 0:
            weights = weights / total
        return _Footprint(weights.ravel())

    def _cell(self, value: float, origin: float, span: float) -> int:
        index = int((value - origin) / span * self.grid)
        return max(0, min(self.grid - 1, index))

    # ------------------------------------------------------------------
    def drift_score(self, observed: Sequence[Rect]) -> float:
        """Total-variation distance between the observed and reference footprints."""
        if self._reference is None:
            raise RuntimeError("Detector has no reference workload; call fit() first")
        return self._reference.distance(self._footprint(observed))

    def should_rebuild(self, observed: Sequence[Rect]) -> bool:
        """Whether the observed workload has drifted past the rebuild threshold."""
        return self.drift_score(observed) >= self.rebuild_threshold
