"""Deciding whether a rebuild pays for itself.

Detecting drift (``WorkloadDriftDetector``) answers "has the workload
changed?"; this module answers the operational follow-up: "is it worth
rebuilding?".  Following the cost-redemption arithmetic of Table 4, a
rebuild is worthwhile when the expected number of future queries times the
per-query latency saved by a fresh index exceeds the rebuild cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.drift import WorkloadDriftDetector
from repro.geometry import Rect


@dataclass(frozen=True)
class RebuildRecommendation:
    """The advisor's verdict and the numbers behind it."""

    should_rebuild: bool
    drift_score: float
    estimated_break_even_queries: Optional[float]
    reason: str


class RebuildAdvisor:
    """Combines drift detection with a break-even estimate.

    Parameters
    ----------
    detector:
        A fitted :class:`WorkloadDriftDetector` for the index's training
        workload.
    rebuild_seconds:
        Measured (or estimated) cost of rebuilding the index.
    stale_query_seconds / fresh_query_seconds:
        Per-query latencies of the current (stale) index and of a freshly
        rebuilt index on the *current* workload.  In practice these come
        from sampling a few hundred queries against the live index and
        against a rebuilt index on a data sample.
    """

    def __init__(
        self,
        detector: WorkloadDriftDetector,
        rebuild_seconds: float,
        stale_query_seconds: float,
        fresh_query_seconds: float,
    ) -> None:
        if rebuild_seconds < 0:
            raise ValueError("rebuild_seconds must be non-negative")
        if stale_query_seconds < 0 or fresh_query_seconds < 0:
            raise ValueError("query latencies must be non-negative")
        self.detector = detector
        self.rebuild_seconds = rebuild_seconds
        self.stale_query_seconds = stale_query_seconds
        self.fresh_query_seconds = fresh_query_seconds

    def recommend(
        self, observed: Sequence[Rect], expected_future_queries: float
    ) -> RebuildRecommendation:
        """Advise whether to rebuild given the observed workload and horizon."""
        drift = self.detector.drift_score(observed)
        gain_per_query = self.stale_query_seconds - self.fresh_query_seconds
        if gain_per_query <= 0:
            return RebuildRecommendation(
                should_rebuild=False,
                drift_score=drift,
                estimated_break_even_queries=None,
                reason="a rebuilt index would not be faster on the observed workload",
            )
        break_even = self.rebuild_seconds / gain_per_query
        if not self.detector.should_rebuild(observed):
            return RebuildRecommendation(
                should_rebuild=False,
                drift_score=drift,
                estimated_break_even_queries=break_even,
                reason=(
                    f"drift {drift:.2f} below threshold "
                    f"{self.detector.rebuild_threshold:.2f}"
                ),
            )
        if expected_future_queries < break_even:
            return RebuildRecommendation(
                should_rebuild=False,
                drift_score=drift,
                estimated_break_even_queries=break_even,
                reason=(
                    f"rebuild would only pay off after {break_even:,.0f} queries, "
                    f"but only {expected_future_queries:,.0f} are expected"
                ),
            )
        return RebuildRecommendation(
            should_rebuild=True,
            drift_score=drift,
            estimated_break_even_queries=break_even,
            reason=(
                f"drift {drift:.2f} exceeds the threshold and the rebuild pays off "
                f"after {break_even:,.0f} of the expected "
                f"{expected_future_queries:,.0f} queries"
            ),
        )
