"""Workload analysis: drift detection, rebuild advice, layout tuning.

Section 6.8 of the paper shows that WaZI degrades when the query workload
drifts away from the workload it was built for, and the conclusion lists
"mechanisms to decide when to retrain an index" as future work, pointing at
the concept-drift literature.  This subpackage provides a concrete,
lightweight realisation of that direction:

* :class:`~repro.analysis.drift.WorkloadDriftDetector` — summarises a
  training workload as a coarse spatial histogram of query footprints and
  scores how far an observed workload has drifted (total-variation
  distance), with a configurable rebuild threshold.
* :class:`~repro.analysis.advisor.RebuildAdvisor` — combines the drift
  score with the cost-redemption arithmetic of Table 4 to advise whether a
  rebuild would pay for itself over an expected number of future queries.
* :func:`~repro.analysis.tuning.advise_layout` /
  :class:`~repro.analysis.tuning.TuningReport` — the advise stage of the
  engine's observe → advise → adapt lifecycle: a measured count-only
  replay of the observed workload plus a density-model estimate of a
  re-derived layout's cost, folded into a single actionable verdict
  (this is what :meth:`repro.engine.SpatialEngine.advise` returns).
"""

from repro.analysis.drift import WorkloadDriftDetector
from repro.analysis.advisor import RebuildAdvisor, RebuildRecommendation
from repro.analysis.tuning import TuningReport, advise_layout, tuned_leaf_capacity

__all__ = [
    "WorkloadDriftDetector",
    "RebuildAdvisor",
    "RebuildRecommendation",
    "TuningReport",
    "advise_layout",
    "tuned_leaf_capacity",
]
