"""NumPy-backed binary codecs for datasets and range-query workloads.

The binary twin of :mod:`repro.persistence.json_codecs`: coordinate columns
and query rectangles are stored as flat float64 arrays inside the snapshot
container, so a million-point dataset loads in milliseconds instead of
parsing megabytes of JSON.  Loading boxes the columns back into
:class:`~repro.geometry.Point` / :class:`~repro.geometry.Rect` objects
through :func:`repro.geometry.points_from_arrays` — the bulk path every
index's constructor can consume directly.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.geometry import Point, Rect, points_from_arrays, points_to_arrays
from repro.persistence.container import PathLike, read_container, write_container
from repro.persistence.errors import SnapshotFormatError, SnapshotVersionError

#: Format version of the binary dataset/workload containers.
ARRAYS_FORMAT_VERSION = 1

KIND_POINTS = "points-columns"
KIND_QUERIES = "queries-columns"


def rects_to_array(queries: Sequence[Rect]) -> np.ndarray:
    """Pack rectangles into an ``(n, 4)`` float64 ``[xmin, ymin, xmax, ymax]`` table."""
    rects = np.empty((len(queries), 4), dtype=np.float64)
    for row, query in enumerate(queries):
        rects[row] = (query.xmin, query.ymin, query.xmax, query.ymax)
    return rects


def rects_from_array(rects: np.ndarray) -> List[Rect]:
    """Unpack an ``(n, 4)`` table back into :class:`Rect` objects."""
    table = np.asarray(rects, dtype=np.float64).reshape(-1, 4)
    return [Rect(*row) for row in table.tolist()]


def save_points_binary(points: Sequence[Point], path: PathLike) -> None:
    """Write a dataset as two float64 coordinate columns."""
    xs, ys = points_to_arrays(points)
    _write(path, KIND_POINTS, {"xs": xs, "ys": ys})


def load_points_binary(path: PathLike) -> List[Point]:
    """Read a dataset written by :func:`save_points_binary`."""
    xs, ys = load_points_columns(path)
    return points_from_arrays(xs, ys)


def load_points_columns(path: PathLike) -> Tuple[np.ndarray, np.ndarray]:
    """Read a binary dataset as raw ``(xs, ys)`` columns, skipping boxing.

    The columnar entry point for consumers (analytics, bulk statistics)
    that never need :class:`Point` objects.
    """
    arrays = _read(path, KIND_POINTS, ("xs", "ys"))
    xs = arrays["xs"]
    ys = arrays["ys"]
    if xs.shape != ys.shape or xs.ndim != 1:
        raise SnapshotFormatError(
            f"{path} coordinate columns have inconsistent shapes "
            f"{xs.shape} / {ys.shape}"
        )
    return xs, ys


def save_queries_binary(queries: Sequence[Rect], path: PathLike) -> None:
    """Write a range-query workload as an ``(n, 4)`` float64 rectangle table."""
    _write(path, KIND_QUERIES, {"rects": rects_to_array(queries)})


def load_queries_binary(path: PathLike) -> List[Rect]:
    """Read a workload written by :func:`save_queries_binary`."""
    arrays = _read(path, KIND_QUERIES, ("rects",))
    try:
        return rects_from_array(arrays["rects"])
    except (TypeError, ValueError) as exc:
        raise SnapshotFormatError(f"{path} holds a malformed rects table: {exc}") from exc


def _write(path: PathLike, kind: str, arrays) -> None:
    from repro import __version__

    write_container(
        path,
        {
            "kind": kind,
            "format_version": ARRAYS_FORMAT_VERSION,
            "library_version": __version__,
        },
        arrays,
    )


def _read(path: PathLike, expected_kind: str, required: Sequence[str]):
    manifest, arrays = read_container(path)
    kind = manifest.get("kind")
    if kind != expected_kind:
        raise SnapshotFormatError(
            f"{path} stores {kind!r}, expected {expected_kind!r}"
        )
    version = manifest.get("format_version")
    if version != ARRAYS_FORMAT_VERSION:
        raise SnapshotVersionError(
            f"{path} uses {expected_kind} format version {version!r}, but this "
            f"library reads version {ARRAYS_FORMAT_VERSION} "
            f"(written by library {manifest.get('library_version', 'unknown')}); "
            f"upgrade the library or re-export the data"
        )
    for name in required:
        if name not in arrays:
            raise SnapshotFormatError(f"{path} is missing the {name!r} column")
    return arrays
