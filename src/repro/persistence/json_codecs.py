"""Legacy JSON codecs for datasets and range-query workloads.

JSON is the portable, diffable, inspectable format: the recommended way to
move data across library versions is to persist the dataset and workload
here (or in the binary twin, :mod:`repro.persistence.arrays`) and rebuild
indexes, which is deterministic given the construction seed.  Kept
byte-compatible with the files written by every earlier revision of the
library.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Sequence

from repro.geometry import Point, Rect
from repro.persistence.container import PathLike
from repro.persistence.errors import DatasetFormatError

_FORMAT_VERSION = 1


def save_points(points: Sequence[Point], path: PathLike) -> None:
    """Write a dataset to a JSON file."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "kind": "points",
        "points": [[p.x, p.y] for p in points],
    }
    Path(path).write_text(json.dumps(payload))


def load_points(path: PathLike) -> List[Point]:
    """Read a dataset written by :func:`save_points`."""
    payload = _read_payload(path, expected_kind="points", data_key="points")
    try:
        return [Point(float(x), float(y)) for x, y in payload["points"]]
    except (TypeError, ValueError) as exc:
        raise DatasetFormatError(f"{path} holds a malformed point row: {exc}") from exc


def save_queries(queries: Sequence[Rect], path: PathLike) -> None:
    """Write a range-query workload to a JSON file."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "kind": "queries",
        "queries": [[q.xmin, q.ymin, q.xmax, q.ymax] for q in queries],
    }
    Path(path).write_text(json.dumps(payload))


def load_queries(path: PathLike) -> List[Rect]:
    """Read a workload written by :func:`save_queries`."""
    payload = _read_payload(path, expected_kind="queries", data_key="queries")
    try:
        return [Rect(*map(float, values)) for values in payload["queries"]]
    except (TypeError, ValueError) as exc:
        raise DatasetFormatError(f"{path} holds a malformed query row: {exc}") from exc


def _read_payload(path: PathLike, expected_kind: str, data_key: str) -> dict:
    # DatasetFormatError subclasses both PersistenceError (the package-wide
    # fallback contract) and ValueError (what these codecs always raised).
    try:
        payload = json.loads(Path(path).read_text())
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise DatasetFormatError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "kind" not in payload:
        raise DatasetFormatError(f"{path} is not a repro persistence file")
    if payload.get("format_version") != _FORMAT_VERSION:
        raise DatasetFormatError(
            f"{path} has format version {payload.get('format_version')}, "
            f"expected {_FORMAT_VERSION}"
        )
    if payload["kind"] != expected_kind:
        raise DatasetFormatError(
            f"{path} stores {payload['kind']!r}, expected {expected_kind!r}"
        )
    if not isinstance(payload.get(data_key), list):
        raise DatasetFormatError(
            f"{path} lacks a {data_key!r} list "
            f"(got {type(payload.get(data_key)).__name__})"
        )
    return payload
