"""Versioned pickle codec for whole index objects.

Pickles are a convenience for *same-version* save/restore — they are plain
Python object graphs and break silently when the library's internal layout
changes.  Earlier revisions wrote the raw pickle, so loading a stale file
surfaced as an opaque ``AttributeError`` from somewhere inside
``pickle.load``.  The codec now wraps the index pickle in an outer envelope
built only from builtin types (always loadable), carrying a format version,
the producing library version and the index class path; any failure to
restore the inner object is translated into a clear
:class:`~repro.persistence.errors.IndexLoadError` telling the operator to
rebuild from the persisted dataset.

Raw pickles written by earlier library revisions still load (best effort):
a file that unpickles into a spatial index directly is returned as-is.
"""

from __future__ import annotations

import pickle

from repro.persistence.container import PathLike
from repro.persistence.errors import IndexLoadError

#: Version of the pickle envelope (bumped only when the envelope changes;
#: inner-object compatibility is what the envelope exists to diagnose).
PICKLE_FORMAT_VERSION = 2

_ENVELOPE_MARKER = "repro-index-pickle"

_REBUILD_HINT = (
    "rebuild the index from the persisted dataset and workload instead "
    "(save_points/save_queries or the binary codecs store them in stable "
    "formats, and construction is deterministic given the seed)"
)


def save_index(index, path: PathLike) -> None:
    """Pickle a built index to disk inside the versioned envelope.

    Note: the pickle remains tied to the library version that produced it;
    for long-lived deployments prefer :func:`repro.persistence.save_snapshot`
    (Z-index family) or persisting the dataset and rebuilding.
    """
    from repro import __version__

    cls = type(index)
    envelope = {
        "format": _ENVELOPE_MARKER,
        "format_version": PICKLE_FORMAT_VERSION,
        "library_version": __version__,
        "class_module": cls.__module__,
        "class_name": cls.__qualname__,
        "index_name": getattr(index, "name", cls.__name__),
        "payload": pickle.dumps(index, protocol=pickle.HIGHEST_PROTOCOL),
    }
    with open(path, "wb") as handle:
        pickle.dump(envelope, handle, protocol=pickle.HIGHEST_PROTOCOL)


def load_index(path: PathLike):
    """Load an index pickled by :func:`save_index`.

    Raises :class:`IndexLoadError` — never a bare ``AttributeError`` /
    ``ModuleNotFoundError`` — when the file is not an index pickle or when
    the stored object no longer matches this library's class layout.
    """
    from repro import __version__

    try:
        with open(path, "rb") as handle:
            outer = pickle.load(handle)
    except OSError:
        raise
    except Exception as exc:  # noqa: BLE001 - any unpickling failure
        raise IndexLoadError(
            f"{path} could not be read as an index pickle ({exc!r}); "
            f"if it was written by a different library version, {_REBUILD_HINT}"
        ) from exc

    if isinstance(outer, dict) and outer.get("format") == _ENVELOPE_MARKER:
        version = outer.get("format_version")
        if not isinstance(version, int) or version > PICKLE_FORMAT_VERSION:
            raise IndexLoadError(
                f"{path} uses index-pickle format version {version!r} "
                f"(written by library {outer.get('library_version', 'unknown')}), "
                f"but this library ({__version__}) reads up to "
                f"{PICKLE_FORMAT_VERSION}; upgrade the library or {_REBUILD_HINT}"
            )
        try:
            index = pickle.loads(outer["payload"])
        except Exception as exc:  # noqa: BLE001 - stale class layout
            raise IndexLoadError(
                f"{path} stores a "
                f"{outer.get('class_module')}.{outer.get('class_name')} pickled by "
                f"library version {outer.get('library_version', 'unknown')}, which "
                f"this library ({__version__}) can no longer restore ({exc!r}); "
                f"{_REBUILD_HINT}"
            ) from exc
    else:
        # Legacy format-version-1 file: the raw pickled index itself.
        index = outer

    if not hasattr(index, "range_query"):
        raise IndexLoadError(
            f"{path} did not restore to a spatial index "
            f"(got {type(index).__name__}); {_REBUILD_HINT}"
        )
    return index
