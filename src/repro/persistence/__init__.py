"""Saving and loading datasets, workloads and built indexes.

A production deployment of WaZI builds the index offline (the paper notes
it is "suited for workflows where index construction can be performed
offline ... and deployed for an extended amount of time") and ships it to
query servers.  This package provides the persistence formats for that
workflow, from most to least durable:

* **datasets and workloads** — compact JSON
  (:mod:`~repro.persistence.json_codecs`: portable, diffable, easy to
  inspect) or binary coordinate columns
  (:mod:`~repro.persistence.arrays`: milliseconds to load at millions of
  points).  Rebuilding from these is deterministic given the construction
  seed and survives any library version.
* **structural snapshots** — :func:`save_snapshot` / :func:`load_snapshot`
  store a built Z-index-family index as flat arrays in a versioned binary
  container and restore it in O(n) memcpy-level work, skipping the
  O(n log n) construction entirely.  :func:`save_rebuild_snapshot` extends
  the same container to the rest of the index zoo by persisting the
  dataset plus build recipe.
* **pickles** — :func:`save_index` / :func:`load_index` for same-version
  convenience, now wrapped in a versioned envelope so stale pickles fail
  with a clear "rebuild from the dataset" error instead of an opaque
  ``AttributeError``.

See ``docs/PERSISTENCE.md`` for the container layout, manifest fields and
format-version compatibility rules.
"""

from repro.persistence.arrays import (
    load_points_binary,
    load_points_columns,
    load_queries_binary,
    rects_from_array,
    rects_to_array,
    save_points_binary,
    save_queries_binary,
)
from repro.persistence.container import (
    CONTAINER_FORMAT,
    MEMBER_ALIGNMENT,
    array_member_offsets,
    extract_array_members,
    map_container,
    read_container,
    read_manifest,
    write_container,
)
from repro.persistence.errors import (
    DatasetFormatError,
    IndexLoadError,
    PersistenceError,
    SnapshotError,
    SnapshotFormatError,
    SnapshotVersionError,
)
from repro.persistence.json_codecs import (
    load_points,
    load_queries,
    save_points,
    save_queries,
)
from repro.persistence.pickle_codecs import (
    PICKLE_FORMAT_VERSION,
    load_index,
    save_index,
)
from repro.persistence.snapshot import (
    KIND_REBUILD,
    KIND_WORKLOAD,
    KIND_ZINDEX,
    SNAPSHOT_FORMAT_VERSION,
    dataset_fingerprint,
    load_snapshot,
    load_snapshot_with_history,
    load_workload,
    load_workload_history,
    save_rebuild_snapshot,
    save_snapshot,
    save_workload,
    workload_fingerprint,
)

__all__ = [
    "CONTAINER_FORMAT",
    "DatasetFormatError",
    "IndexLoadError",
    "KIND_REBUILD",
    "KIND_WORKLOAD",
    "KIND_ZINDEX",
    "MEMBER_ALIGNMENT",
    "PersistenceError",
    "PICKLE_FORMAT_VERSION",
    "SNAPSHOT_FORMAT_VERSION",
    "SnapshotError",
    "SnapshotFormatError",
    "SnapshotVersionError",
    "array_member_offsets",
    "dataset_fingerprint",
    "extract_array_members",
    "load_index",
    "map_container",
    "load_points",
    "load_points_binary",
    "load_points_columns",
    "load_queries",
    "load_queries_binary",
    "load_snapshot",
    "load_snapshot_with_history",
    "load_workload",
    "load_workload_history",
    "read_container",
    "read_manifest",
    "rects_from_array",
    "rects_to_array",
    "save_index",
    "save_points",
    "save_points_binary",
    "save_queries",
    "save_queries_binary",
    "save_rebuild_snapshot",
    "save_snapshot",
    "save_workload",
    "workload_fingerprint",
    "write_container",
]
