"""The snapshot container: a ZIP of NPY members plus a JSON manifest.

Layout (documented in ``docs/PERSISTENCE.md``)::

    snapshot.zip
    ├── manifest.json        UTF-8 JSON, always first; everything scalar
    └── <name>.npy           one uncompressed NPY member per array column

Members are stored **uncompressed** (``ZIP_STORED``): loading an array is
then a single sequential read into a freshly allocated buffer — effectively
a memcpy from the page cache — instead of an inflate pass, which is the
point of a binary snapshot format.  Member timestamps are pinned so that
saving the same index twice produces byte-identical files (handy for
content-addressed artifact stores and for tests).

Zero-copy mapping
-----------------
Array members are additionally written at **64-byte-aligned data offsets**
(via ZIP extra-field padding, the same trick ``zipalign`` uses for APKs):
because members are stored rather than deflated, the NPY payload of each
array sits verbatim in the file at a known offset, so :func:`map_container`
can hand back ``numpy.memmap`` views straight into the snapshot file —
no allocation, no copy, and the OS page cache is shared between every
process that maps the same snapshot.  NumPy's own NPY writer pads headers
to 64-byte multiples (``ARRAY_ALIGN``), so an aligned member start implies
an aligned array-data start, satisfying any vectorised consumer.
:func:`extract_array_members` unpacks the members as plain sidecar
``.npy`` files for tools that want ``np.load(..., mmap_mode='r')``
instead.  Containers written before alignment existed remain fully
mappable — ``numpy.memmap`` accepts arbitrary offsets — just without the
alignment guarantee.

This module knows nothing about *what* is stored; it only enforces the
container framing: the magic ``format`` marker, the manifest/array
consistency, and readable NPY members.  Kind- and version-negotiation live
with the codecs in :mod:`repro.persistence.snapshot`.
"""

from __future__ import annotations

import io
import json
import os
import struct
import zipfile
from pathlib import Path
from typing import Dict, Mapping, Tuple, Union

import numpy as np

from repro.persistence.errors import SnapshotFormatError

PathLike = Union[str, Path]

#: Value of the manifest's ``format`` field identifying our containers.
CONTAINER_FORMAT = "repro-snapshot"

_MANIFEST_MEMBER = "manifest.json"
_ARRAY_SUFFIX = ".npy"

# Fixed ZIP member timestamp (ZIP's epoch): identical input produces
# identical bytes regardless of when the snapshot is written.
_FIXED_DATE_TIME = (1980, 1, 1, 0, 0, 0)

#: Alignment (bytes) of every array member's data offset within the file.
MEMBER_ALIGNMENT = 64

# Private extra-field id carrying the alignment padding.  Ids with the high
# byte >= 0x80 sit outside the registered ranges; 0xD935 mirrors the value
# used by zipalign-style padding so unzip tools simply ignore it.
_ALIGN_EXTRA_ID = 0xD935

# Size of a ZIP local file header up to (not including) the variable-length
# file name, per APPNDX 4.3.7.
_LOCAL_HEADER_SIZE = 30
_LOCAL_HEADER_MAGIC = b"PK\x03\x04"


def write_container(
    path: PathLike, manifest: Dict, arrays: Mapping[str, np.ndarray]
) -> None:
    """Write a manifest + arrays container to ``path`` atomically enough.

    The manifest is augmented with the ``format`` marker and an ``arrays``
    section recording each member's dtype and shape (purely informational —
    the NPY headers remain authoritative on load).  Array names must be
    usable as ZIP member stems.
    """
    manifest = dict(manifest)
    manifest["format"] = CONTAINER_FORMAT
    manifest["arrays"] = {
        name: {"dtype": str(array.dtype), "shape": list(array.shape)}
        for name, array in sorted(arrays.items())
    }
    payload = json.dumps(manifest, indent=2, sort_keys=True).encode("utf-8")
    target = Path(path)
    # Write to a uniquely named sibling temp file and rename into place: a
    # crash mid-write never leaves a truncated container at the final path,
    # and concurrent writers of the same snapshot each own their scratch
    # file, so a loader sees one complete snapshot or the other — never a
    # torn mix.  The name is generated here (pid + random) rather than via
    # mkstemp so the file is created by ordinary open(), giving the same
    # umask-honouring permissions a direct write would — mkstemp's 0600
    # would survive os.replace and make cross-user serving fail.
    scratch = target.with_name(
        f"{target.name}.{os.getpid()}-{os.urandom(6).hex()}.tmp"  # repro-lint: disable=deterministic-io -- entropy names only the scratch file; the bytes written through it stay deterministic
    )
    try:
        with zipfile.ZipFile(scratch, "w", compression=zipfile.ZIP_STORED) as archive:
            archive.writestr(_member_info(_MANIFEST_MEMBER), payload)
            for name in sorted(arrays):
                array = np.ascontiguousarray(arrays[name])
                buffer = io.BytesIO()
                np.lib.format.write_array(buffer, array, allow_pickle=False)
                member = name + _ARRAY_SUFFIX
                info = _member_info(member)
                # Pad the local header's extra field so the member *data*
                # (the NPY bytes) starts on a MEMBER_ALIGNMENT boundary —
                # this is what lets map_container() return aligned memmaps.
                # After a completed writestr the stream sits exactly where
                # the next local header will go.
                header_end = (
                    archive.fp.tell()
                    + _LOCAL_HEADER_SIZE
                    + len(member.encode("utf-8"))
                )
                info.extra = _alignment_extra(header_end)
                archive.writestr(info, buffer.getvalue())
        os.replace(scratch, target)
    except BaseException:
        scratch.unlink(missing_ok=True)
        raise


def _alignment_extra(header_end: int) -> bytes:
    """Extra-field bytes padding a member whose data would start at ``header_end``.

    Returns ``b""`` when already aligned.  An extra field needs at least the
    4-byte (id, size) prologue, so paddings of 1-3 bytes borrow a whole
    extra alignment block.
    """
    pad = (-header_end) % MEMBER_ALIGNMENT
    if pad == 0:
        return b""
    if pad < 4:
        pad += MEMBER_ALIGNMENT
    return struct.pack("<HH", _ALIGN_EXTRA_ID, pad - 4) + b"\x00" * (pad - 4)


def _open_archive(target: Path) -> zipfile.ZipFile:
    try:
        return zipfile.ZipFile(target, "r")
    except (zipfile.BadZipFile, OSError) as exc:
        raise SnapshotFormatError(
            f"{target} is not a repro snapshot container (unreadable as ZIP: {exc})"
        ) from exc


def read_manifest(path: PathLike) -> Dict:
    """Read and validate only the manifest of a container.

    The cheap probe for callers that need to know *what* a snapshot stores
    (kind, index name, build recipe) before paying for the array members —
    e.g. :func:`repro.api.build_or_load_index` checking that an existing
    file actually matches the requested index.  Same
    :class:`SnapshotFormatError` behaviour as :func:`read_container`.
    """
    target = Path(path)
    with _open_archive(target) as archive:
        return _read_manifest_member(target, archive)


def read_container(path: PathLike) -> Tuple[Dict, Dict[str, np.ndarray]]:
    """Read back ``(manifest, arrays)`` from a container written above.

    Raises :class:`SnapshotFormatError` when the file is not one of our
    containers (not a ZIP, missing/duplicate manifest, wrong ``format``
    marker, undeclared or unreadable members).  Format *version* checks are
    deliberately left to the caller — it owns the compatibility policy.
    """
    target = Path(path)
    with _open_archive(target) as archive:
        names = archive.namelist()
        manifest = _read_manifest_member(target, archive)
        declared = manifest.get("arrays")
        if not isinstance(declared, dict):
            raise SnapshotFormatError(f"{target} manifest lacks the arrays section")
        arrays: Dict[str, np.ndarray] = {}
        for name in declared:
            member = name + _ARRAY_SUFFIX
            if member not in names:
                raise SnapshotFormatError(
                    f"{target} declares array {name!r} but has no {member} member"
                )
            try:
                with archive.open(member) as handle:
                    arrays[name] = np.lib.format.read_array(handle, allow_pickle=False)
            except (ValueError, OSError, zipfile.BadZipFile) as exc:
                raise SnapshotFormatError(
                    f"{target} array member {member} is unreadable: {exc}"
                ) from exc
    return manifest, arrays


def _read_manifest_member(target: Path, archive: zipfile.ZipFile) -> Dict:
    if _MANIFEST_MEMBER not in archive.namelist():
        raise SnapshotFormatError(
            f"{target} is not a repro snapshot container (no {_MANIFEST_MEMBER})"
        )
    try:
        manifest = json.loads(archive.read(_MANIFEST_MEMBER).decode("utf-8"))
    except (ValueError, UnicodeDecodeError, zipfile.BadZipFile, OSError) as exc:
        # ValueError covers JSON decoding; BadZipFile covers a CRC mismatch
        # inside the member itself — both are "corrupt file", not a crash.
        raise SnapshotFormatError(f"{target} has a corrupt manifest: {exc}") from exc
    if not isinstance(manifest, dict) or manifest.get("format") != CONTAINER_FORMAT:
        raise SnapshotFormatError(
            f"{target} is not a repro snapshot container "
            f"(manifest format marker is "
            f"{manifest.get('format') if isinstance(manifest, dict) else manifest!r})"
        )
    return manifest


def _member_info(name: str) -> zipfile.ZipInfo:
    info = zipfile.ZipInfo(name, date_time=_FIXED_DATE_TIME)
    info.compress_type = zipfile.ZIP_STORED
    # Regular file, rw-r--r--: keeps extraction behaviour predictable.
    info.external_attr = 0o100644 << 16
    return info


# ----------------------------------------------------------------------
# zero-copy mapping
# ----------------------------------------------------------------------
def map_container(path: PathLike) -> Tuple[Dict, Dict[str, np.ndarray]]:
    """Read ``(manifest, arrays)`` with every array memory-mapped read-only.

    The returned arrays are ``numpy.memmap`` views directly into the
    container file (zero-length arrays, which cannot be mapped, come back
    as ordinary read-only arrays).  Nothing is copied: N processes mapping
    the same snapshot share one set of physical pages through the OS page
    cache, which is what makes per-worker incremental memory near zero in
    sharded serving.

    Each memmap owns its file handle, so no archive object needs to stay
    open.  Raises :class:`SnapshotFormatError` on anything that cannot be
    mapped safely — compressed members, undeclared arrays, malformed NPY
    headers.
    """
    target = Path(path)
    with _open_archive(target) as archive:
        names = archive.namelist()
        manifest = _read_manifest_member(target, archive)
        declared = manifest.get("arrays")
        if not isinstance(declared, dict):
            raise SnapshotFormatError(f"{target} manifest lacks the arrays section")
        offsets: Dict[str, int] = {}
        for name in declared:
            member = name + _ARRAY_SUFFIX
            if member not in names:
                raise SnapshotFormatError(
                    f"{target} declares array {name!r} but has no {member} member"
                )
            info = archive.getinfo(member)
            if info.compress_type != zipfile.ZIP_STORED:
                raise SnapshotFormatError(
                    f"{target} member {member} is compressed and cannot be "
                    f"memory-mapped; rewrite the snapshot with this library"
                )
            offsets[name] = _member_data_offset(target, archive, info)
    arrays: Dict[str, np.ndarray] = {}
    for name, offset in offsets.items():
        try:
            arrays[name] = _map_npy_member(target, offset)
        except (ValueError, OSError) as exc:
            raise SnapshotFormatError(
                f"{target} array member {name + _ARRAY_SUFFIX} cannot be "
                f"memory-mapped: {exc}"
            ) from exc
    return manifest, arrays


def array_member_offsets(path: PathLike) -> Dict[str, int]:
    """Absolute file offset of each array member's NPY payload.

    Diagnostic companion to :func:`map_container` (tests assert the
    alignment invariant through it; tools can use it to slice members out
    of a container by hand).
    """
    target = Path(path)
    with _open_archive(target) as archive:
        manifest = _read_manifest_member(target, archive)
        declared = manifest.get("arrays")
        if not isinstance(declared, dict):
            raise SnapshotFormatError(f"{target} manifest lacks the arrays section")
        return {
            name: _member_data_offset(target, archive, archive.getinfo(name + _ARRAY_SUFFIX))
            for name in declared
            if name + _ARRAY_SUFFIX in archive.namelist()
        }


def extract_array_members(path: PathLike, directory: PathLike) -> Dict[str, Path]:
    """Unpack every array member as a plain sidecar ``.npy`` file.

    Returns ``{array name: written path}``.  The sidecars are byte-for-byte
    the NPY payloads of the container, so ``np.load(sidecar, mmap_mode='r')``
    yields the same zero-copy views :func:`map_container` produces — the
    escape hatch for tooling that wants standalone NPY files (or a
    filesystem where mapping inside a ZIP is awkward).
    """
    target = Path(path)
    destination = Path(directory)
    destination.mkdir(parents=True, exist_ok=True)
    written: Dict[str, Path] = {}
    with _open_archive(target) as archive:
        manifest = _read_manifest_member(target, archive)
        declared = manifest.get("arrays")
        if not isinstance(declared, dict):
            raise SnapshotFormatError(f"{target} manifest lacks the arrays section")
        for name in declared:
            member = name + _ARRAY_SUFFIX
            if member not in archive.namelist():
                raise SnapshotFormatError(
                    f"{target} declares array {name!r} but has no {member} member"
                )
            sidecar = destination / member
            with archive.open(member) as source, open(sidecar, "wb") as sink:
                sink.write(source.read())
            written[name] = sidecar
    return written


def _member_data_offset(target: Path, archive: zipfile.ZipFile, info: zipfile.ZipInfo) -> int:
    """Absolute offset of a stored member's data, via its local header.

    The central directory's ``header_offset`` points at the local header;
    the data follows the header's *own* name and extra fields, which may
    differ in length from the central directory's copies (our alignment
    padding lives only in the local header).
    """
    handle = archive.fp
    handle.seek(info.header_offset)
    header = handle.read(_LOCAL_HEADER_SIZE)
    if len(header) != _LOCAL_HEADER_SIZE or header[:4] != _LOCAL_HEADER_MAGIC:
        raise SnapshotFormatError(
            f"{target} member {info.filename} has a corrupt local header"
        )
    name_len, extra_len = struct.unpack("<HH", header[26:30])
    return info.header_offset + _LOCAL_HEADER_SIZE + name_len + extra_len


def _map_npy_member(path: Path, offset: int) -> np.ndarray:
    """Map one NPY payload at ``offset`` in ``path`` as a read-only array."""
    with open(path, "rb") as handle:
        handle.seek(offset)
        version = np.lib.format.read_magic(handle)
        if version == (1, 0):
            shape, fortran_order, dtype = np.lib.format.read_array_header_1_0(handle)
        elif version == (2, 0):
            shape, fortran_order, dtype = np.lib.format.read_array_header_2_0(handle)
        else:
            raise SnapshotFormatError(f"unsupported NPY format version {version}")
        data_offset = handle.tell()
    if dtype.hasobject:
        raise SnapshotFormatError("object arrays cannot be memory-mapped")
    if int(np.prod(shape)) == 0:
        # mmap(2) refuses zero-length mappings; an empty array carries no
        # shared state anyway, so a plain (read-only) array is equivalent.
        empty = np.empty(shape, dtype=dtype)
        empty.setflags(write=False)
        return empty
    return np.memmap(
        path,
        dtype=dtype,
        mode="r",
        offset=data_offset,
        shape=tuple(shape),
        order="F" if fortran_order else "C",
    )
