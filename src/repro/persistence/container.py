"""The snapshot container: a ZIP of NPY members plus a JSON manifest.

Layout (documented in ``docs/PERSISTENCE.md``)::

    snapshot.zip
    ├── manifest.json        UTF-8 JSON, always first; everything scalar
    └── <name>.npy           one uncompressed NPY member per array column

Members are stored **uncompressed** (``ZIP_STORED``): loading an array is
then a single sequential read into a freshly allocated buffer — effectively
a memcpy from the page cache — instead of an inflate pass, which is the
point of a binary snapshot format.  Member timestamps are pinned so that
saving the same index twice produces byte-identical files (handy for
content-addressed artifact stores and for tests).

This module knows nothing about *what* is stored; it only enforces the
container framing: the magic ``format`` marker, the manifest/array
consistency, and readable NPY members.  Kind- and version-negotiation live
with the codecs in :mod:`repro.persistence.snapshot`.
"""

from __future__ import annotations

import io
import json
import os
import zipfile
from pathlib import Path
from typing import Dict, Mapping, Tuple, Union

import numpy as np

from repro.persistence.errors import SnapshotFormatError

PathLike = Union[str, Path]

#: Value of the manifest's ``format`` field identifying our containers.
CONTAINER_FORMAT = "repro-snapshot"

_MANIFEST_MEMBER = "manifest.json"
_ARRAY_SUFFIX = ".npy"

# Fixed ZIP member timestamp (ZIP's epoch): identical input produces
# identical bytes regardless of when the snapshot is written.
_FIXED_DATE_TIME = (1980, 1, 1, 0, 0, 0)


def write_container(
    path: PathLike, manifest: Dict, arrays: Mapping[str, np.ndarray]
) -> None:
    """Write a manifest + arrays container to ``path`` atomically enough.

    The manifest is augmented with the ``format`` marker and an ``arrays``
    section recording each member's dtype and shape (purely informational —
    the NPY headers remain authoritative on load).  Array names must be
    usable as ZIP member stems.
    """
    manifest = dict(manifest)
    manifest["format"] = CONTAINER_FORMAT
    manifest["arrays"] = {
        name: {"dtype": str(array.dtype), "shape": list(array.shape)}
        for name, array in sorted(arrays.items())
    }
    payload = json.dumps(manifest, indent=2, sort_keys=True).encode("utf-8")
    target = Path(path)
    # Write to a uniquely named sibling temp file and rename into place: a
    # crash mid-write never leaves a truncated container at the final path,
    # and concurrent writers of the same snapshot each own their scratch
    # file, so a loader sees one complete snapshot or the other — never a
    # torn mix.  The name is generated here (pid + random) rather than via
    # mkstemp so the file is created by ordinary open(), giving the same
    # umask-honouring permissions a direct write would — mkstemp's 0600
    # would survive os.replace and make cross-user serving fail.
    scratch = target.with_name(
        f"{target.name}.{os.getpid()}-{os.urandom(6).hex()}.tmp"
    )
    try:
        with zipfile.ZipFile(scratch, "w", compression=zipfile.ZIP_STORED) as archive:
            archive.writestr(_member_info(_MANIFEST_MEMBER), payload)
            for name in sorted(arrays):
                array = np.ascontiguousarray(arrays[name])
                buffer = io.BytesIO()
                np.lib.format.write_array(buffer, array, allow_pickle=False)
                archive.writestr(_member_info(name + _ARRAY_SUFFIX), buffer.getvalue())
        os.replace(scratch, target)
    except BaseException:
        scratch.unlink(missing_ok=True)
        raise


def _open_archive(target: Path) -> zipfile.ZipFile:
    try:
        return zipfile.ZipFile(target, "r")
    except (zipfile.BadZipFile, OSError) as exc:
        raise SnapshotFormatError(
            f"{target} is not a repro snapshot container (unreadable as ZIP: {exc})"
        ) from exc


def read_manifest(path: PathLike) -> Dict:
    """Read and validate only the manifest of a container.

    The cheap probe for callers that need to know *what* a snapshot stores
    (kind, index name, build recipe) before paying for the array members —
    e.g. :func:`repro.api.build_or_load_index` checking that an existing
    file actually matches the requested index.  Same
    :class:`SnapshotFormatError` behaviour as :func:`read_container`.
    """
    target = Path(path)
    with _open_archive(target) as archive:
        return _read_manifest_member(target, archive)


def read_container(path: PathLike) -> Tuple[Dict, Dict[str, np.ndarray]]:
    """Read back ``(manifest, arrays)`` from a container written above.

    Raises :class:`SnapshotFormatError` when the file is not one of our
    containers (not a ZIP, missing/duplicate manifest, wrong ``format``
    marker, undeclared or unreadable members).  Format *version* checks are
    deliberately left to the caller — it owns the compatibility policy.
    """
    target = Path(path)
    with _open_archive(target) as archive:
        names = archive.namelist()
        manifest = _read_manifest_member(target, archive)
        declared = manifest.get("arrays")
        if not isinstance(declared, dict):
            raise SnapshotFormatError(f"{target} manifest lacks the arrays section")
        arrays: Dict[str, np.ndarray] = {}
        for name in declared:
            member = name + _ARRAY_SUFFIX
            if member not in names:
                raise SnapshotFormatError(
                    f"{target} declares array {name!r} but has no {member} member"
                )
            try:
                with archive.open(member) as handle:
                    arrays[name] = np.lib.format.read_array(handle, allow_pickle=False)
            except (ValueError, OSError, zipfile.BadZipFile) as exc:
                raise SnapshotFormatError(
                    f"{target} array member {member} is unreadable: {exc}"
                ) from exc
    return manifest, arrays


def _read_manifest_member(target: Path, archive: zipfile.ZipFile) -> Dict:
    if _MANIFEST_MEMBER not in archive.namelist():
        raise SnapshotFormatError(
            f"{target} is not a repro snapshot container (no {_MANIFEST_MEMBER})"
        )
    try:
        manifest = json.loads(archive.read(_MANIFEST_MEMBER).decode("utf-8"))
    except (ValueError, UnicodeDecodeError, zipfile.BadZipFile, OSError) as exc:
        # ValueError covers JSON decoding; BadZipFile covers a CRC mismatch
        # inside the member itself — both are "corrupt file", not a crash.
        raise SnapshotFormatError(f"{target} has a corrupt manifest: {exc}") from exc
    if not isinstance(manifest, dict) or manifest.get("format") != CONTAINER_FORMAT:
        raise SnapshotFormatError(
            f"{target} is not a repro snapshot container "
            f"(manifest format marker is "
            f"{manifest.get('format') if isinstance(manifest, dict) else manifest!r})"
        )
    return manifest


def _member_info(name: str) -> zipfile.ZipInfo:
    info = zipfile.ZipInfo(name, date_time=_FIXED_DATE_TIME)
    info.compress_type = zipfile.ZIP_STORED
    # Regular file, rw-r--r--: keeps extraction behaviour predictable.
    info.external_attr = 0o100644 << 16
    return info
