"""Error types raised by the persistence layer.

Every failure mode a deployment can hit while loading persisted artefacts
maps to one of these classes, so serving code can catch
:class:`PersistenceError` (or the narrower subclasses) and fall back to
rebuilding from the stored dataset instead of crashing on an opaque
``AttributeError`` or ``zipfile.BadZipFile`` from deep inside a codec.
"""

from __future__ import annotations


class PersistenceError(Exception):
    """Base class for every error raised by :mod:`repro.persistence`."""


class DatasetFormatError(PersistenceError, ValueError):
    """A persisted dataset/workload file is corrupt or of the wrong kind.

    Subclasses :class:`ValueError` as well, because the JSON codecs raised
    bare ``ValueError`` for years — existing callers keep working while new
    serving code can rely on one ``except PersistenceError`` fallback.
    """


class SnapshotError(PersistenceError):
    """Base class for snapshot-container failures."""


class SnapshotFormatError(SnapshotError):
    """The file is not a snapshot container, is corrupt, or is inconsistent."""


class SnapshotVersionError(SnapshotError):
    """The snapshot uses a format version this library cannot read.

    Raised with a message naming both versions and the producing library
    version, so operators know whether to upgrade the library or rebuild
    the snapshot from the persisted dataset.
    """


class IndexLoadError(PersistenceError):
    """A pickled index could not be restored by this library version.

    The remedy is always the same and is spelled out in the message:
    rebuild the index from the persisted dataset and workload (which are
    stored in stable formats) instead of shipping pickles across library
    versions.
    """
