"""Columnar index snapshots: versioned binary save / memcpy-level load.

The paper positions WaZI for deployments where "index construction can be
performed offline ... and deployed for an extended amount of time".  This
module is that workflow's persistence layer:

* :func:`save_snapshot` serialises a built Z-index-family index
  (:class:`~repro.zindex.ZIndex` and subclasses — WaZI, Base, the
  ablations) as its flat coordinate columns, packed ``(n_leaves, 4)`` bbox
  table, skip-pointer columns and tree-structure tables inside the
  container of :mod:`repro.persistence.container`;
* :func:`load_snapshot` restores a queryable index from those arrays in
  O(n) memcpy-level work — no split strategy, density estimator or
  workload evaluation is ever re-run, and the loaded index answers every
  query with byte-identical results, ordering and cost counters;
* :func:`save_rebuild_snapshot` covers the rest of the index zoo: it
  persists the dataset columns plus the build recipe (index name, workload
  rectangles, parameters), and :func:`load_snapshot` replays the recipe
  through :func:`repro.api.build_index` — deterministic given the seed,
  and still free of per-point JSON overhead.

Format-version negotiation is strict and friendly: snapshots written by a
*newer* library raise :class:`SnapshotVersionError` naming both versions;
corrupt or foreign files raise :class:`SnapshotFormatError`; both inherit
:class:`SnapshotError` so serving code can fall back to a rebuild with one
``except`` clause.  The container layout and compatibility rules are
specified in ``docs/PERSISTENCE.md``.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Sequence

import numpy as np

from repro.geometry import Point, Rect, points_from_arrays, points_to_arrays
from repro.persistence.arrays import rects_from_array, rects_to_array
from repro.persistence.container import (
    PathLike,
    read_container,
    write_container,
)
from repro.persistence.errors import SnapshotFormatError, SnapshotVersionError
from repro.zindex.base import ZIndex, ZIndexSnapshotState

#: Current snapshot format version.  Bump on any incompatible layout change;
#: the loader refuses newer versions with a friendly error and keeps reading
#: every older version listed in ``_READABLE_VERSIONS``.
SNAPSHOT_FORMAT_VERSION = 1
_READABLE_VERSIONS = (1,)

#: Manifest ``kind`` for a structural Z-index snapshot.
KIND_ZINDEX = "zindex-structure"
#: Manifest ``kind`` for a dataset + build-recipe snapshot.
KIND_REBUILD = "rebuild-recipe"
#: Manifest ``kind`` for a standalone workload container.
KIND_WORKLOAD = "workload"

#: Member-name prefix under which an index snapshot embeds its observed
#: workload history (so one file restores both the structure and what the
#: engine learned about its traffic).
_HISTORY_PREFIX = "history_"


def json_clone(value) -> Optional[Dict]:
    """JSON round-trip of a value, or ``None`` when it is not representable.

    The single encode-or-reject policy for everything that travels in a
    manifest (build kwargs, build requests): round-tripping normalises
    JSON-equivalent Python values (tuples → lists, int-keyed dicts →
    strings) so that what a saver records compares equal to what a later
    loader re-encodes.
    """
    try:
        return json.loads(json.dumps(value))
    except (TypeError, ValueError):
        return None


def _mix64(values: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer (wrapping uint64 arithmetic).

    The nonlinearity matters: summing a *linear* pair combination would
    factorise into per-coordinate sums, making any re-pairing of the same
    x and y multisets collide.
    """
    v = values.copy()
    with np.errstate(over="ignore"):
        v ^= v >> np.uint64(30)
        v *= np.uint64(0xBF58476D1CE4E5B9)
        v ^= v >> np.uint64(27)
        v *= np.uint64(0x94D049BB133111EB)
        v ^= v >> np.uint64(31)
    return v


def dataset_fingerprint(xs: np.ndarray, ys: np.ndarray) -> str:
    """Cheap, order-insensitive fingerprint of a coordinate dataset.

    Recorded in snapshot manifests and compared by
    :func:`repro.api.build_or_load_index` so a snapshot saved from a
    *different* dataset of the same size is rebuilt instead of silently
    served.  Each (x, y) pair is hashed through a nonlinear 64-bit mix and
    the hashes summed, so any permutation of the same multiset of points
    (the caller's order vs the snapshot's curve order) produces the same
    value while re-paired coordinates do not.  This guards against
    accidental mismatches, not adversarial collisions.
    """
    a = np.ascontiguousarray(xs, dtype=np.float64).view(np.uint64)
    b = np.ascontiguousarray(ys, dtype=np.float64).view(np.uint64)
    with np.errstate(over="ignore"):
        paired = a * np.uint64(0x9E3779B97F4A7C15) + b
    hashed = _mix64(paired)
    return f"{int(hashed.sum(dtype=np.uint64)):016x}-{int(a.shape[0])}"


def workload_fingerprint(rects: np.ndarray) -> str:
    """Order-*sensitive* fingerprint of a workload rectangle table.

    Query order can matter (adaptive baselines crack on it), so each row's
    hash is salted with its position before summing.
    """
    table = np.ascontiguousarray(rects, dtype=np.float64).reshape(-1, 4)
    n = table.shape[0]
    bits = table.view(np.uint64)
    with np.errstate(over="ignore"):
        rows = _mix64(bits[:, 0] * np.uint64(0x9E3779B97F4A7C15) + bits[:, 1])
        rows = _mix64(rows * np.uint64(0x9E3779B97F4A7C15) + bits[:, 2])
        rows = _mix64(rows * np.uint64(0x9E3779B97F4A7C15) + bits[:, 3])
        salted = rows * _mix64(np.arange(1, n + 1, dtype=np.uint64))
    return f"{int(salted.sum(dtype=np.uint64)):016x}-{n}"


def _workload_members(workload) -> Dict[str, np.ndarray]:
    """The container members a :class:`~repro.workloads.Workload` serialises to."""
    return {name: np.ascontiguousarray(table) for name, table in workload.tables().items()}


def _workload_manifest_section(workload) -> Dict:
    """The JSON metadata block stored alongside a workload's tables."""
    metadata = workload.metadata()
    cloned = json_clone(metadata)
    if cloned is None:
        raise TypeError(
            f"workload metadata must be JSON-serialisable, got {metadata!r}"
        )
    return cloned


def _workload_from_members(
    path: PathLike, section: Dict, arrays: Dict[str, np.ndarray], prefix: str = ""
):
    """Rebuild a Workload from container members (optionally prefixed)."""
    from repro.workloads.workload import Workload

    names = ("ranges", "knn_probes", "knn_k", "radius_probes", "radius_radii")
    tables = {}
    for name in names:
        member = prefix + name
        if member not in arrays:
            raise SnapshotFormatError(f"{path} is missing workload array {member!r}")
        tables[name] = arrays[member]
    if not isinstance(section, dict):
        raise SnapshotFormatError(f"{path} workload metadata is not a mapping")
    try:
        return Workload.from_tables(tables, section)
    except (ValueError, TypeError) as exc:
        raise SnapshotFormatError(f"{path} holds an inconsistent workload: {exc}") from exc


def save_workload(workload, path: PathLike) -> Dict:
    """Persist a :class:`~repro.workloads.Workload` as its own container.

    The columnar tables become NPY members, the metadata travels in the
    manifest.  Saving the same workload twice produces byte-identical
    files (the container pins member timestamps), so workload artefacts
    can live in content-addressed stores.  Returns the written manifest.
    """
    manifest = {
        "kind": KIND_WORKLOAD,
        "format_version": SNAPSHOT_FORMAT_VERSION,
        "library_version": _library_version(),
        "workload": _workload_manifest_section(workload),
    }
    write_container(path, manifest, _workload_members(workload))
    return manifest


def load_workload(path: PathLike):
    """Restore a workload saved by :func:`save_workload`."""
    manifest, arrays = read_container(path)
    _check_version(path, manifest)
    if manifest.get("kind") != KIND_WORKLOAD:
        raise SnapshotFormatError(
            f"{path} stores snapshot kind {manifest.get('kind')!r}, not a workload; "
            f"use load_snapshot for index snapshots"
        )
    return _workload_from_members(path, manifest.get("workload") or {}, arrays)


def save_snapshot(
    index,
    path: PathLike,
    *,
    build_request: Optional[Dict] = None,
    workload_history=None,
) -> Dict:
    """Serialise a built Z-index-family index to a binary snapshot.

    Returns the manifest that was written (handy for logging).  Raises
    :class:`TypeError` for indexes outside the Z-index family — persist
    those with :func:`save_rebuild_snapshot`, which stores the dataset and
    build recipe instead of the structure.

    ``build_request`` is an optional JSON-serialisable record of the build
    arguments that produced the index (seed, workload fingerprint, extra
    kwargs).  The index structure itself does not retain them, so callers
    that want :func:`repro.api.build_or_load_index` to verify a later
    request against this snapshot must supply them here; the helper does.

    ``workload_history`` is an optional :class:`~repro.workloads.Workload`
    (typically an engine's observed-traffic snapshot) embedded in the same
    container under ``history_*`` members, so one file restores both the
    structure and its observed query history
    (:func:`load_snapshot_with_history`).
    """
    if not isinstance(index, ZIndex):
        raise TypeError(
            f"save_snapshot only supports the Z-index family (ZIndex subclasses); "
            f"{type(index).__name__} is not one — use save_rebuild_snapshot(name, "
            f"points, path, ...) to persist its dataset and build recipe instead"
        )
    state = index.snapshot_state()
    manifest = {
        "kind": KIND_ZINDEX,
        "format_version": SNAPSHOT_FORMAT_VERSION,
        "library_version": _library_version(),
        "index": {
            "name": state.index_name,
            "class": state.class_path,
            "leaf_capacity": state.leaf_capacity,
            "max_depth": state.max_depth,
            "use_skipping": state.use_skipping,
            "has_nonmonotone_ordering": state.has_nonmonotone_ordering,
            "extent": None if state.extent is None else list(state.extent),
            "num_points": state.num_points,
            "dataset_fingerprint": dataset_fingerprint(
                state.arrays["flat_x"], state.arrays["flat_y"]
            ),
            "num_leaves": int(state.arrays["leaf_starts"].shape[0]) - 1,
            "num_nodes": int(state.arrays["tree_kind"].shape[0]),
            "orderings": list(state.orderings),
        },
    }
    if build_request is not None:
        cloned = json_clone(build_request)
        if cloned is None:
            raise TypeError(
                f"build_request must be JSON-serialisable, got {build_request!r}"
            )
        manifest["build_request"] = cloned
    arrays = dict(state.arrays)
    if workload_history is not None and len(workload_history):
        manifest["workload_history"] = _workload_manifest_section(workload_history)
        for name, table in _workload_members(workload_history).items():
            arrays[_HISTORY_PREFIX + name] = table
    write_container(path, manifest, arrays)
    return manifest


def save_rebuild_snapshot(
    name: str,
    points: Sequence[Point],
    path: PathLike,
    *,
    workload: Sequence[Rect] = (),
    leaf_capacity: int = 64,
    seed: Optional[int] = 0,
    workload_history=None,
    adapted: bool = False,
    **kwargs,
) -> Dict:
    """Persist a dataset plus the recipe to rebuild any index from the zoo.

    ``name`` and the keyword parameters mirror :func:`repro.api.build_index`;
    extra ``kwargs`` must be JSON-serialisable (they are stored in the
    manifest and replayed on load).  Loading rebuilds deterministically
    given the stored seed, so round-tripped indexes answer queries exactly
    like a fresh build with the same arguments.

    ``workload_history`` embeds an observed-traffic
    :class:`~repro.workloads.Workload` the same way :func:`save_snapshot`
    does.  ``adapted`` marks the recipe as one re-derived from observed
    traffic by :meth:`~repro.engine.SpatialEngine.adapt`:
    ``build_or_load_index`` then treats the stored (adapted) workload as
    superseding the caller's build-time workload instead of rebuilding.
    """
    encoded_kwargs = json_clone(kwargs)
    if encoded_kwargs is None:
        raise TypeError(
            f"rebuild-snapshot build kwargs must be JSON-serialisable, got {kwargs!r}"
        )
    xs, ys = points_to_arrays(points)
    rects = rects_to_array(workload)
    manifest = {
        "kind": KIND_REBUILD,
        "format_version": SNAPSHOT_FORMAT_VERSION,
        "library_version": _library_version(),
        "build": {
            "name": str(name),
            "leaf_capacity": int(leaf_capacity),
            "seed": None if seed is None else int(seed),
            "kwargs": encoded_kwargs,
            "num_points": int(xs.shape[0]),
            "num_queries": int(rects.shape[0]),
            "dataset_fingerprint": dataset_fingerprint(xs, ys),
            "workload_fingerprint": workload_fingerprint(rects),
        },
    }
    if adapted:
        manifest["build"]["adapted"] = True
    arrays = {"xs": xs, "ys": ys, "workload_rects": rects}
    if workload_history is not None and len(workload_history):
        manifest["workload_history"] = _workload_manifest_section(workload_history)
        for member, table in _workload_members(workload_history).items():
            arrays[_HISTORY_PREFIX + member] = table
    write_container(path, manifest, arrays)
    return manifest


def _check_version(path: PathLike, manifest: Dict) -> None:
    version = manifest.get("format_version")
    if not isinstance(version, int) or version > SNAPSHOT_FORMAT_VERSION:
        raise SnapshotVersionError(
            f"{path} uses snapshot format version {version!r} (written by library "
            f"{manifest.get('library_version', 'unknown')}), but this library "
            f"({_library_version()}) reads up to {SNAPSHOT_FORMAT_VERSION}; "
            f"upgrade the library, or rebuild the snapshot from the persisted dataset"
        )
    if version not in _READABLE_VERSIONS:
        raise SnapshotVersionError(
            f"{path} uses retired snapshot format version {version!r}; rebuild the "
            f"snapshot from the persisted dataset with this library "
            f"({_library_version()})"
        )


def load_snapshot(path: PathLike, *, mmap: bool = False, validate: bool = True):
    """Restore an index from any snapshot written by this module.

    Dispatches on the manifest ``kind``: structural Z-index snapshots are
    rematerialised in O(n) without re-running construction; rebuild-recipe
    snapshots replay :func:`repro.api.build_index` on the stored columns.
    Raises :class:`SnapshotVersionError` / :class:`SnapshotFormatError`
    (both :class:`SnapshotError`) instead of ever surfacing a codec
    internal error.  Any embedded workload history is ignored; use
    :func:`load_snapshot_with_history` to get it too.

    ``mmap=True`` opens a structural Z-index snapshot **zero-copy**: the
    flat columns stay in the file, mapped read-only, and the restored index
    holds views into a shared :class:`~repro.storage.buffers.
    MmapColumnStore` — every process mapping the same snapshot shares one
    set of physical pages.  Rebuild-recipe snapshots cannot be mapped
    (they replay construction) and raise :class:`SnapshotFormatError`.
    ``validate=False`` skips the O(n) bounding-box cross-check on load
    (trusted snapshots; serving workers use this so opening a shard does
    not fault in every coordinate page up front).
    """
    return load_snapshot_with_history(path, mmap=mmap, validate=validate)[0]


def load_snapshot_with_history(
    path: PathLike, *, mmap: bool = False, validate: bool = True
):
    """Restore ``(index, observed_workload_or_None)`` from one container.

    The second element is the :class:`~repro.workloads.Workload` history
    embedded by ``save_snapshot(..., workload_history=...)`` (or the
    rebuild-recipe equivalent), or ``None`` when the snapshot predates the
    adaptive lifecycle or simply recorded no traffic.  This is what lets
    :meth:`repro.engine.SpatialEngine.open` resume the observe → advise →
    adapt loop exactly where the saving process left off.  ``mmap`` /
    ``validate`` behave as in :func:`load_snapshot`.
    """
    store = None
    if mmap:
        from repro.storage.buffers import MmapColumnStore

        store = MmapColumnStore.open(path)
        manifest, arrays = store.manifest, dict(store.items())
    else:
        manifest, arrays = read_container(path)
    _check_version(path, manifest)
    kind = manifest.get("kind")
    if kind == KIND_ZINDEX:
        index = _load_zindex(path, manifest, arrays, store=store, validate=validate)
    elif mmap:
        raise SnapshotFormatError(
            f"{path} stores snapshot kind {kind!r}, which cannot be memory-"
            f"mapped; only {KIND_ZINDEX!r} snapshots hold mappable columns"
        )
    elif kind == KIND_REBUILD:
        index = _load_rebuild(path, manifest, arrays)
    elif kind == KIND_WORKLOAD:
        raise SnapshotFormatError(
            f"{path} stores a standalone workload, not an index; load it with "
            f"load_workload"
        )
    else:
        raise SnapshotFormatError(
            f"{path} stores unknown snapshot kind {kind!r}; expected "
            f"{KIND_ZINDEX!r} or {KIND_REBUILD!r}"
        )
    history = None
    if "workload_history" in manifest:
        history = _workload_from_members(
            path, manifest.get("workload_history"), arrays, prefix=_HISTORY_PREFIX
        )
    return index, history


def load_workload_history(path: PathLike):
    """Only the embedded observed-workload history of an index snapshot.

    Returns ``None`` when the snapshot carries no history.  Unlike
    :func:`load_snapshot_with_history` this never rebuilds the index (a
    rebuild-recipe snapshot would replay its construction), so it is the
    cheap probe for callers that already hold the index.
    """
    manifest, arrays = read_container(path)
    _check_version(path, manifest)
    if "workload_history" not in manifest:
        return None
    return _workload_from_members(
        path, manifest.get("workload_history"), arrays, prefix=_HISTORY_PREFIX
    )


def _load_zindex(
    path: PathLike,
    manifest: Dict,
    arrays: Dict[str, np.ndarray],
    *,
    store=None,
    validate: bool = True,
):
    info = manifest.get("index")
    if not isinstance(info, dict):
        raise SnapshotFormatError(f"{path} z-index snapshot lacks the index section")
    required = (
        "flat_x", "flat_y", "leaf_starts", "leaf_boxes", "leaf_nonempty",
        "skip_below", "skip_above", "skip_left", "skip_right",
        "tree_kind", "tree_cells", "tree_splits", "tree_orderings",
        "tree_children", "tree_leaf_index",
    )
    missing = [name for name in required if name not in arrays]
    if missing:
        raise SnapshotFormatError(f"{path} is missing snapshot arrays {missing}")
    extent = info.get("extent")
    # One try covers both the manifest-scalar coercions and the structural
    # restore: corrupt values of any shape (a string leaf_capacity, a
    # three-element extent) must surface as SnapshotFormatError, never as a
    # raw ValueError/TypeError that escapes the except-SnapshotError
    # fallback the package documents.
    try:
        state = ZIndexSnapshotState(
            index_name=str(info.get("name", ZIndex.name)),
            class_path=str(info.get("class", "")),
            leaf_capacity=int(info.get("leaf_capacity", 0) or 0),
            max_depth=int(info.get("max_depth", 0) or 0),
            use_skipping=bool(info.get("use_skipping", False)),
            has_nonmonotone_ordering=bool(info.get("has_nonmonotone_ordering", False)),
            extent=None if extent is None else tuple(float(v) for v in extent),
            num_points=int(info.get("num_points", -1)),
            orderings=[str(o) for o in info.get("orderings", [])],
            arrays=arrays,
        )
        if state.leaf_capacity <= 0:
            raise SnapshotFormatError(
                f"{path} records non-positive leaf_capacity {info.get('leaf_capacity')!r}"
            )
        if state.extent is not None and len(state.extent) != 4:
            raise SnapshotFormatError(
                f"{path} records malformed extent {info.get('extent')!r}"
            )
        return ZIndex.from_snapshot_state(state, store=store, validate=validate)
    except SnapshotFormatError:
        raise
    except (ValueError, TypeError, KeyError) as exc:
        raise SnapshotFormatError(f"{path} holds inconsistent snapshot state: {exc}") from exc


def _load_rebuild(path: PathLike, manifest: Dict, arrays: Dict[str, np.ndarray]):
    # Imported lazily: repro.api itself imports this package.  The replay
    # resolves build_index through repro.api's namespace so that tests
    # monkeypatching the shim still intercept it — but when the shim is
    # unpatched, the canonical engine implementation is called instead: a
    # snapshot load is not a legacy call site and must not warn.
    import repro.api as _api

    build_index = _api.build_index
    if build_index is getattr(_api, "_BUILD_INDEX_SHIM", None):
        from repro.engine import build_index

    build = manifest.get("build")
    if not isinstance(build, dict) or "name" not in build:
        raise SnapshotFormatError(f"{path} rebuild snapshot lacks the build section")
    for name in ("xs", "ys", "workload_rects"):
        if name not in arrays:
            raise SnapshotFormatError(f"{path} is missing snapshot array {name!r}")
    kwargs = build.get("kwargs") or {}
    if not isinstance(kwargs, dict):
        raise SnapshotFormatError(f"{path} rebuild kwargs are not a mapping: {kwargs!r}")
    seed = build.get("seed", 0)
    try:
        points = points_from_arrays(arrays["xs"], arrays["ys"])
        workload = rects_from_array(arrays["workload_rects"])
        return build_index(
            str(build["name"]),
            points,
            workload,
            leaf_capacity=int(build.get("leaf_capacity", 64)),
            seed=None if seed is None else int(seed),
            **kwargs,
        )
    except (TypeError, ValueError) as exc:
        raise SnapshotFormatError(
            f"{path} rebuild recipe could not be replayed "
            f"({build.get('name')!r}, kwargs {kwargs!r}): {exc}"
        ) from exc


def _library_version() -> str:
    from repro import __version__

    return __version__
