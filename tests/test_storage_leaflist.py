"""Unit tests for leaf entries and the LeafList."""

import pytest

from repro.geometry import Point, Rect
from repro.storage import LeafEntry, LeafList, Page
from repro.storage.leaflist import END_OF_LIST, SKIP_CRITERIA


def make_entry(xmin, ymin, xmax, ymax, points=()):
    page = Page(capacity=max(4, len(points) or 1), points=points)
    return LeafEntry(cell=Rect(xmin, ymin, xmax, ymax), page=page)


class TestLeafEntry:
    def test_bbox_is_data_bbox_not_cell(self):
        entry = make_entry(0, 0, 10, 10, [Point(1, 1), Point(2, 3)])
        assert entry.bbox == Rect(1, 1, 2, 3)

    def test_empty_leaf_has_no_bbox_and_never_overlaps(self):
        entry = make_entry(0, 0, 10, 10)
        assert entry.bbox is None
        assert not entry.overlaps(Rect(0, 0, 10, 10))

    def test_overlaps_uses_data_bbox(self):
        entry = make_entry(0, 0, 10, 10, [Point(1, 1)])
        assert entry.overlaps(Rect(0.5, 0.5, 1.5, 1.5))
        assert not entry.overlaps(Rect(5, 5, 6, 6))

    def test_num_points(self):
        assert make_entry(0, 0, 1, 1, [Point(0, 0), Point(1, 1)]).num_points == 2

    @pytest.mark.parametrize("criterion", SKIP_CRITERIA)
    def test_skip_pointer_roundtrip(self, criterion):
        entry = make_entry(0, 0, 1, 1, [Point(0, 0)])
        assert entry.skip_pointer(criterion) == END_OF_LIST
        entry.set_skip_pointer(criterion, 7)
        assert entry.skip_pointer(criterion) == 7

    def test_unknown_criterion_rejected(self):
        entry = make_entry(0, 0, 1, 1)
        with pytest.raises(ValueError):
            entry.skip_pointer("diagonal")
        with pytest.raises(ValueError):
            entry.set_skip_pointer("diagonal", 3)

    def test_size_bytes_positive(self):
        assert make_entry(0, 0, 1, 1, [Point(0, 0)]).size_bytes() > 0


class TestLeafList:
    def build_list(self, count=5):
        leaflist = LeafList()
        for i in range(count):
            leaflist.append(make_entry(i, 0, i + 1, 1, [Point(i + 0.5, 0.5)]))
        return leaflist

    def test_append_sets_order_and_next_pointers(self):
        leaflist = self.build_list(4)
        assert [entry.order for entry in leaflist] == [0, 1, 2, 3]
        assert [entry.next_index for entry in leaflist] == [1, 2, 3, END_OF_LIST]

    def test_check_linked(self):
        leaflist = self.build_list(6)
        assert leaflist.check_linked()
        leaflist.entries[2].next_index = 5
        assert not leaflist.check_linked()

    def test_len_and_getitem(self):
        leaflist = self.build_list(3)
        assert len(leaflist) == 3
        assert leaflist[1].cell.xmin == 1

    def test_num_points(self):
        assert self.build_list(4).num_points == 4

    def test_iter_range_inclusive(self):
        leaflist = self.build_list(6)
        selected = list(leaflist.iter_range(1, 3))
        assert [entry.order for entry in selected] == [1, 2, 3]

    def test_iter_range_clamps_bounds(self):
        leaflist = self.build_list(3)
        assert [e.order for e in leaflist.iter_range(-5, 99)] == [0, 1, 2]

    def test_all_points_in_order(self):
        leaflist = self.build_list(3)
        assert leaflist.all_points() == [Point(0.5, 0.5), Point(1.5, 0.5), Point(2.5, 0.5)]

    def test_check_skip_pointers_forward(self):
        leaflist = self.build_list(3)
        leaflist.entries[0].below = 2
        assert leaflist.check_skip_pointers_forward()
        leaflist.entries[2].above = 1
        assert not leaflist.check_skip_pointers_forward()

    def test_size_bytes_sums_entries(self):
        leaflist = self.build_list(3)
        assert leaflist.size_bytes() == sum(e.size_bytes() for e in leaflist)


class TestPackedLeaves:
    def build_list(self, count=5):
        leaflist = LeafList()
        for i in range(count):
            leaflist.append(make_entry(i, 0, i + 1, 1, [Point(i + 0.5, 0.5)]))
        return leaflist

    def test_packed_boxes_match_entries(self):
        leaflist = self.build_list(4)
        packed = leaflist.packed()
        assert packed.boxes.shape == (4, 4)
        for i, entry in enumerate(leaflist):
            assert tuple(packed.boxes[i]) == entry.page.bbox_tuple()
            assert packed.nonempty[i]

    def test_packed_empty_leaf_uses_cell(self):
        leaflist = self.build_list(2)
        leaflist.append(make_entry(7, 0, 8, 1))
        packed = leaflist.packed()
        assert not packed.nonempty[2]
        assert tuple(packed.boxes[2]) == (7.0, 0.0, 8.0, 1.0)

    def test_refresh_entry_updates_row_and_lists(self):
        leaflist = self.build_list(3)
        packed = leaflist.packed()
        lists = packed.lists()
        leaflist[1].page.add(Point(1.9, 0.9))
        leaflist.refresh_entry(1)
        assert tuple(packed.boxes[1]) == leaflist[1].page.bbox_tuple()
        assert lists[0][1] == list(leaflist[1].page.bbox_tuple())
        assert lists[1][1] is True

    def test_append_invalidates_packed(self):
        leaflist = self.build_list(2)
        first = leaflist.packed()
        leaflist.append(make_entry(5, 0, 6, 1, [Point(5.5, 0.5)]))
        second = leaflist.packed()
        assert second is not first
        assert second.boxes.shape[0] == 3

    def test_splice_renumbers_and_shifts_pointers(self):
        leaflist = self.build_list(5)
        for entry in leaflist:
            entry.below = entry.order + 2 if entry.order + 2 < 5 else END_OF_LIST
        replacements = [
            make_entry(2.0, 0, 2.5, 1, [Point(2.2, 0.5)]),
            make_entry(2.5, 0, 3.0, 1, [Point(2.7, 0.5)]),
        ]
        leaflist.splice(2, replacements)
        assert len(leaflist) == 6
        assert leaflist.check_linked()
        # Suffix pointers (old targets 5/EOL, > spliced index) shifted by +1.
        assert leaflist[4].below == END_OF_LIST or leaflist[4].below == 6
        assert leaflist[5].below == END_OF_LIST

    def test_splice_requires_replacements(self):
        leaflist = self.build_list(3)
        with pytest.raises(ValueError):
            leaflist.splice(1, [])
