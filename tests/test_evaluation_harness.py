"""Tests for the comparison runner, cost redemption and reporting helpers."""

import pytest

from repro.evaluation import (
    ComparisonRunner,
    cost_redemption,
    format_table,
    index_properties_table,
    measure_build,
    measure_join_workload,
    measure_knn_queries,
    measure_point_queries,
    measure_range_queries,
    percent_improvement,
)
from repro.evaluation.reporting import INDEX_PROPERTIES, improvement_table
from repro.zindex import BaseZIndex
from repro.core import WaZI


class TestMeasurementHelpers:
    def test_measure_build_returns_index_and_time(self, uniform_points):
        index, seconds = measure_build(lambda: BaseZIndex(uniform_points, leaf_capacity=16))
        assert len(index) == len(uniform_points)
        assert seconds > 0

    def test_measure_range_queries(self, uniform_points, sample_queries):
        index = BaseZIndex(uniform_points, leaf_capacity=16)
        stats = measure_range_queries(index, sample_queries)
        assert stats.num_queries == len(sample_queries)
        assert stats.total_seconds > 0
        assert stats.counters.points_returned >= 0
        assert "projection" in stats.phase_seconds
        assert "scan" in stats.phase_seconds

    def test_measure_range_queries_with_repeats(self, uniform_points, sample_queries):
        index = BaseZIndex(uniform_points, leaf_capacity=16)
        stats = measure_range_queries(index, sample_queries[:5], repeats=3)
        assert stats.num_queries == 15

    def test_measure_point_queries(self, uniform_points):
        index = BaseZIndex(uniform_points, leaf_capacity=16)
        stats = measure_point_queries(index, uniform_points[:30])
        assert stats.num_queries == 30
        assert stats.counters.points_returned == 30

    def test_phase_timer_restored_after_measurement(self, uniform_points, sample_queries):
        index = BaseZIndex(uniform_points, leaf_capacity=16)
        assert index.phase_timer is None
        measure_range_queries(index, sample_queries[:3])
        assert index.phase_timer is None


class TestComparisonRunner:
    def test_empty_factories_rejected(self):
        with pytest.raises(ValueError):
            ComparisonRunner({})

    def test_runs_all_indexes(self, clustered_points, small_workload):
        runner = ComparisonRunner(
            {
                "Base": lambda: BaseZIndex(clustered_points, leaf_capacity=32),
                "WaZI": lambda: WaZI(
                    clustered_points, small_workload.queries, leaf_capacity=32, seed=1
                ),
            }
        )
        results = runner.run_dict(
            range_queries=small_workload.queries[:20],
            point_queries=clustered_points[:20],
        )
        assert set(results) == {"Base", "WaZI"}
        for result in results.values():
            assert result.build_seconds > 0
            assert result.size_bytes > 0
            assert result.num_points == len(clustered_points)
            assert result.range_stats is not None
            assert result.point_stats is not None
            assert result.range_mean_micros > 0
            assert result.point_mean_micros > 0

    def test_range_only_run(self, uniform_points, sample_queries):
        runner = ComparisonRunner({"Base": lambda: BaseZIndex(uniform_points, leaf_capacity=16)})
        (result,) = runner.run(range_queries=sample_queries[:5])
        assert result.point_stats is None
        assert result.range_stats.num_queries == 5


class TestKnnAndJoinMeasurement:
    def test_measure_knn_queries(self, uniform_points):
        index = BaseZIndex(uniform_points, leaf_capacity=16)
        centers = uniform_points[:12]
        stats = measure_knn_queries(index, centers, k=5)
        assert stats.num_queries == 12
        assert stats.total_seconds > 0
        assert stats.extra["k"] == 5.0
        assert stats.counters.points_returned > 0

    def test_measure_knn_queries_batch_counters_identical(self, uniform_points):
        index = BaseZIndex(uniform_points, leaf_capacity=16)
        centers = uniform_points[:12]
        scalar = measure_knn_queries(index, centers, k=5, batch=False)
        batch = measure_knn_queries(index, centers, k=5, batch=True)
        assert scalar.counters.snapshot() == batch.counters.snapshot()
        assert batch.num_queries == 12

    def test_measure_knn_queries_repeats(self, uniform_points):
        index = BaseZIndex(uniform_points, leaf_capacity=16)
        stats = measure_knn_queries(index, uniform_points[:4], k=3, repeats=3, batch=True)
        assert stats.num_queries == 12

    @pytest.mark.parametrize(
        "kind,params",
        [
            ("box", {"half_width": 0.05}),
            ("radius", {"radius": 0.05}),
            ("knn", {"k": 3}),
        ],
    )
    def test_measure_join_workload(self, uniform_points, kind, params):
        index = BaseZIndex(uniform_points, leaf_capacity=16)
        probes = uniform_points[:10]
        stats = measure_join_workload(index, probes, kind, **params)
        assert stats.num_queries == 10
        assert stats.extra["num_pairs"] > 0
        assert 0.0 < stats.extra["selectivity"] <= 1.0

    def test_measure_join_workload_validates_arguments(self, uniform_points):
        index = BaseZIndex(uniform_points, leaf_capacity=16)
        with pytest.raises(ValueError):
            measure_join_workload(index, uniform_points[:3], "box")
        with pytest.raises(ValueError):
            measure_join_workload(index, uniform_points[:3], "radius")
        with pytest.raises(ValueError):
            measure_join_workload(index, uniform_points[:3], "knn")
        with pytest.raises(ValueError):
            measure_join_workload(index, uniform_points[:3], "hash", half_width=0.1)

    def test_runner_measures_knn_and_join_scenarios(self, uniform_points, sample_queries):
        runner = ComparisonRunner({
            "base": lambda: BaseZIndex(uniform_points, leaf_capacity=16),
        })
        (result,) = runner.run(
            range_queries=sample_queries[:5],
            knn_queries=uniform_points[:8],
            knn_k=4,
            join_probes=uniform_points[:6],
            join_half_width=0.05,
            batch_knn=True,
        )
        assert result.knn_stats is not None
        assert result.knn_stats.num_queries == 8
        assert result.knn_mean_micros > 0
        assert result.join_stats is not None
        assert result.join_stats.num_queries == 6
        assert result.join_mean_micros > 0

    def test_runner_join_probes_require_half_width(self, uniform_points):
        runner = ComparisonRunner({
            "base": lambda: BaseZIndex(uniform_points, leaf_capacity=16),
        })
        with pytest.raises(ValueError):
            runner.run(join_probes=uniform_points[:4])


class TestCostRedemption:
    def test_slower_build_faster_query_breaks_even(self):
        entry = cost_redemption("WaZI", 10.0, 0.001, 2.0, 0.002)
        assert entry.sign == "+"
        assert entry.queries_to_break_even == pytest.approx(8000.0)

    def test_faster_build_slower_query(self):
        entry = cost_redemption("STR", 1.0, 0.003, 2.0, 0.002)
        assert entry.sign == "-"
        assert entry.queries_to_break_even == pytest.approx(1000.0)

    def test_dominating_index(self):
        entry = cost_redemption("Flood", 1.0, 0.001, 2.0, 0.002)
        assert entry.sign == "+"
        assert entry.queries_to_break_even is None

    def test_dominated_index(self):
        entry = cost_redemption("QUASII", 10.0, 0.003, 2.0, 0.002)
        assert entry.sign == "-"
        assert entry.queries_to_break_even is None

    def test_render_formats(self):
        assert cost_redemption("x", 10.0, 0.001, 2.0, 0.002).render().startswith("(+)")
        assert "k" in cost_redemption("x", 10.0, 0.001, 2.0, 0.002).render()
        millions = cost_redemption("x", 2_000_001.0, 0.000, 1.0, 0.001)
        assert "M" in millions.render()
        assert cost_redemption("x", 1.0, 0.001, 2.0, 0.002).render() == "(+)"


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(["name", "value"], [["a", 1.23456], ["bbbb", 2.0]], title="demo")
        lines = table.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_percent_improvement(self):
        assert percent_improvement(100.0, 60.0) == pytest.approx(40.0)
        assert percent_improvement(100.0, 150.0) == pytest.approx(-50.0)
        assert percent_improvement(0.0, 10.0) == 0.0

    def test_index_properties_table_matches_paper(self):
        assert INDEX_PROPERTIES["WaZI"] == {
            "sfc_based": True,
            "query_aware": True,
            "learned": True,
        }
        assert INDEX_PROPERTIES["STR"] == {
            "sfc_based": False,
            "query_aware": False,
            "learned": False,
        }
        table = index_properties_table()
        assert "WaZI" in table and "QUASII" in table

    def test_improvement_table(self):
        table = improvement_table("Base", {"Base": 10.0, "WaZI": 6.0}, title="fig7")
        assert "fig7" in table
        assert "40.000" in table
