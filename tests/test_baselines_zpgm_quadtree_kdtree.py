"""Tests for the Zpgm rank-space index and the quad-tree / k-d tree references."""

import pytest

from repro.baselines import KDTreeIndex, QuadTreeIndex, ZPGMIndex
from repro.geometry import Point, Rect
from repro.interfaces import brute_force_range


def result_set(points):
    return sorted((p.x, p.y) for p in points)


class TestZPGMIndex:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ZPGMIndex([Point(0, 0)], leaf_capacity=0)
        with pytest.raises(ValueError):
            ZPGMIndex([Point(0, 0)], epsilon=0)

    def test_matches_brute_force(self, clustered_points, small_workload):
        index = ZPGMIndex(clustered_points, leaf_capacity=32)
        for query in small_workload.queries[:20]:
            expected = brute_force_range(clustered_points, query)
            assert result_set(index.range_query(query)) == result_set(expected)

    def test_matches_brute_force_without_bigmin(self, clustered_points, small_workload):
        index = ZPGMIndex(clustered_points, leaf_capacity=32, use_bigmin=False)
        for query in small_workload.queries[:10]:
            expected = brute_force_range(clustered_points, query)
            assert result_set(index.range_query(query)) == result_set(expected)

    def test_point_queries(self, clustered_points):
        index = ZPGMIndex(clustered_points, leaf_capacity=32)
        assert all(index.point_query(p) for p in clustered_points[:100])
        assert not index.point_query(Point(-5.0, -5.0))

    def test_empty_dataset(self):
        index = ZPGMIndex([])
        assert len(index) == 0
        assert index.range_query(Rect(0, 0, 1, 1)) == []
        assert not index.point_query(Point(0, 0))
        assert index.extent() is None

    def test_model_has_bounded_segments(self, clustered_points):
        index = ZPGMIndex(clustered_points, leaf_capacity=32, epsilon=16)
        assert 1 <= index.num_segments <= len(clustered_points)

    def test_larger_epsilon_means_fewer_segments(self, clustered_points):
        fine = ZPGMIndex(clustered_points, epsilon=4)
        coarse = ZPGMIndex(clustered_points, epsilon=256)
        assert coarse.num_segments <= fine.num_segments

    def test_bigmin_skips_pages(self, clustered_points, small_workload):
        index = ZPGMIndex(clustered_points, leaf_capacity=16, use_bigmin=True)
        index.reset_counters()
        for query in small_workload.queries:
            index.range_query(query)
        assert index.counters.leaves_skipped >= 0

    def test_size_bytes_positive(self, clustered_points):
        assert ZPGMIndex(clustered_points).size_bytes() > 0


class TestQuadTreeIndex:
    def test_invalid_leaf_capacity(self):
        with pytest.raises(ValueError):
            QuadTreeIndex([], leaf_capacity=0)

    def test_matches_brute_force(self, uniform_points, sample_queries):
        index = QuadTreeIndex(uniform_points, leaf_capacity=16)
        for query in sample_queries[:15]:
            expected = brute_force_range(uniform_points, query)
            assert result_set(index.range_query(query)) == result_set(expected)

    def test_point_queries(self, uniform_points):
        index = QuadTreeIndex(uniform_points, leaf_capacity=16)
        assert all(index.point_query(p) for p in uniform_points[:50])
        assert not index.point_query(Point(3.0, 3.0))

    def test_insert_outside_extent_expands_root(self, uniform_points):
        index = QuadTreeIndex(uniform_points, leaf_capacity=16)
        outsider = Point(5.0, -3.0)
        index.insert(outsider)
        assert index.point_query(outsider)
        assert index.extent().contains_point(outsider)

    def test_delete(self, uniform_points):
        index = QuadTreeIndex(uniform_points, leaf_capacity=16)
        victim = uniform_points[7]
        assert index.delete(victim)
        assert not index.point_query(victim)
        assert not index.delete(Point(9.0, 9.0))

    def test_len_and_size(self, uniform_points):
        index = QuadTreeIndex(uniform_points, leaf_capacity=16)
        assert len(index) == len(uniform_points)
        assert index.size_bytes() > 0

    def test_duplicate_points_bounded_by_max_depth(self):
        duplicates = [Point(0.5, 0.5)] * 500
        index = QuadTreeIndex(duplicates, leaf_capacity=8, max_depth=6)
        assert len(index) == 500
        assert len(index.range_query(Rect(0, 0, 1, 1))) == 500


class TestKDTreeIndex:
    def test_invalid_leaf_capacity(self):
        with pytest.raises(ValueError):
            KDTreeIndex([], leaf_capacity=0)

    def test_matches_brute_force(self, clustered_points, small_workload):
        index = KDTreeIndex(clustered_points, leaf_capacity=32)
        for query in small_workload.queries[:20]:
            expected = brute_force_range(clustered_points, query)
            assert result_set(index.range_query(query)) == result_set(expected)

    def test_point_queries(self, clustered_points):
        index = KDTreeIndex(clustered_points, leaf_capacity=32)
        assert all(index.point_query(p) for p in clustered_points[:100])
        assert not index.point_query(Point(-77.0, 0.0))

    def test_empty_dataset(self):
        index = KDTreeIndex([])
        assert len(index) == 0
        assert index.range_query(Rect(0, 0, 1, 1)) == []
        assert not index.point_query(Point(0, 0))

    def test_duplicate_points(self):
        duplicates = [Point(1.0, 1.0)] * 200
        index = KDTreeIndex(duplicates, leaf_capacity=16)
        assert len(index.range_query(Rect(0, 0, 2, 2))) == 200
        assert index.point_query(Point(1.0, 1.0))

    def test_size_bytes_positive(self, clustered_points):
        assert KDTreeIndex(clustered_points).size_bytes() > 0
