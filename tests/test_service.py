"""Unit + HTTP round-trip tests for the service layer (repro.service)."""

import json
import urllib.error
import urllib.request

import pytest

from repro.engine import SpatialEngine
from repro.obs import MetricsRegistry
from repro.query import KnnQuery, PointQuery, RadiusQuery, RangeQuery
from repro.service import SpatialService, render_json_bytes, serve
from repro.service.errors import (
    BadRequestError,
    ConflictError,
    ServiceError,
)


@pytest.fixture()
def engine(clustered_points, small_workload):
    return SpatialEngine.build(
        "wazi", clustered_points, small_workload.queries, leaf_capacity=64, seed=1
    )


@pytest.fixture()
def service(engine):
    return SpatialService(engine, record=False)


def _rect_spec(rect):
    return {"kind": "range", "rect": [rect.xmin, rect.ymin, rect.xmax, rect.ymax]}


class TestErrors:
    def test_payload_shape(self):
        payload = BadRequestError("nope").to_payload()
        assert payload == {
            "error": {"code": "bad-request", "status": 400, "message": "nope"}
        }

    def test_taxonomy_statuses(self):
        from repro.service.errors import (
            InternalError,
            MethodNotAllowedError,
            NotFoundError,
            UnsupportedError,
        )

        assert BadRequestError("x").status == 400
        assert NotFoundError("x").status == 404
        assert MethodNotAllowedError("x").status == 405
        assert ConflictError("x").status == 409
        assert InternalError("x").status == 500
        assert UnsupportedError("x").status == 501
        assert isinstance(BadRequestError("x"), ServiceError)


class TestRenderJsonBytes:
    def test_deterministic_and_sorted(self):
        assert render_json_bytes({"b": 1, "a": 2}) == b'{"a":2,"b":1}\n'

    def test_float_round_trip(self):
        value = 0.1 + 0.2
        body = render_json_bytes({"v": value})
        assert json.loads(body)["v"] == value


class TestParsePlan:
    def test_range(self, service, small_workload):
        plan = service.parse_plan(_rect_spec(small_workload.queries[0]))
        assert isinstance(plan, RangeQuery)

    def test_knn_radius_point(self, service):
        assert isinstance(
            service.parse_plan({"kind": "knn", "center": [0.5, 0.5], "k": 3}),
            KnnQuery,
        )
        assert isinstance(
            service.parse_plan(
                {"kind": "radius", "center": [0.5, 0.5], "radius": 0.1}
            ),
            RadiusQuery,
        )
        assert isinstance(
            service.parse_plan({"kind": "point", "point": [0.5, 0.5]}),
            PointQuery,
        )

    @pytest.mark.parametrize("spec", [
        "not-a-dict",
        {"kind": "teleport"},
        {"kind": "range", "rect": [0.0, 0.0, 1.0]},
        {"kind": "range", "rect": [1.0, 1.0, 0.0, 0.0]},  # malformed rect
        {"kind": "knn", "center": [0.5, 0.5], "k": "three"},
        {"kind": "knn", "center": [0.5, 0.5], "k": True},
        {"kind": "knn", "center": [0.5], "k": 3},
        {"kind": "radius", "center": [0.5, 0.5], "radius": "wide"},
    ])
    def test_junk_is_bad_request(self, service, spec):
        with pytest.raises(BadRequestError):
            service.parse_plan(spec)


class TestHandleQuery:
    def test_single_range_rows(self, service, engine, small_workload):
        rect = small_workload.queries[0]
        out = service.handle_query(_rect_spec(rect))
        result = out["result"]
        assert result["count"] == len(result["xs"]) == len(result["ys"])
        assert result["count"] == engine.index.range_count(rect)

    def test_count_only(self, service, engine, small_workload):
        rect = small_workload.queries[0]
        out = service.handle_query({**_rect_spec(rect), "count_only": True})
        assert out["result"] == {"count": engine.index.range_count(rect)}

    def test_limit(self, service, small_workload):
        rect = max(
            small_workload.queries, key=lambda r: (r.xmax - r.xmin) * (r.ymax - r.ymin)
        )
        out = service.handle_query({**_rect_spec(rect), "limit": 2})
        assert out["result"]["count"] <= 2

    def test_batch(self, service, engine, small_workload):
        rects = small_workload.queries[:5]
        out = service.handle_query({
            "queries": [_rect_spec(r) for r in rects], "count_only": True,
        })
        counts = [r["count"] for r in out["results"]]
        assert counts == engine.index.batch_range_count(rects)

    def test_point_query_returns_found(self, service, clustered_points):
        point = clustered_points[0]
        out = service.handle_query({"kind": "point", "point": [point.x, point.y]})
        assert out["result"] == {"found": True}

    @pytest.mark.parametrize("payload", [
        [],  # not an object
        {"queries": "not-a-list"},
        {"kind": "range", "rect": [0, 0, 1, 1], "limit": 0},
        {"kind": "range", "rect": [0, 0, 1, 1], "limit": True},
    ])
    def test_bad_payloads(self, service, payload):
        with pytest.raises(BadRequestError):
            service.handle_query(payload)


class TestHandleStatsAdviseAdapt:
    def test_stats_shape(self, service, engine, small_workload):
        service.handle_query({**_rect_spec(small_workload.queries[0]),
                              "count_only": True})
        stats = service.handle_stats()
        assert stats["index"] == engine.name
        assert stats["num_points"] == len(engine)
        assert stats["counters"]["pages_scanned"] >= 0
        assert set(stats["observed"]) == {"ranges", "knn", "radius"}

    def test_advise_without_history_conflicts(self, service):
        with pytest.raises(ConflictError):
            service.handle_advise({})

    def test_advise_and_adapt_round_trip(self, engine, small_workload):
        service = SpatialService(engine, record=True)
        service.handle_query({
            "queries": [_rect_spec(r) for r in small_workload.queries],
            "count_only": True,
        })
        advise = service.handle_advise({})
        assert "should_adapt" in advise["report"]
        assert isinstance(advise["rendered"], str)
        adapt = service.handle_adapt({})
        assert adapt["adapted"] is True
        assert adapt["seconds"] > 0

    def test_adapt_rejects_non_bool_tune(self, service):
        with pytest.raises(BadRequestError):
            service.handle_adapt({"tune_leaf_capacity": "yes"})

    def test_healthz(self, service, engine):
        out = service.handle_healthz()
        assert out["status"] == "ok"
        assert out["num_points"] == len(engine)


class TestMetricsWiring:
    def test_service_attaches_registry_to_engine(self, engine):
        service = SpatialService(engine, record=False)
        assert engine.metrics is not None
        assert engine.metrics.registry is service.registry

    def test_reuses_pre_attached_registry(self, clustered_points, small_workload):
        registry = MetricsRegistry()
        engine = SpatialEngine.build(
            "wazi", clustered_points, small_workload.queries,
            leaf_capacity=64, seed=1, metrics=registry,
        )
        service = SpatialService(engine, record=False)
        assert service.registry is registry

    def test_metrics_text_counts_queries(self, service, small_workload):
        service.handle_query({**_rect_spec(small_workload.queries[0]),
                              "count_only": True})
        text = service.metrics_text()
        assert 'repro_queries_total{kind="range"} 1' in text


class TestHTTPServer:
    @pytest.fixture()
    def server(self, engine):
        with serve(engine, record=False).start() as server:
            yield server

    @staticmethod
    def _post(server, path, payload):
        request = urllib.request.Request(
            server.url + path, data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request) as response:
            return response.status, response.read()

    def test_query_is_byte_identical_to_in_process(
        self, server, engine, small_workload
    ):
        payload = {
            "queries": [_rect_spec(r) for r in small_workload.queries[:4]],
        }
        status, body = self._post(server, "/query", payload)
        twin = SpatialService(SpatialEngine(engine.index), record=False)
        assert status == 200
        assert body == render_json_bytes(twin.handle_query(payload))

    def test_healthz_stats_metrics(self, server):
        for path in ("/healthz", "/stats"):
            with urllib.request.urlopen(server.url + path) as response:
                assert response.status == 200
                assert json.loads(response.read())
        with urllib.request.urlopen(server.url + "/metrics") as response:
            assert response.status == 200
            assert response.headers["Content-Type"].startswith("text/plain")

    def test_error_statuses(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            self._post(server, "/query", {"kind": "teleport"})
        assert exc_info.value.code == 400
        assert json.loads(exc_info.value.read())["error"]["code"] == "bad-request"

        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(server.url + "/nowhere")
        assert exc_info.value.code == 404

        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(server.url + "/query")  # GET on a POST route
        assert exc_info.value.code == 405

        with pytest.raises(urllib.error.HTTPError) as exc_info:
            self._post(server, "/advise", {})  # nothing observed yet
        assert exc_info.value.code == 409

    def test_invalid_json_body_is_400(self, server):
        request = urllib.request.Request(
            server.url + "/query", data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(request)
        assert exc_info.value.code == 400

    def test_trailing_slash_routes(self, server):
        with urllib.request.urlopen(server.url + "/healthz/") as response:
            assert response.status == 200

    def test_ephemeral_port_and_context_manager(self, engine):
        server = serve(engine, record=False)
        assert server.port != 0
        assert server.url.startswith("http://127.0.0.1:")
        server.start()
        server.close()
        server.close()  # idempotent

    def test_sharded_backend_over_http(self, engine, small_workload, tmp_path):
        from repro.serving import build_shards, open_sharded

        build_shards(engine.index, tmp_path / "shards", 2,
                     workload=small_workload.queries)
        with open_sharded(tmp_path / "shards", workers=0) as sharded:
            with serve(sharded, record=False).start() as server:
                payload = {
                    "queries": [_rect_spec(r) for r in small_workload.queries[:4]],
                    "count_only": True,
                }
                status, body = self._post(server, "/query", payload)
                assert status == 200
                counts = [
                    r["count"] for r in json.loads(body)["results"]
                ]
                assert counts == engine.index.batch_range_count(
                    small_workload.queries[:4]
                )
                stats_body = urllib.request.urlopen(server.url + "/stats").read()
                stats = json.loads(stats_body)
                assert stats["num_shards"] == 2
                metrics = urllib.request.urlopen(server.url + "/metrics").read()
                assert b"repro_shard_busy_micros" in metrics


class TestOnlineRoutes:
    @pytest.fixture()
    def online_service(self, engine):
        from repro.online import MaintenancePolicy

        engine.online(
            MaintenancePolicy(adapt_min_queries=16, compact_min_rows=64),
            start=False,
        )
        try:
            yield SpatialService(engine, record=False)
        finally:
            engine.offline()

    def test_offline_engine_conflicts(self, service):
        with pytest.raises(ConflictError):
            service.handle_ingest({"insert": [[0.5, 0.5]]})
        with pytest.raises(ConflictError):
            service.handle_maintenance({})
        assert service.handle_maintenance_status() == {"online": False}

    def test_ingest_round_trip(self, online_service, engine, clustered_points):
        before = len(engine)
        body = online_service.handle_ingest(
            {
                "insert": [[0.11, 0.22], [0.33, 0.44]],
                "delete": [
                    [clustered_points[0].x, clustered_points[0].y],
                    [123.0, 456.0],
                ],
            }
        )
        assert body["inserted"] == 2
        assert body["deleted"] == 1
        assert body["delete_misses"] == 1
        assert body["num_points"] == before + 1
        assert body["delta"]["live"] == 2
        assert body["delta"]["tombstones"] == 1

    @pytest.mark.parametrize(
        "payload",
        [
            {},
            {"insert": "nope"},
            {"insert": [[1.0]]},
            {"insert": [[1.0, "x"]]},
            {"insert": [[float("nan"), 0.5]]},
        ],
    )
    def test_ingest_bad_payloads(self, online_service, payload):
        with pytest.raises(BadRequestError):
            online_service.handle_ingest(payload)

    def test_maintenance_run_once_and_status(self, online_service):
        online_service.handle_ingest({"insert": [[0.61, 0.62]]})
        body = online_service.handle_maintenance({})
        assert body["action"] == "run_once"
        assert body["status"]["online"] is True
        assert body["status"]["ticks"] == 1
        status = online_service.handle_maintenance_status()
        assert status["online"] is True
        assert status["delta"]["live"] == 1  # below compact_min_rows: kept

    def test_maintenance_start_stop_and_bad_action(self, online_service, engine):
        assert online_service.handle_maintenance({"action": "start"})["status"]["running"]
        online_service.handle_maintenance({"action": "stop"})
        assert not engine.online_loop.running
        with pytest.raises(BadRequestError):
            online_service.handle_maintenance({"action": "explode"})

    def test_ingest_metrics_rendered(self, online_service):
        online_service.handle_ingest({"insert": [[0.5, 0.5]]})
        text = online_service.metrics_text()
        assert 'repro_ingest_total{kind="insert"} 1' in text
        assert "repro_delta_live_rows 1" in text

    def test_http_ingest_and_maintenance(self, engine):
        from repro.online import MaintenancePolicy

        engine.online(MaintenancePolicy(compact_min_rows=2), start=False)
        try:
            with serve(engine, record=False).start() as server:
                status, body = TestHTTPServer._post(
                    server, "/ingest", {"insert": [[0.4, 0.4], [0.6, 0.6]]}
                )
                assert status == 200
                assert json.loads(body)["inserted"] == 2
                status, body = TestHTTPServer._post(server, "/maintenance", {})
                assert status == 200
                assert json.loads(body)["summary"]["compacted"] is True
                with urllib.request.urlopen(server.url + "/maintenance") as response:
                    assert json.loads(response.read())["online"] is True
        finally:
            engine.offline()
