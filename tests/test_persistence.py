"""Tests for dataset/workload/index persistence."""

import json

import pytest

from repro import WaZI, build_index
from repro.geometry import Point, Rect
from repro.interfaces import brute_force_range
from repro.persistence import (
    load_index,
    load_points,
    load_queries,
    save_index,
    save_points,
    save_queries,
)


class TestPointsRoundtrip:
    def test_roundtrip(self, tmp_path, uniform_points):
        path = tmp_path / "points.json"
        save_points(uniform_points, path)
        loaded = load_points(path)
        assert loaded == uniform_points

    def test_empty_dataset(self, tmp_path):
        path = tmp_path / "empty.json"
        save_points([], path)
        assert load_points(path) == []

    def test_file_is_json(self, tmp_path, uniform_points):
        path = tmp_path / "points.json"
        save_points(uniform_points[:3], path)
        payload = json.loads(path.read_text())
        assert payload["kind"] == "points"
        assert len(payload["points"]) == 3


class TestQueriesRoundtrip:
    def test_roundtrip(self, tmp_path, sample_queries):
        path = tmp_path / "queries.json"
        save_queries(sample_queries, path)
        assert load_queries(path) == sample_queries

    def test_kind_mismatch_rejected(self, tmp_path, uniform_points):
        path = tmp_path / "points.json"
        save_points(uniform_points[:2], path)
        with pytest.raises(ValueError):
            load_queries(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 99, "kind": "queries", "queries": []}))
        with pytest.raises(ValueError):
            load_queries(path)

    def test_non_persistence_file_rejected(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ValueError):
            load_points(path)


class TestIndexRoundtrip:
    def test_wazi_roundtrip_preserves_answers(self, tmp_path, clustered_points, small_workload):
        index = WaZI(clustered_points[:800], small_workload.queries, leaf_capacity=32, seed=1)
        path = tmp_path / "wazi.pickle"
        save_index(index, path)
        restored = load_index(path)
        for query in small_workload.queries[:10]:
            expected = sorted((p.x, p.y) for p in index.range_query(query))
            got = sorted((p.x, p.y) for p in restored.range_query(query))
            assert got == expected
        assert len(restored) == len(index)

    def test_baseline_roundtrip(self, tmp_path, uniform_points, sample_queries):
        index = build_index("str", uniform_points)
        path = tmp_path / "str.pickle"
        save_index(index, path)
        restored = load_index(path)
        query = sample_queries[0]
        expected = sorted((p.x, p.y) for p in brute_force_range(uniform_points, query))
        assert sorted((p.x, p.y) for p in restored.range_query(query)) == expected

    def test_restored_index_supports_updates(self, tmp_path, uniform_points):
        index = build_index("base", uniform_points)
        path = tmp_path / "base.pickle"
        save_index(index, path)
        restored = load_index(path)
        restored.insert(Point(0.123, 0.987))
        assert restored.point_query(Point(0.123, 0.987))
