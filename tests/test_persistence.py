"""Tests for dataset/workload/index persistence."""

import json
import pickle

import pytest

from repro import WaZI, build_index
from repro.geometry import Point
from repro.interfaces import brute_force_range
from repro.persistence import (
    IndexLoadError,
    PICKLE_FORMAT_VERSION,
    load_index,
    load_points,
    load_queries,
    save_index,
    save_points,
    save_queries,
)


class TestPointsRoundtrip:
    def test_roundtrip(self, tmp_path, uniform_points):
        path = tmp_path / "points.json"
        save_points(uniform_points, path)
        loaded = load_points(path)
        assert loaded == uniform_points

    def test_empty_dataset(self, tmp_path):
        path = tmp_path / "empty.json"
        save_points([], path)
        assert load_points(path) == []

    def test_file_is_json(self, tmp_path, uniform_points):
        path = tmp_path / "points.json"
        save_points(uniform_points[:3], path)
        payload = json.loads(path.read_text())
        assert payload["kind"] == "points"
        assert len(payload["points"]) == 3


class TestQueriesRoundtrip:
    def test_roundtrip(self, tmp_path, sample_queries):
        path = tmp_path / "queries.json"
        save_queries(sample_queries, path)
        assert load_queries(path) == sample_queries

    def test_kind_mismatch_rejected(self, tmp_path, uniform_points):
        path = tmp_path / "points.json"
        save_points(uniform_points[:2], path)
        with pytest.raises(ValueError):
            load_queries(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 99, "kind": "queries", "queries": []}))
        with pytest.raises(ValueError):
            load_queries(path)

    def test_non_persistence_file_rejected(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ValueError):
            load_points(path)


class TestIndexRoundtrip:
    def test_wazi_roundtrip_preserves_answers(self, tmp_path, clustered_points, small_workload):
        index = WaZI(clustered_points[:800], small_workload.queries, leaf_capacity=32, seed=1)
        path = tmp_path / "wazi.pickle"
        save_index(index, path)
        restored = load_index(path)
        for query in small_workload.queries[:10]:
            expected = sorted((p.x, p.y) for p in index.range_query(query))
            got = sorted((p.x, p.y) for p in restored.range_query(query))
            assert got == expected
        assert len(restored) == len(index)

    def test_baseline_roundtrip(self, tmp_path, uniform_points, sample_queries):
        index = build_index("str", uniform_points)
        path = tmp_path / "str.pickle"
        save_index(index, path)
        restored = load_index(path)
        query = sample_queries[0]
        expected = sorted((p.x, p.y) for p in brute_force_range(uniform_points, query))
        assert sorted((p.x, p.y) for p in restored.range_query(query)) == expected

    def test_restored_index_supports_updates(self, tmp_path, uniform_points):
        index = build_index("base", uniform_points)
        path = tmp_path / "base.pickle"
        save_index(index, path)
        restored = load_index(path)
        restored.insert(Point(0.123, 0.987))
        assert restored.point_query(Point(0.123, 0.987))


class TestVersionedPickleEnvelope:
    def test_envelope_records_class_and_versions(self, tmp_path, uniform_points):
        index = build_index("base", uniform_points[:50])
        path = tmp_path / "base.pickle"
        save_index(index, path)
        with open(path, "rb") as handle:
            envelope = pickle.load(handle)
        assert envelope["format"] == "repro-index-pickle"
        assert envelope["format_version"] == PICKLE_FORMAT_VERSION
        assert envelope["class_name"] == "BaseZIndex"
        assert "library_version" in envelope

    def test_legacy_raw_pickle_still_loads(self, tmp_path, uniform_points):
        index = build_index("base", uniform_points[:50])
        path = tmp_path / "legacy.pickle"
        with open(path, "wb") as handle:
            pickle.dump(index, handle, protocol=pickle.HIGHEST_PROTOCOL)
        restored = load_index(path)
        assert len(restored) == len(index)

    def test_pre_lazy_points_pickle_supports_updates(self, tmp_path, uniform_points):
        """Pickles whose __dict__ predates the lazy `_points_list` storage.

        Earlier revisions stored the dataset under `_points`; an instance
        restored from such a pickle must still insert/delete instead of
        dying on a missing `_points_list` attribute.
        """
        index = build_index("base", uniform_points[:50])
        state = dict(index.__dict__)
        state["_points"] = state.pop("_points_list")  # the old attribute layout
        path = tmp_path / "pre_lazy.pickle"
        with open(path, "wb") as handle:
            pickle.dump(index, handle, protocol=pickle.HIGHEST_PROTOCOL)
        restored = load_index(path)
        restored.__dict__.clear()
        restored.__dict__.update(state)
        restored.insert(Point(0.123, 0.987))
        assert restored.point_query(Point(0.123, 0.987))
        assert restored.delete(Point(0.123, 0.987))

    def test_stale_pickle_raises_clear_rebuild_error(self, tmp_path):
        """A payload whose classes no longer exist must not leak AttributeError."""
        envelope = {
            "format": "repro-index-pickle",
            "format_version": PICKLE_FORMAT_VERSION,
            "library_version": "0.0.1",
            "class_module": "repro.retired_module",
            "class_name": "RetiredIndex",
            "index_name": "Retired",
            # Protocol-0 GLOBAL opcode referencing a module that does not exist,
            # reproducing what unpickling an older layout raises today.
            "payload": b"cno_such_module\nNoSuchClass\n.",
        }
        path = tmp_path / "stale.pickle"
        with open(path, "wb") as handle:
            pickle.dump(envelope, handle)
        with pytest.raises(IndexLoadError) as excinfo:
            load_index(path)
        message = str(excinfo.value)
        assert "rebuild the index" in message
        assert "repro.retired_module.RetiredIndex" in message
        assert "0.0.1" in message

    def test_future_envelope_version_refused(self, tmp_path):
        envelope = {
            "format": "repro-index-pickle",
            "format_version": PICKLE_FORMAT_VERSION + 5,
            "payload": b"",
        }
        path = tmp_path / "future.pickle"
        with open(path, "wb") as handle:
            pickle.dump(envelope, handle)
        with pytest.raises(IndexLoadError, match="upgrade"):
            load_index(path)

    def test_garbage_file_raises_index_load_error(self, tmp_path):
        path = tmp_path / "garbage.pickle"
        path.write_bytes(b"not a pickle at all")
        with pytest.raises(IndexLoadError):
            load_index(path)

    def test_non_index_pickle_refused(self, tmp_path):
        path = tmp_path / "list.pickle"
        with open(path, "wb") as handle:
            pickle.dump([1, 2, 3], handle)
        with pytest.raises(IndexLoadError):
            load_index(path)
