"""Unit tests for the continuous-to-grid Z-order mapper."""

import pytest

from repro.geometry import Point, Rect
from repro.zorder import ZOrderMapper


class TestMapperQuantisation:
    def test_corners_map_to_grid_extremes(self):
        mapper = ZOrderMapper(Rect(0.0, 0.0, 1.0, 1.0), bits=4)
        assert mapper.cell_of(Point(0.0, 0.0)) == (0, 0)
        assert mapper.cell_of(Point(1.0, 1.0)) == (15, 15)

    def test_out_of_extent_points_clamped(self):
        mapper = ZOrderMapper(Rect(0.0, 0.0, 1.0, 1.0), bits=4)
        assert mapper.cell_of(Point(-5.0, 2.0)) == (0, 15)

    def test_degenerate_extent_does_not_divide_by_zero(self):
        mapper = ZOrderMapper(Rect(1.0, 1.0, 1.0, 1.0), bits=4)
        assert mapper.cell_of(Point(1.0, 1.0)) == (0, 0)

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            ZOrderMapper(Rect(0, 0, 1, 1), bits=0)


class TestMapperAddresses:
    def test_z_address_monotone_in_domination(self):
        mapper = ZOrderMapper(Rect(0.0, 0.0, 1.0, 1.0), bits=8)
        low = mapper.z_address(Point(0.2, 0.3))
        high = mapper.z_address(Point(0.6, 0.7))
        assert low < high

    def test_z_addresses_batch_matches_single(self):
        mapper = ZOrderMapper(Rect(0.0, 0.0, 10.0, 10.0), bits=6)
        points = [Point(1.0, 2.0), Point(9.0, 9.0), Point(5.0, 0.1)]
        assert mapper.z_addresses(points) == [mapper.z_address(p) for p in points]

    def test_cell_center_roundtrip_stays_in_cell(self):
        mapper = ZOrderMapper(Rect(0.0, 0.0, 1.0, 1.0), bits=5)
        point = Point(0.37, 0.81)
        z = mapper.z_address(point)
        center = mapper.cell_center(z)
        assert mapper.z_address(center) == z

    def test_z_range_of_query_ordered(self):
        mapper = ZOrderMapper(Rect(0.0, 0.0, 1.0, 1.0), bits=8)
        low, high = mapper.z_range_of_query(Rect(0.1, 0.1, 0.9, 0.9))
        assert low < high

    def test_integer_query_covers_query_cells(self):
        mapper = ZOrderMapper(Rect(0.0, 0.0, 1.0, 1.0), bits=4)
        (min_cell, max_cell) = mapper.integer_query(Rect(0.2, 0.2, 0.8, 0.8))
        assert min_cell[0] <= max_cell[0]
        assert min_cell[1] <= max_cell[1]
