"""Tests for the range-query-based spatial join operators."""

import pytest

from repro import WaZI, BaseZIndex, build_index
from repro.geometry import Point, Rect
from repro.joins import (
    box_join,
    join_selectivity,
    knn_join,
    knn_join_pairs,
    radius_join,
)
from repro.interfaces import SpatialIndex, brute_force_knn


def brute_force_radius_join(data, probes, radius):
    pairs = []
    for probe in probes:
        for point in data:
            if point.distance_squared(probe) <= radius * radius:
                pairs.append((probe, point))
    return pairs


def scalar_box_join(index, probes, half_width, half_height=None):
    """The seed's per-probe, per-pair box-join decomposition (reference)."""
    if half_height is None:
        half_height = half_width
    pairs = []
    for probe in probes:
        window = Rect(
            probe.x - half_width, probe.y - half_height,
            probe.x + half_width, probe.y + half_height,
        )
        for match in index.range_query(window):
            pairs.append((probe, match))
    return pairs


def scalar_radius_join(index, probes, radius):
    """The seed's per-probe, per-pair radius-join decomposition (reference)."""
    radius_squared = radius * radius
    pairs = []
    for probe in probes:
        window = Rect(probe.x - radius, probe.y - radius, probe.x + radius, probe.y + radius)
        for candidate in index.range_query(window):
            if candidate.distance_squared(probe) <= radius_squared:
                pairs.append((probe, candidate))
    return pairs


class TestBoxJoin:
    def test_invalid_widths(self, uniform_points):
        index = BaseZIndex(uniform_points)
        with pytest.raises(ValueError):
            box_join(index, uniform_points[:2], -1.0)
        with pytest.raises(ValueError):
            box_join(index, uniform_points[:2], 1.0, -1.0)

    def test_matches_brute_force(self, uniform_points):
        index = BaseZIndex(uniform_points, leaf_capacity=16)
        probes = uniform_points[:20]
        pairs = box_join(index, probes, 0.05)
        expected = set()
        for probe in probes:
            for point in uniform_points:
                if abs(point.x - probe.x) <= 0.05 and abs(point.y - probe.y) <= 0.05:
                    expected.add((probe.as_tuple(), point.as_tuple()))
        got = {(a.as_tuple(), b.as_tuple()) for a, b in pairs}
        assert got == expected

    def test_each_probe_matches_itself(self, uniform_points):
        index = BaseZIndex(uniform_points, leaf_capacity=16)
        pairs = box_join(index, uniform_points[:10], 0.01)
        matched = {probe.as_tuple() for probe, match in pairs if probe == match}
        assert matched == {p.as_tuple() for p in uniform_points[:10]}

    def test_zero_window_is_exact_match_join(self, uniform_points):
        index = BaseZIndex(uniform_points, leaf_capacity=16)
        pairs = box_join(index, [uniform_points[0], Point(5.0, 5.0)], 0.0)
        assert (uniform_points[0], uniform_points[0]) in pairs
        assert all(probe != Point(5.0, 5.0) for probe, _ in pairs)


class TestRadiusJoin:
    def test_invalid_radius(self, uniform_points):
        index = BaseZIndex(uniform_points)
        with pytest.raises(ValueError):
            radius_join(index, uniform_points[:2], -0.1)

    def test_matches_brute_force(self, uniform_points):
        index = BaseZIndex(uniform_points, leaf_capacity=16)
        probes = uniform_points[:15]
        pairs = radius_join(index, probes, 0.07)
        expected = brute_force_radius_join(uniform_points, probes, 0.07)
        as_set = lambda items: {(a.as_tuple(), b.as_tuple()) for a, b in items}
        assert as_set(pairs) == as_set(expected)

    def test_radius_join_subset_of_box_join(self, uniform_points):
        index = BaseZIndex(uniform_points, leaf_capacity=16)
        probes = uniform_points[:10]
        circle = {(a.as_tuple(), b.as_tuple()) for a, b in radius_join(index, probes, 0.05)}
        square = {(a.as_tuple(), b.as_tuple()) for a, b in box_join(index, probes, 0.05)}
        assert circle <= square

    def test_same_result_for_wazi_and_base(self, clustered_points, small_workload):
        base = BaseZIndex(clustered_points, leaf_capacity=32)
        wazi = WaZI(clustered_points, small_workload.queries, leaf_capacity=32, seed=1)
        probes = clustered_points[:20]
        as_set = lambda items: {(a.as_tuple(), b.as_tuple()) for a, b in items}
        assert as_set(radius_join(base, probes, 1.0)) == as_set(radius_join(wazi, probes, 1.0))


class TestKnnJoin:
    def test_invalid_k(self, uniform_points):
        index = BaseZIndex(uniform_points)
        with pytest.raises(ValueError):
            knn_join(index, uniform_points[:2], 0)

    def test_matches_brute_force_distances(self, uniform_points):
        index = build_index("str", uniform_points, leaf_capacity=16)
        probes = uniform_points[:10]
        result = knn_join(index, probes, 4)
        assert [probe for probe, _ in result] == probes
        for probe, got in result:
            expected = brute_force_knn(uniform_points, probe, 4)
            assert len(got) == 4
            expected_distances = sorted(p.distance_squared(probe) for p in expected)
            got_distances = sorted(p.distance_squared(probe) for p in got)
            assert got_distances == pytest.approx(expected_distances)

    def test_duplicate_probes_keep_their_own_entries(self, uniform_points):
        """Regression: duplicate-coordinate probes used to collapse into one
        dict entry, silently dropping pairs and corrupting selectivity."""
        index = BaseZIndex(uniform_points, leaf_capacity=16)
        probe = uniform_points[0]
        probes = [probe, Point(probe.x, probe.y), probe]
        result = knn_join(index, probes, 3)
        assert len(result) == len(probes)
        first_neighbours = result[0][1]
        for returned_probe, neighbours in result:
            assert returned_probe == probe
            assert neighbours == first_neighbours
        pairs = knn_join_pairs(index, probes, 3)
        assert len(pairs) == len(probes) * 3
        selectivity = join_selectivity(pairs, len(probes), len(uniform_points))
        assert selectivity == pytest.approx(9 / (3 * len(uniform_points)))

    def test_matches_scalar_expanding_window_decomposition(self, clustered_points):
        index = BaseZIndex(clustered_points, leaf_capacity=32)
        probes = clustered_points[:25]
        result = knn_join(index, probes, 5)
        for probe, neighbours in result:
            assert neighbours == SpatialIndex.knn(index, probe, 5)


class TestProbeValidation:
    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    def test_non_finite_probe_rejected_everywhere(self, uniform_points, bad):
        index = BaseZIndex(uniform_points, leaf_capacity=16)
        probes = [uniform_points[0], Point(bad, 0.5)]
        with pytest.raises(ValueError, match="finite"):
            box_join(index, probes, 0.1)
        with pytest.raises(ValueError, match="finite"):
            radius_join(index, probes, 0.1)
        with pytest.raises(ValueError, match="finite"):
            knn_join(index, probes, 3)

    def test_non_finite_parameters_rejected(self, uniform_points):
        index = BaseZIndex(uniform_points, leaf_capacity=16)
        with pytest.raises(ValueError, match="finite"):
            box_join(index, uniform_points[:2], float("nan"))
        with pytest.raises(ValueError, match="finite"):
            box_join(index, uniform_points[:2], 0.1, float("inf"))
        with pytest.raises(ValueError, match="finite"):
            radius_join(index, uniform_points[:2], float("nan"))

    def test_empty_probe_set(self, uniform_points):
        index = BaseZIndex(uniform_points, leaf_capacity=16)
        assert box_join(index, [], 0.1) == []
        assert radius_join(index, [], 0.1) == []
        assert knn_join(index, [], 3) == []


class TestVectorizedAgainstScalarDecomposition:
    """The batched joins are byte-identical to the seed's scalar loops."""

    def test_box_join_identical(self, clustered_points, small_workload):
        for index in (
            BaseZIndex(clustered_points, leaf_capacity=32),
            WaZI(clustered_points, small_workload.queries, leaf_capacity=32, seed=3),
        ):
            probes = clustered_points[:40]
            assert box_join(index, probes, 0.8, 0.5) == scalar_box_join(index, probes, 0.8, 0.5)

    def test_radius_join_identical(self, clustered_points, small_workload):
        for index in (
            BaseZIndex(clustered_points, leaf_capacity=32),
            WaZI(clustered_points, small_workload.queries, leaf_capacity=32, seed=3),
        ):
            probes = clustered_points[:40]
            assert radius_join(index, probes, 0.9) == scalar_radius_join(index, probes, 0.9)

    def test_non_zindex_fallback_identical(self, uniform_points):
        index = build_index("str", uniform_points, leaf_capacity=16)
        probes = uniform_points[:25]
        assert box_join(index, probes, 0.07) == scalar_box_join(index, probes, 0.07)
        assert radius_join(index, probes, 0.07) == scalar_radius_join(index, probes, 0.07)


class TestJoinSelectivity:
    def test_fraction_of_cross_product(self):
        pairs = [(Point(0, 0), Point(1, 1))] * 5
        assert join_selectivity(pairs, num_probes=10, num_indexed=10) == pytest.approx(0.05)

    def test_degenerate_inputs(self):
        assert join_selectivity([], 0, 10) == 0.0
        assert join_selectivity([], 10, 0) == 0.0
