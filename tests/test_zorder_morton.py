"""Unit tests for Morton encoding and Z-order comparison."""

import pytest

from repro.zorder import interleave, deinterleave, morton_encode, morton_decode, z_less


class TestInterleave:
    def test_known_values(self):
        # Interleaving places x on even bits and y on odd bits.
        assert interleave(0, 0) == 0
        assert interleave(1, 0) == 1
        assert interleave(0, 1) == 2
        assert interleave(1, 1) == 3
        assert interleave(2, 0) == 4
        assert interleave(0, 2) == 8
        assert interleave(3, 3) == 15

    def test_roundtrip_exhaustive_small(self):
        for x in range(16):
            for y in range(16):
                assert deinterleave(interleave(x, y, bits=4), bits=4) == (x, y)

    def test_aliases(self):
        assert morton_encode(5, 9) == interleave(5, 9)
        assert morton_decode(interleave(5, 9)) == (5, 9)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            interleave(-1, 0)
        with pytest.raises(ValueError):
            deinterleave(-1)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            interleave(16, 0, bits=4)

    def test_large_coordinates_fit_default_bits(self):
        x = y = (1 << 21) - 1
        z = interleave(x, y)
        assert deinterleave(z) == (x, y)
        assert z < (1 << 42)


class TestZOrderGrid:
    def test_first_level_quadrant_order_is_z(self):
        # Within a 2x2 grid the Z-order is (0,0), (1,0), (0,1), (1,1).
        cells = [(0, 0), (1, 0), (0, 1), (1, 1)]
        addresses = [interleave(x, y, bits=1) for x, y in cells]
        assert addresses == sorted(addresses)

    def test_full_grid_visits_each_cell_once(self):
        addresses = {interleave(x, y, bits=3) for x in range(8) for y in range(8)}
        assert addresses == set(range(64))


class TestZLess:
    def test_matches_encoded_comparison_exhaustive(self):
        for ax in range(8):
            for ay in range(8):
                for bx in range(8):
                    for by in range(8):
                        expected = interleave(ax, ay, bits=3) < interleave(bx, by, bits=3)
                        assert z_less((ax, ay), (bx, by), bits=3) == expected

    def test_equal_cells_not_less(self):
        assert not z_less((5, 5), (5, 5))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            z_less((16, 0), (1, 1), bits=4)


class TestZOrderMonotonicity:
    def test_dominated_cell_has_smaller_address(self):
        # The defining monotonicity property of the Z-order: a cell dominated
        # component-wise by another never receives a larger Z-address.
        for x in range(8):
            for y in range(8):
                for dx in range(8 - x):
                    for dy in range(8 - y):
                        if dx == 0 and dy == 0:
                            continue
                        low = interleave(x, y, bits=3)
                        high = interleave(x + dx, y + dy, bits=3)
                        assert low < high
