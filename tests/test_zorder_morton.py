"""Unit tests for Morton encoding and Z-order comparison."""

import pytest

from repro.zorder import interleave, deinterleave, morton_encode, morton_decode, z_less


class TestInterleave:
    def test_known_values(self):
        # Interleaving places x on even bits and y on odd bits.
        assert interleave(0, 0) == 0
        assert interleave(1, 0) == 1
        assert interleave(0, 1) == 2
        assert interleave(1, 1) == 3
        assert interleave(2, 0) == 4
        assert interleave(0, 2) == 8
        assert interleave(3, 3) == 15

    def test_roundtrip_exhaustive_small(self):
        for x in range(16):
            for y in range(16):
                assert deinterleave(interleave(x, y, bits=4), bits=4) == (x, y)

    def test_aliases(self):
        assert morton_encode(5, 9) == interleave(5, 9)
        assert morton_decode(interleave(5, 9)) == (5, 9)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            interleave(-1, 0)
        with pytest.raises(ValueError):
            deinterleave(-1)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            interleave(16, 0, bits=4)

    def test_large_coordinates_fit_default_bits(self):
        x = y = (1 << 21) - 1
        z = interleave(x, y)
        assert deinterleave(z) == (x, y)
        assert z < (1 << 42)


class TestZOrderGrid:
    def test_first_level_quadrant_order_is_z(self):
        # Within a 2x2 grid the Z-order is (0,0), (1,0), (0,1), (1,1).
        cells = [(0, 0), (1, 0), (0, 1), (1, 1)]
        addresses = [interleave(x, y, bits=1) for x, y in cells]
        assert addresses == sorted(addresses)

    def test_full_grid_visits_each_cell_once(self):
        addresses = {interleave(x, y, bits=3) for x in range(8) for y in range(8)}
        assert addresses == set(range(64))


class TestZLess:
    def test_matches_encoded_comparison_exhaustive(self):
        for ax in range(8):
            for ay in range(8):
                for bx in range(8):
                    for by in range(8):
                        expected = interleave(ax, ay, bits=3) < interleave(bx, by, bits=3)
                        assert z_less((ax, ay), (bx, by), bits=3) == expected

    def test_equal_cells_not_less(self):
        assert not z_less((5, 5), (5, 5))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            z_less((16, 0), (1, 1), bits=4)


class TestZOrderMonotonicity:
    def test_dominated_cell_has_smaller_address(self):
        # The defining monotonicity property of the Z-order: a cell dominated
        # component-wise by another never receives a larger Z-address.
        for x in range(8):
            for y in range(8):
                for dx in range(8 - x):
                    for dy in range(8 - y):
                        if dx == 0 and dy == 0:
                            continue
                        low = interleave(x, y, bits=3)
                        high = interleave(x + dx, y + dy, bits=3)
                        assert low < high


class TestVectorizedMorton:
    def test_interleave_array_matches_scalar(self):
        import numpy as np

        from repro.zorder import interleave_array

        rng = np.random.default_rng(21)
        xs = rng.integers(0, 1 << 21, size=500)
        ys = rng.integers(0, 1 << 21, size=500)
        encoded = interleave_array(xs, ys, bits=21)
        assert encoded.dtype == np.uint64
        for x, y, z in zip(xs.tolist(), ys.tolist(), encoded.tolist()):
            assert z == interleave(x, y, bits=21)

    def test_deinterleave_array_roundtrip(self):
        import numpy as np

        from repro.zorder import deinterleave_array, interleave_array

        rng = np.random.default_rng(22)
        xs = rng.integers(0, 1 << 32, size=300)
        ys = rng.integers(0, 1 << 32, size=300)
        back_x, back_y = deinterleave_array(interleave_array(xs, ys, bits=32), bits=32)
        assert (back_x == xs.astype("uint64")).all()
        assert (back_y == ys.astype("uint64")).all()

    def test_interleave_array_rejects_out_of_range(self):
        import numpy as np

        from repro.zorder import interleave_array

        with pytest.raises(ValueError):
            interleave_array(np.array([16]), np.array([0]), bits=4)
        with pytest.raises(ValueError):
            interleave_array(np.array([-1]), np.array([0]), bits=4)
        with pytest.raises(ValueError):
            interleave_array(np.array([0]), np.array([0]), bits=33)

    def test_interleave_array_shape_mismatch(self):
        import numpy as np

        from repro.zorder import interleave_array

        with pytest.raises(ValueError):
            interleave_array(np.array([1, 2]), np.array([1]), bits=8)

    def test_mapper_vectorized_addresses_match_scalar(self):
        import numpy as np

        from repro.geometry import Point, Rect
        from repro.zorder.mapper import ZOrderMapper

        rng = np.random.default_rng(23)
        points = [Point(float(x), float(y)) for x, y in rng.random((200, 2)) * 7.0]
        mapper = ZOrderMapper(Rect(0.0, 0.0, 7.0, 7.0), bits=12)
        vectorized = mapper.z_addresses(points)
        scalar = [mapper.z_address(p) for p in points]
        assert vectorized == scalar

    def test_deinterleave_array_masks_out_of_range_bits_like_scalar(self):
        import numpy as np

        from repro.zorder import deinterleave_array

        z = np.array([0b11110000], dtype=np.uint64)
        xs, ys = deinterleave_array(z, bits=2)
        assert (int(xs[0]), int(ys[0])) == deinterleave(0b11110000, bits=2)
