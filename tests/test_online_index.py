"""OnlineIndex: merged reads are byte-identical to an eager rebuild, and
the freeze → merge-aside → swap compaction preserves every acknowledged
write."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import Point, Rect
from repro.interfaces import SpatialIndex
from repro.online import OnlineIndex
from repro.zindex.base import ZIndex


def canonical_points(points):
    """Order-independent canonical bytes of a point multiset."""
    xs = np.fromiter((p.x for p in points), dtype=np.float64, count=len(points))
    ys = np.fromiter((p.y for p in points), dtype=np.float64, count=len(points))
    order = np.lexsort((ys, xs))
    return np.stack([xs[order], ys[order]]).tobytes()


def canonical_result(result):
    xs, ys = result.as_arrays()
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    order = np.lexsort((ys, xs))
    return np.stack([xs[order], ys[order]]).tobytes()


def assert_query_parity(online, reference_points, queries):
    """Every query answered by ``online`` matches a fresh eager rebuild."""
    eager = ZIndex(list(reference_points), leaf_capacity=32)
    for query in queries:
        assert canonical_result(online.range_query(query)) == canonical_result(
            eager.range_query(query)
        )
        assert online.range_count(query) == eager.range_count(query)
    online_batch = online.batch_range_query(queries)
    eager_batch = eager.batch_range_query(queries)
    for got, want in zip(online_batch, eager_batch):
        assert canonical_result(got) == canonical_result(want)
    assert online.batch_range_count(queries) == eager.batch_range_count(queries)


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(23)
    return [Point(float(x), float(y)) for x, y in rng.uniform(0.0, 1.0, (800, 2))]


@pytest.fixture(scope="module")
def queries():
    rng = np.random.default_rng(5)
    rects = []
    for _ in range(12):
        x1, x2 = sorted(rng.uniform(0.0, 1.0, size=2))
        y1, y2 = sorted(rng.uniform(0.0, 1.0, size=2))
        rects.append(Rect(float(x1), float(y1), float(x2), float(y2)))
    return rects


@pytest.fixture()
def online(points):
    return OnlineIndex(ZIndex(list(points), leaf_capacity=32))


class _BruteIndex(SpatialIndex):
    """A minimal non-Z-index base, for the family guard tests."""

    name = "Brute"

    def __init__(self, points):
        super().__init__()
        self._points = list(points)

    def _range_query_points(self, query):
        return [p for p in self._points if query.contains_point(p)]

    def point_query(self, point):
        return any(p.x == point.x and p.y == point.y for p in self._points)

    def __len__(self):
        return len(self._points)

    def extent(self):
        return Rect(0.0, 0.0, 1.0, 1.0)

    def size_bytes(self):
        return 0


class TestConstruction:
    def test_stacking_rejected(self, online):
        with pytest.raises(TypeError):
            OnlineIndex(online)

    def test_name_and_len(self, online, points):
        assert online.name == "Online[ZIndex]"
        assert len(online) == len(points)

    def test_counters_shared_with_base(self, online):
        assert online.counters is online.base.counters


class TestMergedReads:
    def test_quiet_index_passes_base_results_through(self, online, queries):
        base_result = online.base.range_query(queries[0])
        assert canonical_result(online.range_query(queries[0])) == canonical_result(
            base_result
        )

    def test_insert_visible_immediately(self, online, points, queries):
        extra = [Point(0.111, 0.222), Point(0.333, 0.444), Point(0.111, 0.222)]
        for p in extra:
            online.insert(p)
        assert len(online) == len(points) + 3
        assert_query_parity(online, points + extra, queries)

    def test_insert_rejects_non_finite(self, online):
        with pytest.raises(ValueError):
            online.insert(Point(float("nan"), 0.5))
        with pytest.raises(ValueError):
            online.insert(Point(0.5, float("inf")))

    def test_delete_cancels_delta_insert_first(self, online, points):
        target = Point(0.123, 0.456)
        online.insert(target)
        assert online.delete(target)
        assert len(online) == len(points)
        stats = online.delta_stats()
        assert stats["tombstones"] == 0  # cancelled in the buffer, no tombstone

    def test_delete_tombstones_base_occurrence(self, online, points, queries):
        victims = points[:5]
        for p in victims:
            assert online.delete(p)
        stats = online.delta_stats()
        assert stats["tombstones"] == 5
        assert len(online) == len(points) - 5
        assert_query_parity(online, points[5:], queries)

    def test_delete_absent_returns_false(self, online):
        before = len(online)
        assert not online.delete(Point(42.0, 42.0))
        assert len(online) == before

    def test_point_query_and_knn_merged(self, online, points):
        added = Point(0.505, 0.505)
        online.insert(added)
        assert online.point_query(added)
        online.delete(points[0])
        assert not online.point_query(points[0])
        got = online.knn(Point(0.5, 0.5), 7)
        eager = ZIndex([p for p in points[1:]] + [added], leaf_capacity=32)
        want = eager.knn(Point(0.5, 0.5), 7)
        assert canonical_result(got) == canonical_result(want)

    def test_radius_query_merged(self, online, points):
        online.insert(Point(0.61, 0.61))
        online.delete(points[1])
        got = online.radius_query(Point(0.6, 0.6), 0.15)
        eager = ZIndex(
            [p for i, p in enumerate(points) if i != 1] + [Point(0.61, 0.61)],
            leaf_capacity=32,
        )
        want = eager.radius_query(Point(0.6, 0.6), 0.15)
        assert canonical_result(got) == canonical_result(want)

    def test_generation_bumps_on_every_mutation(self, online):
        g0 = online.delta_stats()["generation"]
        online.insert(Point(0.5, 0.5))
        g1 = online.delta_stats()["generation"]
        online.delete(Point(0.5, 0.5))
        g2 = online.delta_stats()["generation"]
        assert g0 < g1 < g2


class TestCompaction:
    def test_compact_empty_is_noop(self, online):
        assert online.compact() is None
        assert online.compactions == 0

    def test_compact_preserves_results_and_drains_delta(self, online, points, queries):
        extra = [Point(0.21, 0.82), Point(0.83, 0.14), Point(0.21, 0.82)]
        for p in extra:
            online.insert(p)
        for p in points[:10]:
            online.delete(p)
        merged = points[10:] + extra
        before = canonical_points(online.all_points())
        stats = online.compact()
        assert stats is not None
        assert stats["merged_inserts"] == 3
        assert stats["merged_tombstones"] == 10
        assert stats["points"] == len(merged)
        assert online.compactions == 1
        assert canonical_points(online.all_points()) == before
        delta = online.delta_stats()
        assert delta["rows"] == 0 and not delta["compacting"]
        assert_query_parity(online, merged, queries)

    def test_compact_preserves_counters(self, online, queries):
        online.range_query(queries[0])
        filtered_before = online.counters.points_filtered
        assert filtered_before > 0
        online.insert(Point(0.77, 0.33))
        online.compact()
        assert online.counters.points_filtered >= filtered_before

    def test_out_of_extent_insert_grows_extent(self, online, points, queries):
        outside = [Point(1.5, 1.5), Point(-0.25, 0.5)]
        for p in outside:
            online.insert(p)
        extent = online.extent()
        assert extent.xmax >= 1.5 and extent.xmin <= -0.25
        online.compact()
        extent = online.extent()
        assert extent.xmax >= 1.5 and extent.xmin <= -0.25
        assert_query_parity(online, points + outside, queries)

    def test_compact_requires_zindex_family(self, points):
        online = OnlineIndex(_BruteIndex(points[:50]))
        online.insert(Point(0.5, 0.5))
        with pytest.raises(TypeError):
            online.compact()
        # the failed attempt must not have eaten the buffered write
        assert online.delta_stats()["live"] == 1

    def test_delta_age_tracks_oldest_write(self, online):
        assert online.delta_age_seconds() == 0.0
        online.insert(Point(0.4, 0.4))
        assert online.delta_age_seconds() >= 0.0
        online.compact()
        assert online.delta_age_seconds() == 0.0


class TestRebuild:
    def test_rebuild_swaps_base_from_merged_points(self, online, points, queries):
        online.insert(Point(0.99, 0.01))
        online.delete(points[0])
        merged = points[1:] + [Point(0.99, 0.01)]
        received = {}

        def builder(pts):
            received["count"] = len(pts)
            return ZIndex(pts, leaf_capacity=16)

        new_base = online.rebuild(builder)
        assert received["count"] == len(merged)
        assert online.base is new_base
        assert online.base.leaf_capacity == 16
        assert online.delta_stats()["rows"] == 0
        assert_query_parity(online, merged, queries)

    def test_rebuild_failure_rolls_back(self, online, points):
        online.insert(Point(0.88, 0.88))

        def exploding(pts):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            online.rebuild(exploding)
        assert len(online) == len(points) + 1
        assert online.point_query(Point(0.88, 0.88))


class TestIncrementalAdapt:
    def test_requires_zindex_family(self, points):
        online = OnlineIndex(_BruteIndex(points[:50]))
        with pytest.raises(TypeError):
            online.incremental_adapt([Rect(0.0, 0.0, 0.1, 0.1)])

    def test_noop_when_nothing_selected_keeps_base(self, online):
        base = online.base
        # an empty window attributes no cost, so nothing regresses
        report = online.incremental_adapt([])
        assert report.selected == 0
        assert online.base is base

    def test_rederive_preserves_results(self, online, points, queries):
        rng = np.random.default_rng(9)
        hot = [
            Rect(float(x), float(y), float(x) + 0.04, float(y) + 0.04)
            for x, y in rng.uniform(0.05, 0.15, (150, 2))
        ]
        online.insert(Point(0.07, 0.07))
        report = online.incremental_adapt(hot, min_leaf_capacity=4)
        assert report.leaves_total > 0
        assert 0.0 <= report.scope <= 1.0
        assert_query_parity(online, points + [Point(0.07, 0.07)], queries)
