"""Tests for the benchmark suite's shared helpers (benchmarks/common.py).

The benchmark modules are the executable record of the paper's tables and
figures, so their shared plumbing (index name mapping, cached workloads,
report emission) deserves the same coverage as the library itself.
"""

import pytest

from benchmarks import common
from repro.api import INDEX_NAMES
from repro.workloads import REGION_NAMES


class TestConfiguration:
    def test_regions_match_library(self):
        assert set(common.REGIONS) == set(REGION_NAMES)

    def test_selectivities_match_paper(self):
        assert common.SELECTIVITIES == (0.0016, 0.0064, 0.0256, 0.1024)
        assert common.MID_SELECTIVITY in common.SELECTIVITIES

    def test_main_indexes_are_the_papers_six(self):
        assert set(common.MAIN_INDEXES) == {"Base", "CUR", "Flood", "QUASII", "STR", "WaZI"}

    def test_index_keys_map_to_buildable_names(self):
        for display_name, key in common.INDEX_KEYS.items():
            assert key in INDEX_NAMES, f"{display_name} maps to unknown index {key!r}"

    def test_scaling_sizes_increasing(self):
        sizes = common.SCALING_SIZES
        assert all(a < b for a, b in zip(sizes, sizes[1:]))


class TestCachedGenerators:
    def test_dataset_cached_and_sized(self):
        first = common.dataset("newyork", 500)
        second = common.dataset("newyork", 500)
        assert first is second
        assert len(first) == 500

    def test_range_workload_cached(self):
        first = common.range_workload("newyork", 0.0256, 20)
        second = common.range_workload("newyork", 0.0256, 20)
        assert first is second
        assert len(first) == 20

    def test_point_workload_is_tuple(self):
        queries = common.point_workload("newyork", 500)
        assert isinstance(queries, tuple)
        assert len(queries) == common.DEFAULT_NUM_POINT_QUERIES


class TestMeasurement:
    def test_measure_index_small(self):
        points = common.dataset("newyork", 500)
        workload = common.range_workload("newyork", 0.0256, 20)
        result = common.measure_index("Base", points, workload.queries,
                                      point_queries=points[:5], leaf_capacity=32)
        assert result.index_name == "Base"
        assert result.num_points == 500
        assert result.build_seconds > 0
        assert result.range_stats is not None
        assert result.point_stats is not None

    def test_micros(self):
        assert common.micros(0.001) == pytest.approx(1000.0)


class TestWarmQueryCaches:
    """warm_query_caches must leave an index with no first-query work left."""

    def _fresh_index(self):
        points = common.dataset("newyork", 800)
        workload = common.range_workload("newyork", 0.0256, 10)
        index = common.build_named_index("WaZI", points, workload.queries,
                                         leaf_capacity=32)
        return index, list(workload.queries)

    def test_primes_flat_scan_cache(self):
        index, rects = self._fresh_index()
        assert index._flat_x is None  # freshly built: lazy caches empty
        common.warm_query_caches(index, rects)
        assert index._flat_x is not None
        assert index._flat_starts is not None

    def test_primes_reusable_mask_buffers(self):
        index, rects = self._fresh_index()
        common.warm_query_caches(index, rects)
        assert index._mask_a is not None

    def test_warming_does_not_change_results(self):
        index, rects = self._fresh_index()
        cold = [r.count() for r in index.batch_range_query(rects)]
        common.warm_query_caches(index, rects)
        warm = [r.count() for r in index.batch_range_query(rects)]
        assert cold == warm

    def test_accepts_tuple_of_rects(self):
        index, rects = self._fresh_index()
        common.warm_query_caches(index, tuple(rects))
        assert index._flat_x is not None


class TestWorkerSeeds:
    def test_distinct_per_shard_and_deterministic(self):
        seeds = [common.worker_seed(common.DEFAULT_SEED, shard) for shard in range(16)]
        assert len(set(seeds)) == 16
        assert seeds == [common.worker_seed(common.DEFAULT_SEED, s) for s in range(16)]

    def test_distinct_across_base_seeds(self):
        # Nearby base seeds must not collide with other shards' streams.
        seeds = {
            common.worker_seed(base, shard)
            for base in range(common.DEFAULT_SEED, common.DEFAULT_SEED + 4)
            for shard in range(8)
        }
        assert len(seeds) == 4 * 8

    def test_negative_shard_rejected(self):
        with pytest.raises(ValueError):
            common.worker_seed(common.DEFAULT_SEED, -1)


class TestReportEmission:
    def test_tables_appended_to_report(self, tmp_path, monkeypatch):
        report = tmp_path / "report.txt"
        monkeypatch.setattr(common, "REPORT_PATH", str(report))
        common.print_section("demo section")
        common.print_results_table("demo table", ["a", "b"], [[1, 2.0]])
        content = report.read_text()
        assert "demo section" in content
        assert "demo table" in content
        assert "2.000" in content
