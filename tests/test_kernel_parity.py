"""Differential equivalence harness for the compiled kernel tier.

The kernel tier (``repro.kernels``) is only allowed to exist because it is
*provably* a refactor: whatever backend is active, every query must return
byte-identical results — same matches, same ordering, same dtypes, same
cost counters — as the pure-NumPy reference, which in turn must match the
scalar decomposition (brute force over boxed points) the test suite has
always held the indexes to.

Three layers of checking, each parametrized over both ``REPRO_KERNELS``
modes (``numba`` resolves to the reference when Numba is not installed,
so the harness is meaningful on any machine and strictest on one with
Numba):

1. kernel-level: every kernel function against the reference backend and
   against a scalar re-implementation, under Hypothesis-generated
   columns, spans and windows (including empty spans and tie-heavy
   duplicate coordinates);
2. index-level: all 12 index types answering range/kNN/radius workloads,
   compared against brute force and across modes (results *and*
   counters);
3. lifecycle: parity must survive inserts, deletes and duplicate points.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import kernels
from repro.engine import INDEX_NAMES, build_index
from repro.geometry import Point, Rect
from repro.interfaces import brute_force_knn, brute_force_range
from repro.kernels import fallback
from repro.workloads import generate_dataset, generate_range_workload

KERNEL_MODES = ("numpy", "numba")

#: Indexes with mutation support (for the post-mutation parity tests).
MUTABLE_INDEXES = ("base", "wazi")


# ---------------------------------------------------------------------------
# Byte-identical comparison helpers
# ---------------------------------------------------------------------------


def assert_bytes_equal(got, want, context=""):
    """Byte-identical equality: dtype, shape and raw buffer for arrays."""
    if isinstance(want, tuple):
        assert isinstance(got, tuple) and len(got) == len(want), context
        for i, (g, w) in enumerate(zip(got, want)):
            assert_bytes_equal(g, w, f"{context}[{i}]")
        return
    if isinstance(want, np.ndarray):
        assert isinstance(got, np.ndarray), context
        assert got.dtype == want.dtype, f"{context}: dtype {got.dtype} != {want.dtype}"
        assert got.shape == want.shape, f"{context}: shape {got.shape} != {want.shape}"
        assert got.tobytes() == want.tobytes(), f"{context}: buffers differ"
        return
    assert type(got) is type(want) and got == want, context


def result_bytes(result):
    xs, ys = result.as_arrays()
    return xs.tobytes() + ys.tobytes()


def sorted_coords(points):
    return sorted((p.x, p.y) for p in points)


# ---------------------------------------------------------------------------
# Scalar decompositions of the kernels (the per-row oracle)
# ---------------------------------------------------------------------------


def scalar_range_select(flat_x, flat_y, lo, hi, xmin, ymin, xmax, ymax):
    return np.array(
        [
            row
            for row in range(lo, hi)
            if xmin <= flat_x[row] <= xmax and ymin <= flat_y[row] <= ymax
        ],
        dtype=np.int64,
    )


# ---------------------------------------------------------------------------
# Hypothesis strategies: columns, spans, windows
# ---------------------------------------------------------------------------

# Tie-heavy by construction: coordinates drawn from a small grid so
# duplicates and boundary-exact hits are the common case, not the corner.
grid_coord = st.integers(min_value=0, max_value=7).map(lambda v: v / 4.0)


@st.composite
def columns_and_window(draw):
    n = draw(st.integers(min_value=0, max_value=60))
    flat_x = np.array([draw(grid_coord) for _ in range(n)], dtype=np.float64)
    flat_y = np.array([draw(grid_coord) for _ in range(n)], dtype=np.float64)
    lo = draw(st.integers(min_value=0, max_value=n))
    hi = draw(st.integers(min_value=lo, max_value=n))
    xa, xb = sorted((draw(grid_coord), draw(grid_coord)))
    ya, yb = sorted((draw(grid_coord), draw(grid_coord)))
    return flat_x, flat_y, lo, hi, (xa, ya, xb, yb)


@st.composite
def columns_and_batch(draw):
    n = draw(st.integers(min_value=0, max_value=40))
    flat_x = np.array([draw(grid_coord) for _ in range(n)], dtype=np.float64)
    flat_y = np.array([draw(grid_coord) for _ in range(n)], dtype=np.float64)
    num_windows = draw(st.integers(min_value=0, max_value=5))
    los, his, bounds = [], [], []
    for _ in range(num_windows):
        lo = draw(st.integers(min_value=0, max_value=n))
        hi = draw(st.integers(min_value=lo, max_value=n))
        xa, xb = sorted((draw(grid_coord), draw(grid_coord)))
        ya, yb = sorted((draw(grid_coord), draw(grid_coord)))
        los.append(lo)
        his.append(hi)
        bounds.append((xa, ya, xb, yb))
    return (
        flat_x,
        flat_y,
        np.array(los, dtype=np.int64),
        np.array(his, dtype=np.int64),
        np.array(bounds, dtype=np.float64).reshape(num_windows, 4),
    )


@pytest.fixture(params=KERNEL_MODES)
def kernel_mode(request):
    with kernels.use(request.param) as backend:
        yield request.param, backend


# ---------------------------------------------------------------------------
# 1. Kernel-level parity (backend vs reference vs scalar oracle)
# ---------------------------------------------------------------------------


class TestKernelFunctionParity:
    @settings(max_examples=60, deadline=None)
    @given(data=columns_and_window())
    def test_range_select_matches_reference_and_scalar(self, data):
        flat_x, flat_y, lo, hi, (xmin, ymin, xmax, ymax) = data
        want = fallback.range_select(flat_x, flat_y, lo, hi, xmin, ymin, xmax, ymax)
        oracle = scalar_range_select(flat_x, flat_y, lo, hi, xmin, ymin, xmax, ymax)
        assert_bytes_equal(want, oracle, "reference vs scalar oracle")
        for mode in KERNEL_MODES:
            with kernels.use(mode) as backend:
                got = backend.range_select(
                    flat_x, flat_y, lo, hi, xmin, ymin, xmax, ymax
                )
            assert_bytes_equal(got, want, f"range_select[{mode}] vs reference")

    @settings(max_examples=60, deadline=None)
    @given(data=columns_and_window())
    def test_range_count_matches_reference_and_scalar(self, data):
        flat_x, flat_y, lo, hi, window = data
        want = fallback.range_count(flat_x, flat_y, lo, hi, *window)
        assert want == scalar_range_select(flat_x, flat_y, lo, hi, *window).size
        for mode in KERNEL_MODES:
            with kernels.use(mode) as backend:
                got = backend.range_count(flat_x, flat_y, lo, hi, *window)
            assert got == want and isinstance(got, int)

    @settings(max_examples=40, deadline=None)
    @given(data=columns_and_batch())
    def test_batch_kernels_match_reference(self, data):
        flat_x, flat_y, los, his, bounds = data
        want_counts = fallback.batch_range_count(flat_x, flat_y, los, his, bounds)
        want_sel = fallback.batch_range_select(flat_x, flat_y, los, his, bounds)
        for mode in KERNEL_MODES:
            with kernels.use(mode) as backend:
                got_counts = backend.batch_range_count(flat_x, flat_y, los, his, bounds)
                got_sel = backend.batch_range_select(flat_x, flat_y, los, his, bounds)
            assert_bytes_equal(got_counts, want_counts, f"batch_range_count[{mode}]")
            assert_bytes_equal(got_sel, want_sel, f"batch_range_select[{mode}]")
        # The two batch kernels must agree with each other too.
        sel, offsets = want_sel
        assert_bytes_equal(np.diff(offsets), want_counts, "offsets vs counts")
        # And with the scalar oracle, window by window.
        for i in range(len(los)):
            part = sel[offsets[i]:offsets[i + 1]]
            oracle = scalar_range_select(
                flat_x, flat_y, int(los[i]), int(his[i]), *bounds[i]
            )
            assert_bytes_equal(part, oracle, f"batch window {i}")

    @settings(max_examples=40, deadline=None)
    @given(data=columns_and_window(), cx=grid_coord, cy=grid_coord)
    def test_knn_candidates_matches_reference(self, data, cx, cy):
        flat_x, flat_y, lo, hi, window = data
        want = fallback.knn_candidates(flat_x, flat_y, lo, hi, *window, cx, cy)
        for mode in KERNEL_MODES:
            with kernels.use(mode) as backend:
                got = backend.knn_candidates(flat_x, flat_y, lo, hi, *window, cx, cy)
            assert_bytes_equal(got, want, f"knn_candidates[{mode}]")
        sel, d2 = want
        for row, dist in zip(sel, d2):
            dx, dy = flat_x[row] - cx, flat_y[row] - cy
            assert dist == dx * dx + dy * dy

    @settings(max_examples=40, deadline=None)
    @given(data=columns_and_window(), cx=grid_coord, cy=grid_coord,
           r2=st.sampled_from([0.0, 0.0625, 0.25, 1.0, 4.0]))
    def test_radius_select_matches_reference(self, data, cx, cy, r2):
        flat_x, flat_y, lo, hi, window = data
        want = fallback.radius_select(flat_x, flat_y, lo, hi, *window, cx, cy, r2)
        for mode in KERNEL_MODES:
            with kernels.use(mode) as backend:
                got = backend.radius_select(
                    flat_x, flat_y, lo, hi, *window, cx, cy, r2
                )
            assert_bytes_equal(got, want, f"radius_select[{mode}]")
        window_matches, sel = want
        oracle = scalar_range_select(flat_x, flat_y, lo, hi, *window)
        assert window_matches == oracle.size
        keep = [
            row for row in oracle
            if (flat_x[row] - cx) ** 2 + (flat_y[row] - cy) ** 2 <= r2
        ]
        assert_bytes_equal(sel, np.array(keep, dtype=np.int64), "radius refine")

    def test_empty_span_returns_empty_int64(self, kernel_mode):
        _, backend = kernel_mode
        x = np.array([0.5], dtype=np.float64)
        y = np.array([0.5], dtype=np.float64)
        sel = backend.range_select(x, y, 1, 1, 0.0, 0.0, 1.0, 1.0)
        assert sel.dtype == np.int64 and sel.size == 0
        assert backend.range_count(x, y, 0, 0, 0.0, 0.0, 1.0, 1.0) == 0

    def test_reusable_buffers_do_not_change_results(self, kernel_mode):
        _, backend = kernel_mode
        rng = np.random.default_rng(7)
        x = rng.random(256)
        y = rng.random(256)
        mask = np.empty(256, dtype=bool)
        scratch = np.empty(256, dtype=bool)
        plain = backend.range_select(x, y, 0, 256, 0.2, 0.2, 0.8, 0.8)
        buffered = backend.range_select(
            x, y, 0, 256, 0.2, 0.2, 0.8, 0.8, mask, scratch
        )
        assert_bytes_equal(buffered, plain, "buffered vs allocating")


# ---------------------------------------------------------------------------
# 2. Index-level parity: all 12 indexes, both modes, results + counters
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def parity_scenario():
    data = generate_dataset("newyork", 700, seed=11)
    workload = generate_range_workload(
        "newyork", 12, selectivity_percent=0.0256, seed=11
    )
    return data, list(workload.queries)


@pytest.fixture(scope="module")
def parity_indexes(parity_scenario):
    data, rects = parity_scenario
    return {
        name: build_index(name, data, rects, leaf_capacity=32, seed=5)
        for name in INDEX_NAMES
    }


def _run_workload(index, rects, center, k):
    """One fixed mixed workload; returns (bytes-per-result, counters)."""
    index.reset_counters()
    payload = [result_bytes(r) for r in index.batch_range_query(rects)]
    payload.append(bytes(np.array(index.batch_range_count(rects), dtype=np.int64)))
    payload.append(result_bytes(index.knn(center, k)))
    payload.append(result_bytes(index.radius_query(center, 0.1)))
    return payload, index.counters.snapshot()


class TestIndexParityAcrossModes:
    @pytest.mark.parametrize("name", INDEX_NAMES)
    def test_results_and_counters_identical_across_modes(
        self, name, parity_scenario, parity_indexes
    ):
        data, rects = parity_scenario
        index = parity_indexes[name]
        center = Point(data[len(data) // 2].x, data[len(data) // 2].y)
        runs = {}
        for mode in KERNEL_MODES:
            with kernels.use(mode):
                runs[mode] = _run_workload(index, rects, center, 9)
        reference_payload, reference_counters = runs["numpy"]
        for mode in KERNEL_MODES:
            payload, counters = runs[mode]
            assert payload == reference_payload, f"{name}: {mode} results differ"
            assert counters == reference_counters, f"{name}: {mode} counters differ"

    @pytest.mark.parametrize("name", INDEX_NAMES)
    def test_matches_scalar_decomposition(self, name, parity_scenario, parity_indexes, kernel_mode):
        data, rects = parity_scenario
        index = parity_indexes[name]
        for rect in rects[:6]:
            assert sorted_coords(index.range_query(rect)) == sorted_coords(
                brute_force_range(data, rect)
            )
        center = Point(data[0].x, data[0].y)
        got = [(p.x, p.y) for p in index.knn(center, 7)]
        want = [(p.x, p.y) for p in brute_force_knn(data, center, 7)]
        assert [center.distance_squared(Point(*g)) for g in got] == [
            center.distance_squared(Point(*w)) for w in want
        ]


class TestTieHeavyParity:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_duplicate_grid_knn_identical_across_modes(self, seed):
        rng = np.random.default_rng(seed)
        pts = [
            Point(x / 5.0, y / 5.0)
            for x, y in rng.integers(0, 5, size=(80, 2))
        ]
        index = build_index("wazi", pts, leaf_capacity=8, seed=3)
        center = Point(0.4, 0.4)
        outputs = []
        for mode in KERNEL_MODES:
            with kernels.use(mode):
                outputs.append(
                    (
                        result_bytes(index.knn(center, 10)),
                        result_bytes(index.radius_query(center, 0.3)),
                    )
                )
        assert outputs[0] == outputs[1]


class TestPostMutationParity:
    @pytest.mark.parametrize("name", MUTABLE_INDEXES)
    def test_parity_survives_inserts_and_deletes(self, name):
        data = generate_dataset("iberia", 300, seed=4)
        index = build_index(name, data, leaf_capacity=16, seed=2)
        live = list(data)
        extra = generate_dataset("iberia", 40, seed=9)
        for point in extra[:20]:
            index.insert(point)
            live.append(point)
        for point in list(live[:10]):
            assert index.delete(point)
            live.remove(point)
        rect = Rect(
            min(p.x for p in live), min(p.y for p in live),
            float(np.median([p.x for p in live])),
            float(np.median([p.y for p in live])),
        )
        payloads = []
        for mode in KERNEL_MODES:
            with kernels.use(mode):
                result = index.range_query(rect)
                assert sorted_coords(result) == sorted_coords(
                    brute_force_range(live, rect)
                )
                payloads.append(result_bytes(result))
        assert payloads[0] == payloads[1]


# ---------------------------------------------------------------------------
# 3. Backend selection machinery
# ---------------------------------------------------------------------------


class TestBackendSelection:
    def test_numpy_mode_is_the_reference(self):
        backend, resolved = kernels.resolve_backend("numpy")
        assert backend is kernels.reference_kernels()
        assert resolved == "numpy"

    def test_auto_and_unset_resolve_consistently(self):
        expected = "numba" if kernels.numba_available() else "numpy"
        for request_name in (None, "", "auto", "AUTO", " auto "):
            _, resolved = kernels.resolve_backend(request_name)
            assert resolved == expected

    def test_numba_request_degrades_gracefully_when_absent(self):
        backend, resolved = kernels.resolve_backend("numba")
        if kernels.numba_available():
            assert resolved == "numba" and backend is not kernels.reference_kernels()
        else:
            assert resolved == "numpy" and backend is kernels.reference_kernels()

    def test_bogus_tier_name_raises(self):
        with pytest.raises(ValueError, match="REPRO_KERNELS"):
            kernels.resolve_backend("cuda")

    def test_use_restores_previous_backend(self):
        before = kernels.get_kernels()
        with kernels.use("numpy") as backend:
            assert kernels.get_kernels() is backend
        assert kernels.get_kernels() is before

    def test_use_restores_after_exception(self):
        before = kernels.get_kernels()
        with pytest.raises(RuntimeError):
            with kernels.use("numpy"):
                raise RuntimeError("boom")
        assert kernels.get_kernels() is before

    def test_set_kernels_rejects_incomplete_backends(self):
        class Partial:
            def range_count(self, *a):
                return 0

        with pytest.raises(TypeError, match="lacks"):
            kernels.set_kernels(Partial())
        # A rejected install must leave the active backend untouched.
        assert all(
            callable(getattr(kernels.get_kernels(), k)) for k in kernels.KERNEL_NAMES
        )

    def test_backend_name_reports_wrapped_backend(self):
        class Wrapper:
            BACKEND = "numpy"

        for kernel in kernels.KERNEL_NAMES:
            setattr(Wrapper, kernel, staticmethod(getattr(fallback, kernel)))
        previous = kernels.set_kernels(Wrapper())
        try:
            assert kernels.backend_name() == "numpy"
        finally:
            kernels.set_kernels(previous)

    def test_every_kernel_name_exists_on_reference(self):
        for kernel in kernels.KERNEL_NAMES:
            assert callable(getattr(fallback, kernel))
