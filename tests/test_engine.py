"""SpatialEngine facade: plan execution, lifecycle, and the api shims.

Covers the redesigned public surface:

* ``execute`` / ``execute_many`` dispatch for every plan type, including
  ``count_only`` and ``limit`` execution options,
* zero ``Point`` boxing on the Z-index family's count-only and
  array-consuming paths (a constructor spy counts every boxing),
* build/load/open/save lifecycle (structural and rebuild snapshots),
* the engine-based ``compare_indexes`` path forwarding per-index
  constructor kwargs (regression: they used to be dropped silently),
* uniform ``seed=None`` handling in ``build_index`` (regression: flood
  coerced it to 0),
* ``workload_summary`` covering kNN/join/snapshot measurements.
"""

from __future__ import annotations

import pytest

from repro.api import (
    build_index,
    compare_indexes,
    run_knn_workload,
    run_join_workload,
    run_range_workload,
    run_snapshot_roundtrip,
    workload_summary,
)
from repro.engine import SpatialEngine, as_engine
from repro.geometry import Point, Rect
from repro.interfaces import brute_force_range
from repro.joins import box_join, knn_join, radius_join
from repro.query import JoinQuery, KnnQuery, PointQuery, RadiusQuery, RangeQuery
from repro.results import ResultSet
from repro.zindex import ZIndex

ZINDEX_FAMILY = ("wazi", "wazi-sk", "base", "base+sk")


@pytest.fixture()
def engine(uniform_points, sample_queries):
    return SpatialEngine.build(
        "wazi", uniform_points, sample_queries, leaf_capacity=16, seed=7
    )


class TestPlanValidation:
    def test_range_query_needs_rect(self):
        with pytest.raises(TypeError):
            RangeQuery((0, 0, 1, 1))

    def test_point_query_rejects_nan(self):
        with pytest.raises(ValueError):
            PointQuery(Point(float("nan"), 0.0))

    def test_knn_query_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            KnnQuery(Point(0, 0), -1)
        with pytest.raises(ValueError):
            KnnQuery(Point(float("inf"), 0.0), 3)
        with pytest.raises(ValueError):
            KnnQuery(Point(0, 0), 3, initial_radius=-0.5)

    def test_radius_query_rejects_bad_radius(self):
        with pytest.raises(ValueError):
            RadiusQuery(Point(0, 0), float("nan"))
        with pytest.raises(ValueError):
            RadiusQuery(Point(0, 0), -1.0)

    def test_join_query_validates_per_kind(self):
        probe = (Point(0.0, 0.0),)
        with pytest.raises(ValueError):
            JoinQuery(probe, "box")
        with pytest.raises(ValueError):
            JoinQuery(probe, "radius")
        with pytest.raises(ValueError):
            JoinQuery(probe, "knn")
        with pytest.raises(ValueError):
            JoinQuery(probe, "hash", half_width=0.1)
        with pytest.raises(ValueError):
            JoinQuery(probe, "box", half_width=-1.0)


class TestExecuteDispatch:
    def test_range_plan(self, engine, uniform_points, sample_queries):
        query = sample_queries[0]
        result = engine.execute(RangeQuery(query))
        assert isinstance(result, ResultSet)
        assert sorted(result.points(), key=Point.as_tuple) == sorted(
            brute_force_range(uniform_points, query), key=Point.as_tuple
        )
        assert engine.execute(RangeQuery(query), count_only=True) == result.count()

    def test_point_plan(self, engine, uniform_points):
        assert engine.execute(PointQuery(uniform_points[3])) is True
        assert engine.execute(PointQuery(Point(-5.0, -5.0))) is False
        assert engine.execute(PointQuery(uniform_points[3]), count_only=True) == 1
        assert engine.execute(PointQuery(Point(-5.0, -5.0)), count_only=True) == 0

    def test_knn_plan(self, engine, uniform_points):
        plan = KnnQuery(uniform_points[0], 5)
        result = engine.execute(plan)
        assert isinstance(result, ResultSet)
        assert result.count() == 5
        assert result == engine.index.knn(uniform_points[0], 5)
        assert engine.execute(plan, count_only=True) == 5

    def test_radius_plan(self, engine, uniform_points):
        plan = RadiusQuery(uniform_points[0], 0.1)
        result = engine.execute(plan)
        assert result == engine.index.radius_query(uniform_points[0], 0.1)
        assert engine.execute(plan, count_only=True) == result.count()

    def test_join_plans(self, engine, uniform_points):
        probes = tuple(uniform_points[:8])
        box = engine.execute(JoinQuery(probes, "box", half_width=0.05))
        assert box == box_join(engine.index, probes, 0.05)
        radius = engine.execute(JoinQuery(probes, "radius", radius=0.05))
        assert radius == radius_join(engine.index, probes, 0.05)
        knn = engine.execute(JoinQuery(probes, "knn", k=3))
        expected = knn_join(engine.index, probes, 3)
        assert [(p, list(ns)) for p, ns in knn] == [
            (p, list(ns)) for p, ns in expected
        ]

    def test_join_count_only_matches_pair_count(self, engine, uniform_points):
        probes = tuple(uniform_points[:8])
        for plan in (
            JoinQuery(probes, "box", half_width=0.05),
            JoinQuery(probes, "radius", radius=0.05),
        ):
            pairs = engine.execute(plan)
            assert engine.execute(plan, count_only=True) == len(pairs)
        knn_plan = JoinQuery(probes, "knn", k=3)
        entries = engine.execute(knn_plan)
        assert engine.execute(knn_plan, count_only=True) == sum(
            ns.count() for _, ns in entries
        )

    def test_limit_truncates_joins_of_every_kind(self, engine, uniform_points):
        probes = tuple(uniform_points[:8])
        box = engine.execute(JoinQuery(probes, "box", half_width=0.05), limit=4)
        assert len(box) == 4
        radius = engine.execute(JoinQuery(probes, "radius", radius=0.05), limit=4)
        assert len(radius) == 4
        knn = engine.execute(JoinQuery(probes, "knn", k=3), limit=4)
        assert len(knn) == 4  # per-probe entries are the kNN join's rows

    def test_limit_truncates_in_result_order(self, engine, sample_queries):
        plan = RangeQuery(sample_queries[2])
        full = engine.execute(plan)
        limited = engine.execute(plan, limit=3)
        assert limited == full.points()[:3]
        assert engine.execute(plan, count_only=True, limit=3) == min(3, full.count())
        with pytest.raises(ValueError):
            engine.execute(plan, limit=-1)

    def test_unknown_plan_type_raises(self, engine):
        with pytest.raises(TypeError):
            engine.execute(Rect(0, 0, 1, 1))


class TestExecuteMany:
    def test_homogeneous_range_plans_match_batch(self, engine, sample_queries):
        plans = [RangeQuery(q) for q in sample_queries[:10]]
        results = engine.execute_many(plans)
        assert results == engine.index.batch_range_query(sample_queries[:10])
        counts = engine.execute_many(plans, count_only=True)
        assert counts == [r.count() for r in results]

    def test_homogeneous_knn_plans_match_batch(self, engine, uniform_points):
        centers = uniform_points[:6]
        plans = [KnnQuery(c, 4) for c in centers]
        results = engine.execute_many(plans)
        assert results == engine.index.batch_knn(centers, 4)

    def test_homogeneous_radius_plans_match_batch(self, engine, uniform_points):
        centers = uniform_points[:6]
        plans = [RadiusQuery(c, 0.08) for c in centers]
        results = engine.execute_many(plans)
        assert results == engine.index.batch_radius_query(centers, 0.08)

    def test_mixed_plans_fall_back_per_plan(self, engine, uniform_points, sample_queries):
        plans = [
            RangeQuery(sample_queries[0]),
            PointQuery(uniform_points[0]),
            KnnQuery(uniform_points[1], 2),
        ]
        results = engine.execute_many(plans)
        assert results[0] == engine.execute(plans[0])
        assert results[1] is True
        assert results[2] == engine.execute(plans[2])

    def test_heterogeneous_knn_parameters_fall_back(self, engine, uniform_points):
        plans = [KnnQuery(uniform_points[0], 2), KnnQuery(uniform_points[1], 5)]
        results = engine.execute_many(plans)
        assert [r.count() for r in results] == [2, 5]

    def test_empty_workload(self, engine):
        assert engine.execute_many([]) == []


class TestZeroBoxing:
    """Count-only and as_arrays paths never construct a Point (spy test)."""

    @pytest.fixture()
    def point_spy(self, monkeypatch):
        created = []
        original = Point.__init__

        def spying_init(self, *args, **kwargs):
            created.append(1)
            original(self, *args, **kwargs)

        monkeypatch.setattr(Point, "__init__", spying_init)
        return created

    @pytest.mark.parametrize("name", ZINDEX_FAMILY)
    def test_columnar_paths_box_nothing(self, name, uniform_points, sample_queries,
                                        point_spy):
        engine = SpatialEngine.build(
            name, uniform_points, sample_queries, leaf_capacity=16, seed=7
        )
        center = uniform_points[0]
        point_spy.clear()

        plans = [RangeQuery(q) for q in sample_queries[:10]]
        counts = engine.execute_many(plans, count_only=True)
        assert sum(counts) > 0
        for result in engine.execute_many(plans):
            xs, ys = result.as_arrays()
            assert xs.shape == ys.shape
        knn = engine.execute(KnnQuery(center, 8))
        assert knn.count() == 8
        knn.as_arrays()
        assert engine.execute(KnnQuery(center, 8), count_only=True) == 8
        radius = engine.execute(RadiusQuery(center, 0.1))
        radius.as_arrays()
        assert engine.execute(
            JoinQuery(tuple(uniform_points[:5]), "box", half_width=0.05),
            count_only=True,
        ) >= 0

        assert point_spy == []  # not a single Point was boxed

    def test_boxed_consumption_still_works_after_spy(self, uniform_points,
                                                     sample_queries, point_spy):
        engine = SpatialEngine.build(
            "base", uniform_points, sample_queries[:4], leaf_capacity=16
        )
        point_spy.clear()
        result = engine.execute(RangeQuery(sample_queries[0]))
        result.points()
        assert len(point_spy) > 0  # explicit boxing does create points


class TestLifecycle:
    def test_build_wraps_named_index(self, uniform_points):
        engine = SpatialEngine.build("base", uniform_points, leaf_capacity=16)
        assert isinstance(engine.index, ZIndex)
        assert len(engine) == len(uniform_points)
        assert engine.size_bytes() > 0
        assert "Base" in repr(engine)

    def test_wrapping_requires_spatial_index(self):
        with pytest.raises(TypeError):
            SpatialEngine(object())

    def test_as_engine_idempotent(self, uniform_points):
        index = build_index("base", uniform_points)
        engine = as_engine(index)
        assert engine.index is index
        assert as_engine(engine) is engine

    def test_save_load_structural(self, engine, sample_queries, tmp_path):
        path = tmp_path / "engine.snapshot"
        engine.save(path)
        served = SpatialEngine.load(path)
        query = sample_queries[0]
        assert served.execute(RangeQuery(query)) == engine.execute(RangeQuery(query))

    def test_save_rebuild_recipe_and_load(self, uniform_points, sample_queries, tmp_path):
        engine = SpatialEngine.build(
            "str", uniform_points, sample_queries, leaf_capacity=16
        )
        path = tmp_path / "str.snapshot"
        engine.save(path)
        served = SpatialEngine.load(path)
        query = sample_queries[0]
        assert served.execute(RangeQuery(query)) == engine.execute(RangeQuery(query))

    def test_save_foreign_non_zindex_raises(self, uniform_points):
        index = build_index("str", uniform_points)
        with pytest.raises(TypeError):
            SpatialEngine(index).save("nowhere.snapshot")

    def test_open_builds_then_serves(self, uniform_points, sample_queries, tmp_path):
        path = tmp_path / "open.snapshot"
        first = SpatialEngine.open(
            "base", uniform_points, snapshot_path=path, leaf_capacity=16
        )
        assert path.exists()
        second = SpatialEngine.open(
            "base", uniform_points, snapshot_path=path, leaf_capacity=16
        )
        query = sample_queries[0]
        assert first.execute(RangeQuery(query)) == second.execute(RangeQuery(query))

    def test_updates_through_engine(self, uniform_points):
        engine = SpatialEngine.build("base", uniform_points, leaf_capacity=16)
        newcomer = Point(0.123, 0.456)
        engine.insert(newcomer)
        assert engine.execute(PointQuery(newcomer))
        assert engine.delete(newcomer)
        assert not engine.execute(PointQuery(newcomer))


class TestComparisonKwargsForwarding:
    """Regression: compare_indexes used to drop constructor **kwargs."""

    def test_shared_and_per_index_kwargs_reach_factories(self, uniform_points,
                                                         sample_queries, monkeypatch):
        seen = {}
        original = SpatialEngine.build.__func__

        def spying_build(cls, name, *args, **kwargs):
            seen[name] = kwargs
            return original(cls, name, *args, **kwargs)

        monkeypatch.setattr(SpatialEngine, "build", classmethod(spying_build))
        compare_indexes(
            ["base", "wazi"], uniform_points, sample_queries[:4],
            leaf_capacity=16, seed=3,
            max_depth=12,
            index_kwargs={"wazi": {"num_candidates": 4, "max_depth": 9}},
        )
        assert seen["base"]["max_depth"] == 12
        assert seen["wazi"]["max_depth"] == 9  # per-index wins over shared
        assert seen["wazi"]["num_candidates"] == 4

    def test_kwargs_change_the_built_index(self, uniform_points, sample_queries):
        shallow = compare_indexes(
            ["base"], uniform_points, sample_queries[:4],
            leaf_capacity=4, index_kwargs={"base": {"max_depth": 1}},
        )["base"]
        deep = compare_indexes(
            ["base"], uniform_points, sample_queries[:4], leaf_capacity=4,
        )["base"]
        assert shallow.size_bytes < deep.size_bytes

    def test_unknown_index_kwargs_rejected(self, uniform_points, sample_queries):
        with pytest.raises(ValueError):
            compare_indexes(
                ["base"], uniform_points, sample_queries[:4],
                index_kwargs={"wazi": {"num_candidates": 4}},
            )

    def test_batch_and_repeats_still_forwarded(self, uniform_points, sample_queries):
        results = compare_indexes(
            ["base"], uniform_points, sample_queries[:6],
            repeats=2, batch_ranges=True,
        )
        assert results["base"].range_stats.num_queries == 12


class TestSeedNoneUniformity:
    """Regression: flood silently coerced seed=None to 0."""

    @pytest.mark.parametrize("name", ["wazi", "wazi-sk", "flood"])
    def test_seed_none_forwarded_verbatim(self, name, uniform_points, sample_queries,
                                          monkeypatch):
        captured = {}
        import repro.engine as engine_mod

        target = {
            "wazi": "WaZI",
            "wazi-sk": "WaZIWithoutSkipping",
            "flood": "FloodIndex",
        }[name]
        original = getattr(engine_mod, target)

        class Spy(original):
            def __init__(self, *args, **kwargs):
                captured["seed"] = kwargs.get("seed", "MISSING")
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(engine_mod, target, Spy)
        build_index(name, uniform_points[:50], sample_queries[:2], seed=None)
        assert captured["seed"] is None

    def test_flood_builds_with_seed_none(self, uniform_points, sample_queries):
        index = build_index("flood", uniform_points, sample_queries[:4], seed=None)
        assert len(index) == len(uniform_points)


class TestWorkloadSummaryCoverage:
    def test_range_summary_unchanged_keys(self, uniform_points, sample_queries):
        index = build_index("base", uniform_points)
        summary = workload_summary(run_range_workload(index, sample_queries[:5]))
        assert summary["kind"] == "queries"
        assert summary["index"] == "Base"
        assert summary["queries"] == 5

    def test_knn_summary_includes_k(self, uniform_points):
        index = build_index("base", uniform_points)
        summary = workload_summary(run_knn_workload(index, uniform_points[:5], k=3))
        assert summary["kind"] == "knn"
        assert summary["k"] == 3.0
        assert summary["queries"] == 5

    def test_join_summary_includes_pairs_and_selectivity(self, uniform_points):
        index = build_index("base", uniform_points)
        summary = workload_summary(
            run_join_workload(index, uniform_points[:5], "radius", radius=0.05)
        )
        assert summary["kind"] == "join"
        assert summary["num_pairs"] >= 5
        assert 0.0 < summary["selectivity"] <= 1.0

    def test_snapshot_summary_passthrough(self, uniform_points, tmp_path):
        index = build_index("base", uniform_points)
        stats = run_snapshot_roundtrip(index, tmp_path / "s.snapshot")
        summary = workload_summary(stats)
        assert summary["kind"] == "snapshot"
        assert summary["snapshot_bytes"] > 0
        assert summary["snapshot_load_seconds"] > 0

    def test_count_only_marker(self, uniform_points, sample_queries):
        index = build_index("base", uniform_points)
        summary = workload_summary(
            run_range_workload(index, sample_queries[:5], count_only=True)
        )
        assert summary["count_only"] == 1.0

    def test_rejects_unknown_shapes(self):
        with pytest.raises(TypeError):
            workload_summary(42)


class TestOnlineLifecycle:
    def test_online_wraps_offline_drains(self, engine, uniform_points):
        from repro.online import MaintenancePolicy, OnlineIndex

        plain = engine.index
        before = len(engine)
        loop = engine.online(MaintenancePolicy(window_size=128), start=False)
        assert engine.is_online
        assert isinstance(engine.index, OnlineIndex)
        assert engine.index.base is plain
        assert engine.online_loop is loop
        assert engine.workload_log.window_size == 128
        # idempotent: a second call returns the same loop
        assert engine.online(start=False) is loop

        engine.index.insert(Point(0.123, 0.987))
        assert engine.index.delete(uniform_points[0])
        assert len(engine) == before

        engine.offline()
        assert not engine.is_online
        assert not isinstance(engine.index, OnlineIndex)
        assert engine.online_loop is None
        assert len(engine.index) == before  # buffered writes were compacted in
        assert engine.index.point_query(Point(0.123, 0.987))
        assert not engine.index.point_query(uniform_points[0])

    def test_offline_without_compact_discards(self, engine):
        from repro.online import OnlineIndex

        before = len(engine)
        engine.online(start=False)
        engine.index.insert(Point(0.222, 0.333))
        engine.offline(compact=False)
        assert len(engine.index) == before
        assert not engine.index.point_query(Point(0.222, 0.333))
        # offline on an offline engine is a no-op
        engine.offline()
        assert not isinstance(engine.index, OnlineIndex)

    def test_save_refuses_online_engine(self, engine, tmp_path):
        engine.online(start=False)
        try:
            with pytest.raises(ValueError):
                engine.save(tmp_path / "x.snapshot")
        finally:
            engine.offline()
        engine.save(tmp_path / "x.snapshot")  # fine once offline

    def test_adapt_keeps_online_wrapper(self, engine, sample_queries):
        from repro.online import OnlineIndex

        engine.online(start=False)
        try:
            engine.index.insert(Point(0.456, 0.654))
            with engine.recording():
                for query in sample_queries[:20]:
                    engine.execute(RangeQuery(query))
            engine.advise()
            engine.adapt()
            assert isinstance(engine.index, OnlineIndex)
            assert engine.index.point_query(Point(0.456, 0.654))
            assert engine.index.delta_stats()["rows"] == 0  # folded into rebuild
        finally:
            engine.offline()
