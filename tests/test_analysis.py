"""Tests for workload-drift detection and the rebuild advisor."""

import pytest

from repro.analysis import RebuildAdvisor, RebuildRecommendation, WorkloadDriftDetector
from repro.geometry import Rect
from repro.workloads import blend_workloads, generate_range_workload, uniform_range_workload


@pytest.fixture(scope="module")
def original_workload():
    return generate_range_workload("newyork", 150, selectivity_percent=0.0256, seed=1)


@pytest.fixture(scope="module")
def replacement_workload():
    return generate_range_workload("newyork", 150, selectivity_percent=0.0256, seed=777)


class TestWorkloadDriftDetector:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            WorkloadDriftDetector(Rect(0, 0, 1, 1), grid=0)
        with pytest.raises(ValueError):
            WorkloadDriftDetector(Rect(0, 0, 1, 1), rebuild_threshold=0.0)

    def test_from_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            WorkloadDriftDetector.from_workload([])

    def test_unfitted_detector_raises(self):
        detector = WorkloadDriftDetector(Rect(0, 0, 1, 1))
        with pytest.raises(RuntimeError):
            detector.drift_score([Rect(0, 0, 1, 1)])

    def test_zero_drift_for_identical_workload(self, original_workload):
        detector = WorkloadDriftDetector.from_workload(original_workload.queries)
        assert detector.drift_score(original_workload.queries) == pytest.approx(0.0, abs=1e-9)
        assert not detector.should_rebuild(original_workload.queries)

    def test_score_bounded_between_zero_and_one(self, original_workload, replacement_workload):
        detector = WorkloadDriftDetector.from_workload(original_workload.queries)
        score = detector.drift_score(replacement_workload.queries)
        assert 0.0 <= score <= 1.0

    def test_disjoint_workloads_have_high_drift(self):
        left = [Rect(0.0, 0.0, 0.1, 0.1)] * 20
        right = [Rect(0.9, 0.9, 1.0, 1.0)] * 20
        detector = WorkloadDriftDetector.from_workload(left, extent=Rect(0, 0, 1, 1))
        assert detector.drift_score(right) > 0.9
        assert detector.should_rebuild(right)

    def test_drift_increases_with_change_fraction(self, original_workload, replacement_workload):
        detector = WorkloadDriftDetector.from_workload(original_workload.queries, grid=12)
        scores = []
        for fraction in (0.0, 0.5, 1.0):
            blended = blend_workloads(original_workload, replacement_workload, fraction, seed=3)
            scores.append(detector.drift_score(blended.queries))
        assert scores[0] <= scores[1] <= scores[2]

    def test_uniform_drift_detected(self, original_workload):
        detector = WorkloadDriftDetector.from_workload(original_workload.queries, grid=12)
        uniform = uniform_range_workload("newyork", 150, 0.0256, seed=5)
        assert detector.drift_score(uniform.queries) > 0.2

    def test_refit_resets_reference(self, original_workload, replacement_workload):
        detector = WorkloadDriftDetector.from_workload(original_workload.queries)
        detector.fit(replacement_workload.queries)
        assert detector.drift_score(replacement_workload.queries) == pytest.approx(0.0, abs=1e-9)


class TestRebuildAdvisor:
    def make_advisor(self, detector, rebuild_seconds=10.0, stale=2e-3, fresh=1e-3):
        return RebuildAdvisor(detector, rebuild_seconds, stale, fresh)

    def test_invalid_parameters(self, original_workload):
        detector = WorkloadDriftDetector.from_workload(original_workload.queries)
        with pytest.raises(ValueError):
            RebuildAdvisor(detector, -1.0, 1e-3, 1e-3)
        with pytest.raises(ValueError):
            RebuildAdvisor(detector, 1.0, -1e-3, 1e-3)

    def test_no_rebuild_when_drift_low(self, original_workload):
        detector = WorkloadDriftDetector.from_workload(original_workload.queries)
        advisor = self.make_advisor(detector)
        verdict = advisor.recommend(original_workload.queries, expected_future_queries=1e9)
        assert isinstance(verdict, RebuildRecommendation)
        assert not verdict.should_rebuild
        assert "below threshold" in verdict.reason

    def test_rebuild_when_drift_high_and_horizon_long(self):
        left = [Rect(0.0, 0.0, 0.1, 0.1)] * 20
        right = [Rect(0.9, 0.9, 1.0, 1.0)] * 20
        detector = WorkloadDriftDetector.from_workload(left, extent=Rect(0, 0, 1, 1))
        advisor = self.make_advisor(detector)
        verdict = advisor.recommend(right, expected_future_queries=1_000_000)
        assert verdict.should_rebuild
        assert verdict.estimated_break_even_queries == pytest.approx(10_000.0)

    def test_no_rebuild_when_horizon_too_short(self):
        left = [Rect(0.0, 0.0, 0.1, 0.1)] * 20
        right = [Rect(0.9, 0.9, 1.0, 1.0)] * 20
        detector = WorkloadDriftDetector.from_workload(left, extent=Rect(0, 0, 1, 1))
        advisor = self.make_advisor(detector)
        verdict = advisor.recommend(right, expected_future_queries=100)
        assert not verdict.should_rebuild
        assert "pay off" in verdict.reason

    def test_no_rebuild_when_fresh_index_not_faster(self):
        left = [Rect(0.0, 0.0, 0.1, 0.1)] * 20
        right = [Rect(0.9, 0.9, 1.0, 1.0)] * 20
        detector = WorkloadDriftDetector.from_workload(left, extent=Rect(0, 0, 1, 1))
        advisor = RebuildAdvisor(detector, 10.0, stale_query_seconds=1e-3, fresh_query_seconds=2e-3)
        verdict = advisor.recommend(right, expected_future_queries=1e9)
        assert not verdict.should_rebuild
        assert verdict.estimated_break_even_queries is None
