"""Tests for dataset generators, check-in centers and query workloads."""

import numpy as np
import pytest

from repro.geometry import Point, Rect
from repro.workloads import (
    REGION_NAMES,
    blend_workloads,
    dataset_extent,
    generate_checkin_centers,
    generate_dataset,
    generate_insert_points,
    generate_knn_workload,
    generate_point_queries,
    generate_probe_points,
    generate_range_workload,
    range_queries_from_centers,
    region_spec,
    uniform_range_workload,
)
from repro.workloads.checkins import popularity_histogram
from repro.workloads.datasets import dataset_summary
from repro.workloads.queries import PAPER_SELECTIVITIES


class TestRegions:
    def test_all_four_paper_regions_exist(self):
        assert set(REGION_NAMES) == {"calinev", "newyork", "japan", "iberia"}

    def test_region_lookup_case_insensitive(self):
        assert region_spec("NewYork").name == "newyork"

    def test_unknown_region_rejected(self):
        with pytest.raises(KeyError):
            region_spec("atlantis")

    def test_cluster_weights_positive(self):
        for name in REGION_NAMES:
            spec = region_spec(name)
            assert spec.total_cluster_weight > 0
            assert 0 <= spec.background_fraction < 1


class TestGenerateDataset:
    @pytest.mark.parametrize("region", REGION_NAMES)
    def test_points_inside_extent(self, region):
        points = generate_dataset(region, 500, seed=1)
        extent = dataset_extent(region)
        assert len(points) == 500
        assert all(extent.contains_xy(p.x, p.y) for p in points)

    def test_deterministic_given_seed(self):
        first = generate_dataset("japan", 200, seed=9)
        second = generate_dataset("japan", 200, seed=9)
        assert first == second

    def test_different_seeds_differ(self):
        first = generate_dataset("japan", 200, seed=1)
        second = generate_dataset("japan", 200, seed=2)
        assert first != second

    def test_zero_points(self):
        assert generate_dataset("iberia", 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            generate_dataset("iberia", -1)

    def test_distribution_is_clustered(self):
        """Most points must concentrate in a minority of coarse grid cells."""
        points = generate_dataset("newyork", 4000, seed=3)
        grid = dataset_summary(points, dataset_extent("newyork"), grid=8)
        sorted_counts = np.sort(grid.ravel())[::-1]
        top_quarter = sorted_counts[: len(sorted_counts) // 4].sum()
        assert top_quarter >= 0.6 * len(points)


class TestCheckinCenters:
    def test_centers_within_extent(self):
        centers = generate_checkin_centers("calinev", 300, seed=2)
        extent = dataset_extent("calinev")
        assert len(centers) == 300
        assert all(extent.contains_xy(c.x, c.y) for c in centers)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            generate_checkin_centers("calinev", -5)

    def test_popularity_is_skewed(self):
        spec = region_spec("japan")
        centers = generate_checkin_centers("japan", 2000, seed=4)
        histogram = popularity_histogram(centers, spec)
        histogram.sort(reverse=True)
        top_two = sum(histogram[:2])
        assert top_two >= 0.4 * len(centers)

    def test_different_seed_changes_popular_clusters(self):
        spec = region_spec("iberia")
        first = popularity_histogram(generate_checkin_centers("iberia", 1000, seed=1), spec)
        second = popularity_histogram(generate_checkin_centers("iberia", 1000, seed=99), spec)
        assert int(np.argmax(first)) != int(np.argmax(second)) or first != second


class TestRangeWorkloads:
    def test_paper_selectivities_constant(self):
        assert PAPER_SELECTIVITIES == (0.0016, 0.0064, 0.0256, 0.1024)

    def test_query_area_matches_selectivity(self):
        extent = dataset_extent("newyork")
        centers = [Point(30.0, 30.0)] * 10
        queries = range_queries_from_centers(centers, extent, 0.0256)
        target = extent.area * 0.0256 / 100.0
        for query in queries:
            assert query.area == pytest.approx(target, rel=1e-6)

    def test_queries_inside_data_space(self):
        workload = generate_range_workload("calinev", 200, 0.1024, seed=5)
        extent = dataset_extent("calinev")
        assert len(workload) == 200
        for query in workload:
            assert extent.contains_rect(query)

    def test_boundary_centers_shifted_inwards(self):
        extent = Rect(0.0, 0.0, 10.0, 10.0)
        queries = range_queries_from_centers([Point(0.0, 0.0)], extent, 1.0)
        assert extent.contains_rect(queries[0])
        assert queries[0].area == pytest.approx(1.0)

    def test_invalid_selectivity_rejected(self):
        with pytest.raises(ValueError):
            range_queries_from_centers([Point(0, 0)], Rect(0, 0, 1, 1), 0.0)

    def test_aspect_jitter_varies_shapes(self):
        extent = dataset_extent("newyork")
        centers = [Point(30.0, 30.0)] * 50
        rng = np.random.default_rng(0)
        queries = range_queries_from_centers(centers, extent, 0.0256, aspect_jitter=1.0, rng=rng)
        widths = {round(q.width, 6) for q in queries}
        assert len(widths) > 1

    def test_uniform_workload_covers_space(self):
        workload = uniform_range_workload("japan", 300, 0.0256, seed=0)
        extent = dataset_extent("japan")
        xs = [q.center.x for q in workload]
        assert min(xs) < extent.xmin + 0.3 * extent.width
        assert max(xs) > extent.xmax - 0.3 * extent.width

    def test_workload_metadata(self):
        workload = generate_range_workload("iberia", 10, 0.0064, seed=3)
        assert workload.region == "iberia"
        assert workload.selectivity_percent == 0.0064
        assert "iberia" in workload.description
        assert workload[0].area > 0

    def test_workload_deterministic(self):
        first = generate_range_workload("newyork", 50, 0.0064, seed=7)
        second = generate_range_workload("newyork", 50, 0.0064, seed=7)
        assert first.queries == second.queries


class TestPointAndInsertWorkloads:
    def test_point_queries_hit_fraction_one(self):
        queries = generate_point_queries("newyork", 100, num_points=500, seed=1, hit_fraction=1.0)
        data = set(generate_dataset("newyork", 500, seed=1))
        assert len(queries) == 100
        assert all(q in data for q in queries)

    def test_point_queries_hit_fraction_zero(self):
        queries = generate_point_queries("newyork", 50, num_points=500, seed=1, hit_fraction=0.0)
        assert len(queries) == 50

    def test_invalid_hit_fraction(self):
        with pytest.raises(ValueError):
            generate_point_queries("newyork", 10, 100, hit_fraction=1.5)

    def test_insert_points_uniform_over_extent(self):
        inserts = generate_insert_points("iberia", 400, seed=2)
        extent = dataset_extent("iberia")
        assert len(inserts) == 400
        assert all(extent.contains_xy(p.x, p.y) for p in inserts)


class TestProbeWorkloads:
    @pytest.mark.parametrize("source", ["checkins", "data", "uniform"])
    def test_probes_inside_extent(self, source):
        extent = dataset_extent("newyork")
        probes = generate_probe_points("newyork", 120, seed=3, source=source)
        assert len(probes) == 120
        assert all(extent.contains_xy(p.x, p.y) for p in probes)

    def test_deterministic_given_seed(self):
        a = generate_probe_points("japan", 50, seed=5)
        b = generate_probe_points("japan", 50, seed=5)
        c = generate_probe_points("japan", 50, seed=6)
        assert a == b
        assert a != c

    def test_sources_differ(self):
        checkins = generate_probe_points("newyork", 80, seed=1, source="checkins")
        data = generate_probe_points("newyork", 80, seed=1, source="data")
        uniform = generate_probe_points("newyork", 80, seed=1, source="uniform")
        assert checkins != data
        assert checkins != uniform

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            generate_probe_points("newyork", -1)
        with pytest.raises(ValueError):
            generate_probe_points("newyork", 10, source="martian")
        with pytest.raises(ValueError):
            generate_knn_workload("newyork", 10, k=0)

    def test_knn_workload_metadata(self):
        workload = generate_knn_workload("iberia", 30, k=7, seed=2)
        assert len(workload) == 30
        assert workload.k == 7
        assert workload.region == "iberia"
        assert "k=7" in workload.description
        assert workload[0] == workload.probes[0]
        assert list(iter(workload)) == workload.probes


class TestWorkloadBlending:
    def test_zero_change_returns_original_queries(self):
        original = generate_range_workload("newyork", 40, 0.0256, seed=1)
        replacement = uniform_range_workload("newyork", 40, 0.0256, seed=2)
        blended = blend_workloads(original, replacement, 0.0)
        assert blended.queries == original.queries

    def test_full_change_uses_replacement_queries(self):
        original = generate_range_workload("newyork", 40, 0.0256, seed=1)
        replacement = uniform_range_workload("newyork", 40, 0.0256, seed=2)
        blended = blend_workloads(original, replacement, 1.0, seed=0)
        replacement_set = set(replacement.queries)
        assert all(query in replacement_set for query in blended.queries)

    def test_partial_change_fraction(self):
        original = generate_range_workload("newyork", 100, 0.0256, seed=1)
        replacement = uniform_range_workload("newyork", 100, 0.0256, seed=2)
        blended = blend_workloads(original, replacement, 0.3, seed=0)
        changed = sum(1 for a, b in zip(original.queries, blended.queries) if a != b)
        assert changed == 30

    def test_invalid_fraction_rejected(self):
        original = generate_range_workload("newyork", 10, 0.0256, seed=1)
        with pytest.raises(ValueError):
            blend_workloads(original, original, 1.5)

    def test_metadata_records_change(self):
        original = generate_range_workload("newyork", 10, 0.0256, seed=1)
        blended = blend_workloads(original, original, 0.5, seed=3)
        assert blended.extra["change_fraction"] == 0.5
