"""Round-trip tests for the columnar snapshot subsystem.

The contract under test: an index restored from a snapshot answers every
query with *byte-identical* results (contents and ordering) and identical
logical cost counters to the index that was saved — for structural Z-index
snapshots because the stored arrays reproduce the exact structure, and for
rebuild-recipe snapshots because construction is deterministic given the
stored seed.  Plus: format-version negotiation fails friendly, and loaded
indexes stay fully usable (updates, kNN, batch paths).
"""

import json
import zipfile

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import build_index, build_or_load_index
from repro.api import INDEX_NAMES
from repro.geometry import Point, Rect
from repro.interfaces import brute_force_range
from repro.persistence import (
    SNAPSHOT_FORMAT_VERSION,
    SnapshotError,
    SnapshotFormatError,
    SnapshotVersionError,
    load_points_binary,
    load_points_columns,
    load_queries_binary,
    load_snapshot,
    save_points_binary,
    save_queries_binary,
    save_rebuild_snapshot,
    save_snapshot,
)
from repro.zindex import BaseZIndex, ZIndex
from repro.zindex.node import ORDER_BADC, pack_tree, unpack_tree
from repro.zindex.splitters import FixedDecisionStrategy, SplitDecision

#: Names whose built indexes support structural snapshots.
ZINDEX_NAMES = ("wazi", "wazi-sk", "base", "base+sk")


def as_rows(results):
    """Result lists as (x, y) tuples — ordering-sensitive on purpose."""
    return [p.as_tuple() for p in results]


def roundtrip(name, points, queries, tmp_path, leaf_capacity=32, seed=3):
    """Build ``name`` twice — directly and through a snapshot — and return both."""
    built = build_index(name, points, queries, leaf_capacity=leaf_capacity, seed=seed)
    path = tmp_path / "index.snapshot"
    if isinstance(built, ZIndex):
        save_snapshot(built, path)
    else:
        save_rebuild_snapshot(
            name, points, path, workload=queries, leaf_capacity=leaf_capacity, seed=seed
        )
    return built, load_snapshot(path)


class TestEveryIndexRoundtrips:
    @pytest.mark.parametrize("name", INDEX_NAMES)
    def test_results_and_counters_identical(
        self, name, clustered_points, small_workload, tmp_path
    ):
        points = clustered_points[:600]
        queries = small_workload.queries[:25]
        built, loaded = roundtrip(name, points, queries, tmp_path)
        built.reset_counters()
        loaded.reset_counters()
        # Identical query sequences on both sides: even the query-adaptive
        # baselines (QUASII cracks on queries) evolve identically.
        for query in queries:
            assert as_rows(built.range_query(query)) == as_rows(loaded.range_query(query))
        assert built.counters.snapshot() == loaded.counters.snapshot()
        assert len(built) == len(loaded)

    @pytest.mark.parametrize("name", INDEX_NAMES)
    def test_batch_and_knn_identical(
        self, name, clustered_points, small_workload, tmp_path
    ):
        points = clustered_points[:400]
        queries = small_workload.queries[:10]
        built, loaded = roundtrip(name, points, queries, tmp_path)
        built_batch = built.batch_range_query(queries)
        loaded_batch = loaded.batch_range_query(queries)
        assert [as_rows(r) for r in built_batch] == [as_rows(r) for r in loaded_batch]
        probes = points[:15]
        assert [as_rows(r) for r in built.batch_knn(probes, 5)] == [
            as_rows(r) for r in loaded.batch_knn(probes, 5)
        ]

    def test_results_match_brute_force(self, clustered_points, small_workload, tmp_path):
        points = clustered_points[:500]
        built, loaded = roundtrip("wazi", points, small_workload.queries[:20], tmp_path)
        for query in small_workload.queries[:20]:
            expected = sorted(as_rows(brute_force_range(points, query)))
            assert sorted(as_rows(loaded.range_query(query))) == expected


class TestStructuralSnapshot:
    @pytest.mark.parametrize("name", ZINDEX_NAMES)
    def test_structure_preserved(self, name, clustered_points, small_workload, tmp_path):
        built, loaded = roundtrip(
            name, clustered_points[:800], small_workload.queries[:20], tmp_path
        )
        assert loaded.name == built.name
        assert loaded.depth() == built.depth()
        assert loaded.node_counts() == built.node_counts()
        assert loaded.leaf_sizes() == built.leaf_sizes()
        assert loaded.size_bytes() == built.size_bytes()
        assert as_rows(loaded.all_points()) == as_rows(built.all_points())
        assert loaded.leaflist.check_linked()
        assert loaded.leaflist.check_skip_pointers_forward()
        assert loaded.use_skipping == built.use_skipping

    def test_save_is_deterministic(self, clustered_points, small_workload, tmp_path):
        index = build_index(
            "wazi", clustered_points[:300], small_workload.queries[:10], seed=5
        )
        first = tmp_path / "a.snapshot"
        second = tmp_path / "b.snapshot"
        save_snapshot(index, first)
        save_snapshot(index, second)
        assert first.read_bytes() == second.read_bytes()

    def test_save_does_not_disturb_queries(self, clustered_points, small_workload, tmp_path):
        """Saving mid-workload neither mutates results nor cost counters."""
        index = build_index(
            "base+sk", clustered_points[:400], small_workload.queries[:5], seed=2
        )
        query = small_workload.queries[0]
        index.reset_counters()
        before = as_rows(index.range_query(query))
        counters_before = index.counters.snapshot()
        save_snapshot(index, tmp_path / "mid.snapshot")
        index.reset_counters()
        assert as_rows(index.range_query(query)) == before
        assert index.counters.snapshot() == counters_before

    def test_snapshot_after_updates(self, clustered_points, tmp_path):
        """A mutated index (stale flat cache) snapshots correctly."""
        index = BaseZIndex(clustered_points[:300], leaf_capacity=16)
        for offset in range(120):
            index.insert(Point(30.0 + offset * 1e-3, 32.0 + offset * 1e-3))
        index.delete(clustered_points[0])
        path = tmp_path / "mutated.snapshot"
        save_snapshot(index, path)
        loaded = load_snapshot(path)
        assert as_rows(loaded.all_points()) == as_rows(index.all_points())
        query = Rect(29.0, 31.0, 31.0, 33.0)
        assert as_rows(loaded.range_query(query)) == as_rows(index.range_query(query))

    def test_loaded_index_supports_updates(self, clustered_points, small_workload, tmp_path):
        built, loaded = roundtrip(
            "wazi", clustered_points[:400], small_workload.queries[:10], tmp_path
        )
        for offset in range(150):  # enough to overflow leaves and split
            loaded.insert(Point(30.0 + offset * 1e-4, 32.0 + offset * 1e-4))
        assert loaded.point_query(Point(30.0, 32.0))
        assert loaded.delete(Point(30.0, 32.0))
        assert not loaded.point_query(Point(30.0, 32.0))
        loaded.insert(Point(-500.0, -500.0))  # out-of-extent rebuild path
        assert loaded.point_query(Point(-500.0, -500.0))
        query = small_workload.queries[0]
        expected = sorted(as_rows(brute_force_range(loaded.all_points(), query)))
        assert sorted(as_rows(loaded.range_query(query))) == expected

    def test_empty_index(self, tmp_path):
        path = tmp_path / "empty.snapshot"
        save_snapshot(BaseZIndex([]), path)
        loaded = load_snapshot(path)
        assert len(loaded) == 0
        assert loaded.range_query(Rect(0.0, 0.0, 1.0, 1.0)) == []
        loaded.insert(Point(0.5, 0.5))
        assert loaded.point_query(Point(0.5, 0.5))

    def test_oversized_leaf(self, tmp_path):
        """Heavily duplicated coordinates produce pages beyond leaf_capacity."""
        points = [Point(1.0, 1.0)] * 40 + [Point(2.0, 2.0)] * 3
        index = BaseZIndex(points, leaf_capacity=8)
        path = tmp_path / "dupes.snapshot"
        save_snapshot(index, path)
        loaded = load_snapshot(path)
        query = Rect(0.0, 0.0, 3.0, 3.0)
        assert as_rows(loaded.range_query(query)) == as_rows(index.range_query(query))
        assert len(loaded) == 43

    def test_nonmonotone_ordering_roundtrips(self, tmp_path):
        """ORDER_BADC trees keep their four-corner projection after load."""
        rng = np.random.default_rng(9)
        points = [Point(float(x), float(y)) for x, y in rng.uniform(0, 100, (400, 2))]
        index = ZIndex(
            points,
            leaf_capacity=8,
            split_strategy=FixedDecisionStrategy(
                SplitDecision(50.0, 50.0, ORDER_BADC)
            ),
        )
        assert index._has_nonmonotone_ordering
        path = tmp_path / "badc.snapshot"
        save_snapshot(index, path)
        loaded = load_snapshot(path)
        assert loaded._has_nonmonotone_ordering
        for query in (Rect(10, 10, 60, 60), Rect(40, 0, 80, 100)):
            expected = sorted(as_rows(brute_force_range(points, query)))
            assert sorted(as_rows(loaded.range_query(query))) == expected

    def test_non_zindex_rejected_with_pointer(self, uniform_points, tmp_path):
        index = build_index("str", uniform_points)
        with pytest.raises(TypeError, match="save_rebuild_snapshot"):
            save_snapshot(index, tmp_path / "nope.snapshot")

    @given(
        n=st.integers(min_value=1, max_value=120),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        use_skipping=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_roundtrip_property(self, n, seed, use_skipping, tmp_path_factory):
        """Random datasets: structural round trip is byte-identical."""
        rng = np.random.default_rng(seed)
        points = [Point(float(x), float(y)) for x, y in rng.uniform(0, 64, (n, 2))]
        index = ZIndex(points, leaf_capacity=4, use_skipping=use_skipping)
        path = tmp_path_factory.mktemp("snap") / "rand.snapshot"
        save_snapshot(index, path)
        loaded = load_snapshot(path)
        x1, x2 = sorted(rng.uniform(0, 64, 2))
        y1, y2 = sorted(rng.uniform(0, 64, 2))
        query = Rect(float(x1), float(y1), float(x2), float(y2))
        index.reset_counters()
        loaded.reset_counters()
        assert as_rows(index.range_query(query)) == as_rows(loaded.range_query(query))
        assert index.counters.snapshot() == loaded.counters.snapshot()
        center = points[0]
        assert as_rows(index.knn(center, 3)) == as_rows(loaded.knn(center, 3))


class TestPackTreeTables:
    def test_roundtrip_preserves_structure(self, clustered_points):
        index = BaseZIndex(clustered_points[:300], leaf_capacity=8)
        tables, orderings = pack_tree(index.root)
        root, leaves = unpack_tree(tables, orderings)
        assert len(leaves) == len(index.leaflist)
        assert sorted(leaf.leaf_index for leaf in leaves) == list(range(len(leaves)))

    def test_empty_tree(self):
        tables, orderings = pack_tree(None)
        assert tables["tree_kind"].shape == (0,)
        root, leaves = unpack_tree(tables, orderings)
        assert root is None and leaves == []

    def test_malformed_child_id_rejected(self, clustered_points):
        index = BaseZIndex(clustered_points[:200], leaf_capacity=8)
        tables, orderings = pack_tree(index.root)
        if (tables["tree_kind"] == 0).any():
            bad = dict(tables)
            children = np.array(bad["tree_children"])
            children[0, 0] = 10_000_000
            bad["tree_children"] = children
            with pytest.raises(ValueError):
                unpack_tree(bad, orderings)


class TestVersionNegotiation:
    def _tamper_manifest(self, path, mutate):
        with zipfile.ZipFile(path, "r") as archive:
            members = {name: archive.read(name) for name in archive.namelist()}
        manifest = json.loads(members["manifest.json"].decode("utf-8"))
        mutate(manifest)
        members["manifest.json"] = json.dumps(manifest).encode("utf-8")
        with zipfile.ZipFile(path, "w", compression=zipfile.ZIP_STORED) as archive:
            for name, payload in members.items():
                archive.writestr(name, payload)

    @pytest.fixture
    def snapshot_path(self, uniform_points, tmp_path):
        path = tmp_path / "victim.snapshot"
        save_snapshot(BaseZIndex(uniform_points[:100]), path)
        return path

    def test_future_version_refused_with_both_versions_named(self, snapshot_path):
        self._tamper_manifest(
            snapshot_path, lambda m: m.update(format_version=SNAPSHOT_FORMAT_VERSION + 7)
        )
        with pytest.raises(SnapshotVersionError) as excinfo:
            load_snapshot(snapshot_path)
        message = str(excinfo.value)
        assert str(SNAPSHOT_FORMAT_VERSION + 7) in message
        assert str(SNAPSHOT_FORMAT_VERSION) in message

    def test_unknown_kind_refused(self, snapshot_path):
        self._tamper_manifest(snapshot_path, lambda m: m.update(kind="hologram"))
        with pytest.raises(SnapshotFormatError, match="hologram"):
            load_snapshot(snapshot_path)

    def test_missing_array_refused(self, uniform_points, tmp_path):
        path = tmp_path / "victim.snapshot"
        save_snapshot(BaseZIndex(uniform_points[:50]), path)
        with zipfile.ZipFile(path, "r") as archive:
            members = {name: archive.read(name) for name in archive.namelist()}
        del members["flat_x.npy"]
        with zipfile.ZipFile(path, "w") as archive:
            for name, payload in members.items():
                archive.writestr(name, payload)
        with pytest.raises(SnapshotFormatError, match="flat_x"):
            load_snapshot(path)

    def test_not_a_zip_refused(self, tmp_path):
        path = tmp_path / "garbage.snapshot"
        path.write_bytes(b"definitely not a zip archive")
        with pytest.raises(SnapshotFormatError):
            load_snapshot(path)

    def test_fingerprint_detects_repaired_coordinates(self):
        """Re-pairing the same x/y multisets must change the fingerprint."""
        import numpy as np
        from repro.persistence import dataset_fingerprint

        a = dataset_fingerprint(np.array([0.0, 1.0]), np.array([0.0, 1.0]))
        b = dataset_fingerprint(np.array([0.0, 1.0]), np.array([1.0, 0.0]))
        assert a != b
        # ... while permutations of the same pairs are equal (curve order
        # vs caller order).
        c = dataset_fingerprint(np.array([1.0, 0.0]), np.array([1.0, 0.0]))
        assert a == c

    def test_workload_content_mismatch_is_rebuilt(self, uniform_points, tmp_path):
        import repro.api as api

        queries = [Rect(0.1, 0.1, 0.5, 0.5), Rect(0.2, 0.2, 0.8, 0.8)]
        path = tmp_path / "wl.snapshot"
        build_or_load_index(
            "flood", uniform_points, queries, snapshot_path=path,
            leaf_capacity=32, seed=1,
        )
        assert api._snapshot_matches_request(
            path, "flood", uniform_points, 32, 1, workload=queries
        )
        other = [Rect(0.1, 0.1, 0.5, 0.5), Rect(0.3, 0.3, 0.9, 0.9)]
        assert not api._snapshot_matches_request(
            path, "flood", uniform_points, 32, 1, workload=other
        )
        # Same queries in a different order: adaptive baselines crack in
        # order, so the fingerprint is order-sensitive.
        assert not api._snapshot_matches_request(
            path, "flood", uniform_points, 32, 1, workload=list(reversed(queries))
        )

    def test_snapshot_file_honours_umask(self, uniform_points, tmp_path):
        import os

        path = tmp_path / "perm.snapshot"
        save_snapshot(BaseZIndex(uniform_points[:50]), path)
        umask = os.umask(0)
        os.umask(umask)
        assert (path.stat().st_mode & 0o777) == (0o666 & ~umask)

    def test_corrupt_leaf_boxes_refused(self, uniform_points, tmp_path):
        """A shrunken bbox row must not load and hide points from queries."""
        import io

        path = tmp_path / "boxes.snapshot"
        save_snapshot(BaseZIndex(uniform_points[:200], leaf_capacity=8), path)
        with zipfile.ZipFile(path, "r") as archive:
            members = {name: archive.read(name) for name in archive.namelist()}
        boxes = np.lib.format.read_array(io.BytesIO(members["leaf_boxes.npy"]))
        boxes[0] = (0.4, 0.4, 0.4, 0.4)
        buffer = io.BytesIO()
        np.lib.format.write_array(buffer, boxes)
        members["leaf_boxes.npy"] = buffer.getvalue()
        with zipfile.ZipFile(path, "w", compression=zipfile.ZIP_STORED) as archive:
            for name, payload in members.items():
                archive.writestr(name, payload)
        with pytest.raises(SnapshotFormatError, match="leaf_boxes"):
            load_snapshot(path)

    def test_corrupt_nonempty_mask_refused(self, uniform_points, tmp_path):
        """A mask hiding populated leaves must not load silently."""
        import io

        path = tmp_path / "mask.snapshot"
        save_snapshot(BaseZIndex(uniform_points[:200], leaf_capacity=8), path)
        with zipfile.ZipFile(path, "r") as archive:
            members = {name: archive.read(name) for name in archive.namelist()}
        mask = np.lib.format.read_array(io.BytesIO(members["leaf_nonempty.npy"]))
        mask[0] = not mask[0]
        buffer = io.BytesIO()
        np.lib.format.write_array(buffer, mask)
        members["leaf_nonempty.npy"] = buffer.getvalue()
        with zipfile.ZipFile(path, "w", compression=zipfile.ZIP_STORED) as archive:
            for name, payload in members.items():
                archive.writestr(name, payload)
        with pytest.raises(SnapshotFormatError, match="leaf_nonempty"):
            load_snapshot(path)

    def test_corrupt_skip_pointers_refused(self, clustered_points, tmp_path):
        """Out-of-range look-ahead pointers must not load and drop results."""
        import io

        path = tmp_path / "sk.snapshot"
        save_snapshot(
            build_index("base+sk", clustered_points[:300], leaf_capacity=8), path
        )
        with zipfile.ZipFile(path, "r") as archive:
            members = {name: archive.read(name) for name in archive.namelist()}
        column = np.lib.format.read_array(io.BytesIO(members["skip_below.npy"]))
        column[:] = 10_000_000
        buffer = io.BytesIO()
        np.lib.format.write_array(buffer, column)
        members["skip_below.npy"] = buffer.getvalue()
        with zipfile.ZipFile(path, "w", compression=zipfile.ZIP_STORED) as archive:
            for name, payload in members.items():
                archive.writestr(name, payload)
        with pytest.raises(SnapshotFormatError, match="skip pointer"):
            load_snapshot(path)

    def test_corrupt_manifest_scalars_refused(self, snapshot_path):
        """Bad scalar types must map to SnapshotFormatError, not ValueError/TypeError."""
        self._tamper_manifest(
            snapshot_path, lambda m: m["index"].update(leaf_capacity="abc")
        )
        with pytest.raises(SnapshotFormatError):
            load_snapshot(snapshot_path)

    def test_malformed_extent_refused(self, snapshot_path):
        self._tamper_manifest(
            snapshot_path, lambda m: m["index"].update(extent=[0.0, 0.0, 1.0])
        )
        with pytest.raises(SnapshotFormatError):
            load_snapshot(snapshot_path)

    def test_foreign_zip_refused(self, tmp_path):
        path = tmp_path / "foreign.zip"
        with zipfile.ZipFile(path, "w") as archive:
            archive.writestr("readme.txt", "hello")
        with pytest.raises(SnapshotFormatError):
            load_snapshot(path)

    def test_all_errors_are_snapshot_errors(self, snapshot_path):
        """Serving code needs exactly one except clause for the fallback."""
        self._tamper_manifest(snapshot_path, lambda m: m.update(format_version=99))
        with pytest.raises(SnapshotError):
            load_snapshot(snapshot_path)

    def test_nonzero_leaf_starts_base_refused(self, snapshot_path):
        """A shifted offset table must not silently drop leading points."""
        with zipfile.ZipFile(snapshot_path, "r") as archive:
            members = {name: archive.read(name) for name in archive.namelist()}
        import io

        starts = np.lib.format.read_array(io.BytesIO(members["leaf_starts.npy"]))
        starts = starts + 5
        buffer = io.BytesIO()
        np.lib.format.write_array(buffer, starts)
        members["leaf_starts.npy"] = buffer.getvalue()
        with zipfile.ZipFile(snapshot_path, "w", compression=zipfile.ZIP_STORED) as archive:
            for name, payload in members.items():
                archive.writestr(name, payload)
        with pytest.raises(SnapshotFormatError, match="begin at 0"):
            load_snapshot(snapshot_path)


class TestRebuildSnapshot:
    def test_kwargs_must_be_json(self, uniform_points, tmp_path):
        with pytest.raises(TypeError, match="JSON"):
            save_rebuild_snapshot(
                "base", uniform_points, tmp_path / "x.snapshot",
                not_serialisable=object(),
            )

    def test_unknown_name_fails_friendly(self, uniform_points, tmp_path):
        path = tmp_path / "x.snapshot"
        save_rebuild_snapshot("base", uniform_points[:50], path)
        with zipfile.ZipFile(path, "r") as archive:
            members = {name: archive.read(name) for name in archive.namelist()}
        manifest = json.loads(members["manifest.json"].decode("utf-8"))
        manifest["build"]["name"] = "warp-drive"
        members["manifest.json"] = json.dumps(manifest).encode("utf-8")
        with zipfile.ZipFile(path, "w") as archive:
            for name, payload in members.items():
                archive.writestr(name, payload)
        with pytest.raises(SnapshotFormatError, match="warp-drive"):
            load_snapshot(path)


class TestBuildOrLoad:
    def test_second_call_loads_instead_of_building(
        self, clustered_points, small_workload, tmp_path, monkeypatch
    ):
        points = clustered_points[:400]
        queries = small_workload.queries[:10]
        path = tmp_path / "serving" / "wazi.snapshot"
        first = build_or_load_index(
            "wazi", points, queries, snapshot_path=path, leaf_capacity=32, seed=4
        )
        assert path.exists()
        import repro.api as api

        def refuse(*args, **kwargs):
            raise AssertionError("second call must load the snapshot, not rebuild")

        monkeypatch.setattr(api, "build_index", refuse)
        second = build_or_load_index(
            "wazi", points, queries, snapshot_path=path, leaf_capacity=32, seed=4
        )
        for query in queries:
            assert as_rows(first.range_query(query)) == as_rows(second.range_query(query))

    def test_corrupt_snapshot_falls_back_to_build(
        self, clustered_points, small_workload, tmp_path
    ):
        points = clustered_points[:300]
        queries = small_workload.queries[:5]
        path = tmp_path / "wazi.snapshot"
        path.write_bytes(b"corrupted beyond recognition")
        index = build_or_load_index(
            "wazi", points, queries, snapshot_path=path, leaf_capacity=32, seed=4
        )
        assert len(index) == len(points)
        assert load_snapshot(path).name == index.name  # overwritten with a good one

    def test_mismatched_snapshot_is_rebuilt(
        self, clustered_points, small_workload, tmp_path
    ):
        """A snapshot of a different index/dataset must not be served."""
        points = clustered_points[:300]
        queries = small_workload.queries[:5]
        path = tmp_path / "shared.snapshot"
        build_or_load_index(
            "wazi", points, queries, snapshot_path=path, leaf_capacity=32, seed=4
        )
        # Different name, different dataset size: must rebuild, not serve WaZI.
        other = build_or_load_index(
            "str", clustered_points[:120], queries, snapshot_path=path,
            leaf_capacity=32, seed=4,
        )
        assert other.name == "STR"
        assert len(other) == 120
        # The stale snapshot was overwritten with the matching recipe.
        assert load_snapshot(path).name == "STR"

    def test_structural_seed_or_workload_change_is_rebuilt(
        self, clustered_points, small_workload, tmp_path, monkeypatch
    ):
        """The helper records the build request; changing it must rebuild."""
        points = clustered_points[:300]
        queries = small_workload.queries[:8]
        path = tmp_path / "w.snapshot"
        build_or_load_index(
            "wazi", points, queries, snapshot_path=path, leaf_capacity=32, seed=1
        )
        import repro.api as api

        calls = []
        original = api.build_index

        def counting(*args, **kwargs):
            calls.append(args)
            return original(*args, **kwargs)

        monkeypatch.setattr(api, "build_index", counting)
        # Different seed: rebuild.
        build_or_load_index(
            "wazi", points, queries, snapshot_path=path, leaf_capacity=32, seed=2
        )
        assert len(calls) == 1
        # Different workload content (same size): rebuild.
        build_or_load_index(
            "wazi", points, list(reversed(queries)), snapshot_path=path,
            leaf_capacity=32, seed=2,
        )
        assert len(calls) == 2
        # Identical request: served from the snapshot.
        build_or_load_index(
            "wazi", points, list(reversed(queries)), snapshot_path=path,
            leaf_capacity=32, seed=2,
        )
        assert len(calls) == 2

    def test_bare_save_snapshot_is_not_served_by_helper(
        self, clustered_points, tmp_path
    ):
        """No build_request recorded -> the helper conservatively rebuilds."""
        points = clustered_points[:200]
        path = tmp_path / "bare.snapshot"
        save_snapshot(build_index("base", points, leaf_capacity=16), path)
        import repro.api as api

        assert not api._snapshot_matches_request(path, "base", points, 16, 0)

    def test_extra_kwargs_force_structural_rebuild(
        self, clustered_points, small_workload, tmp_path
    ):
        """kwargs live in the recorded build_request: differing ones rebuild.

        (An identical repeated request, kwargs included, is served from the
        snapshot — the rebuild here happens because the stored request has
        no ``max_depth`` while the new one does.)
        """
        points = clustered_points[:200]
        path = tmp_path / "kw.snapshot"
        build_or_load_index(
            "base", points, snapshot_path=path, leaf_capacity=16, seed=4
        )
        index = build_or_load_index(
            "base", points, snapshot_path=path, leaf_capacity=16, seed=4, max_depth=2
        )
        assert index.max_depth == 2

    def test_same_dataset_size_different_content_is_rebuilt(
        self, clustered_points, tmp_path
    ):
        points = clustered_points[:200]
        path = tmp_path / "fp.snapshot"
        build_or_load_index("base", points, snapshot_path=path, leaf_capacity=16, seed=4)
        other = [Point(p.x + 1.5, p.y) for p in points]
        index = build_or_load_index(
            "base", other, snapshot_path=path, leaf_capacity=16, seed=4
        )
        assert index.point_query(other[0])
        assert not index.point_query(points[0]) or points[0] in other

    def test_same_class_different_leaf_capacity_is_rebuilt(
        self, clustered_points, small_workload, tmp_path
    ):
        points = clustered_points[:200]
        queries = small_workload.queries[:5]
        path = tmp_path / "cap.snapshot"
        build_or_load_index(
            "base", points, queries, snapshot_path=path, leaf_capacity=8, seed=4
        )
        index = build_or_load_index(
            "base", points, queries, snapshot_path=path, leaf_capacity=64, seed=4
        )
        assert index.leaf_capacity == 64

    def test_rebuild_recipe_seed_mismatch_is_rebuilt(self, uniform_points, tmp_path):
        """The recipe records the seed; a different request must not reuse it."""
        path = tmp_path / "flood.snapshot"
        build_or_load_index(
            "flood", uniform_points, snapshot_path=path, leaf_capacity=32, seed=1
        )
        import repro.api as api

        assert api._snapshot_matches_request(path, "flood", uniform_points, 32, 1)
        assert not api._snapshot_matches_request(path, "flood", uniform_points, 32, 2)
        # Same size, different content: the fingerprint must catch it.
        shifted = [Point(p.x + 0.25, p.y) for p in uniform_points]
        assert not api._snapshot_matches_request(path, "flood", shifted, 32, 1)

    def test_non_zindex_uses_rebuild_recipe(self, uniform_points, tmp_path):
        path = tmp_path / "str.snapshot"
        first = build_or_load_index(
            "str", uniform_points, snapshot_path=path, leaf_capacity=32, seed=4
        )
        second = build_or_load_index(
            "str", uniform_points, snapshot_path=path, leaf_capacity=32, seed=4
        )
        query = Rect(0.2, 0.2, 0.7, 0.7)
        assert as_rows(first.range_query(query)) == as_rows(second.range_query(query))


class TestBinaryDatasetCodecs:
    def test_points_roundtrip(self, uniform_points, tmp_path):
        path = tmp_path / "points.cols"
        save_points_binary(uniform_points, path)
        assert load_points_binary(path) == uniform_points
        xs, ys = load_points_columns(path)
        assert xs.shape == (len(uniform_points),)
        assert float(xs[0]) == uniform_points[0].x

    def test_empty_points(self, tmp_path):
        path = tmp_path / "empty.cols"
        save_points_binary([], path)
        assert load_points_binary(path) == []

    def test_queries_roundtrip(self, sample_queries, tmp_path):
        path = tmp_path / "queries.cols"
        save_queries_binary(sample_queries, path)
        assert load_queries_binary(path) == sample_queries

    def test_kind_mismatch_rejected(self, uniform_points, tmp_path):
        path = tmp_path / "points.cols"
        save_points_binary(uniform_points[:5], path)
        with pytest.raises(SnapshotFormatError):
            load_queries_binary(path)

    def test_mismatched_column_lengths_refused(self, tmp_path):
        from repro.persistence import write_container
        from repro.persistence.arrays import ARRAYS_FORMAT_VERSION, KIND_POINTS

        path = tmp_path / "bad.cols"
        write_container(
            path,
            {"kind": KIND_POINTS, "format_version": ARRAYS_FORMAT_VERSION},
            {"xs": np.zeros(3), "ys": np.zeros(2)},
        )
        with pytest.raises(SnapshotFormatError):
            load_points_binary(path)

    def test_malformed_json_rows_raise_persistence_error(self, tmp_path):
        import json as json_module

        from repro.persistence import PersistenceError, load_points, load_queries

        path = tmp_path / "rows.json"
        path.write_text(json_module.dumps(
            {"format_version": 1, "kind": "points", "points": [[1.0, 2.0, 3.0]]}
        ))
        with pytest.raises(PersistenceError):
            load_points(path)
        path.write_text(json_module.dumps(
            {"format_version": 1, "kind": "queries", "queries": [["a", 0, 1, 1]]}
        ))
        with pytest.raises(PersistenceError):
            load_queries(path)
