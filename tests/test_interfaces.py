"""Tests for the SpatialIndex protocol defaults and the brute-force oracles."""

import pytest

from repro.baselines import ZPGMIndex
from repro.geometry import Point, Rect
from repro.interfaces import SpatialIndex, brute_force_knn, brute_force_range
from repro.zindex import BaseZIndex


class TestBruteForceOracles:
    def test_brute_force_range(self, uniform_points):
        query = Rect(0.25, 0.25, 0.75, 0.75)
        result = brute_force_range(uniform_points, query)
        assert all(query.contains_xy(p.x, p.y) for p in result)
        outside = [p for p in uniform_points if not query.contains_xy(p.x, p.y)]
        assert len(result) + len(outside) == len(uniform_points)

    def test_brute_force_knn_ordering(self, uniform_points):
        center = Point(0.5, 0.5)
        neighbours = brute_force_knn(uniform_points, center, 7)
        distances = [p.distance_squared(center) for p in neighbours]
        assert distances == sorted(distances)
        assert len(neighbours) == 7

    def test_brute_force_knn_k_larger_than_data(self):
        points = [Point(0, 0), Point(1, 1)]
        assert len(brute_force_knn(points, Point(0, 0), 10)) == 2


class TestSpatialIndexDefaults:
    def test_updates_unsupported_by_default(self, clustered_points):
        index = ZPGMIndex(clustered_points[:200])
        with pytest.raises(NotImplementedError):
            index.insert(Point(0.0, 0.0))
        with pytest.raises(NotImplementedError):
            index.delete(Point(0.0, 0.0))

    def test_range_count_matches_range_query(self, uniform_points):
        index = BaseZIndex(uniform_points, leaf_capacity=16)
        query = Rect(0.1, 0.1, 0.6, 0.4)
        assert index.range_count(query) == len(index.range_query(query))

    def test_knn_zero_or_negative_k(self, uniform_points):
        index = BaseZIndex(uniform_points, leaf_capacity=16)
        assert index.knn(Point(0.5, 0.5), 0) == []
        assert index.knn(Point(0.5, 0.5), -3) == []

    def test_knn_on_empty_index(self):
        index = BaseZIndex([])
        assert index.knn(Point(0.0, 0.0), 5) == []

    def test_knn_k_larger_than_dataset(self):
        points = [Point(float(i), float(i)) for i in range(6)]
        index = BaseZIndex(points, leaf_capacity=4)
        assert len(index.knn(Point(0.0, 0.0), 50)) == 6

    def test_knn_with_explicit_initial_radius(self, uniform_points):
        index = BaseZIndex(uniform_points, leaf_capacity=16)
        center = Point(0.4, 0.6)
        expected = brute_force_knn(uniform_points, center, 3)
        got = index.knn(center, 3, initial_radius=0.001)
        expected_distances = sorted(p.distance_squared(center) for p in expected)
        got_distances = sorted(p.distance_squared(center) for p in got)
        assert got_distances == pytest.approx(expected_distances)

    def test_batch_knn_default_equals_per_center_loop(self, uniform_points):
        index = ZPGMIndex(uniform_points)
        centers = uniform_points[:8]
        assert index.batch_knn(centers, 4) == [index.knn(c, 4) for c in centers]

    def test_batch_radius_query_default_is_exact(self, uniform_points):
        index = ZPGMIndex(uniform_points)
        centers = uniform_points[:8]
        results = index.batch_radius_query(centers, 0.08)
        for center, got in zip(centers, results):
            expected = [
                p for p in index.range_query(
                    Rect(center.x - 0.08, center.y - 0.08, center.x + 0.08, center.y + 0.08)
                )
                if p.distance_squared(center) <= 0.08 * 0.08
            ]
            assert got == expected

    def test_batch_radius_query_override_matches_default(self, uniform_points):
        """The Z-index columnar override agrees with the protocol default,
        results and counters alike."""
        index = BaseZIndex(uniform_points, leaf_capacity=16)
        centers = uniform_points[:10] + [Point(5.0, 5.0)]
        index.reset_counters()
        got = index.batch_radius_query(centers, 0.06)
        override_counters = index.counters.snapshot()
        index.reset_counters()
        expected = SpatialIndex.batch_radius_query(index, centers, 0.06)
        default_counters = index.counters.snapshot()
        assert got == expected
        assert override_counters == default_counters

    def test_reset_counters(self, uniform_points):
        index = BaseZIndex(uniform_points, leaf_capacity=16)
        index.range_query(Rect(0, 0, 1, 1))
        assert index.counters.points_filtered > 0
        index.reset_counters()
        assert index.counters.points_filtered == 0

    def test_far_away_knn_still_finds_neighbours(self, uniform_points):
        """The expanding window must keep doubling until it reaches the data."""
        index = BaseZIndex(uniform_points, leaf_capacity=16)
        center = Point(10.0, 10.0)
        expected = brute_force_knn(uniform_points, center, 2)
        got = index.knn(center, 2)
        expected_distances = sorted(p.distance_squared(center) for p in expected)
        got_distances = sorted(p.distance_squared(center) for p in got)
        assert got_distances == pytest.approx(expected_distances)
