"""Plan-cache correctness: a cached engine must be indistinguishable from
an uncached one under *any* interleaving of queries and state changes.

The cache keys by exact plan parameters and invalidates through the flat
generation counter plus index identity (see :mod:`repro.plancache`), so
the properties to pin down are:

* differential: a cached engine and an uncached twin driven through the
  same random sequence of execute / insert / delete / adapt operations
  always return identical results — a stale hit would split them;
* keying: ``count_only`` and ``limit`` variants never alias;
* accounting: every lookup is exactly one hit or one miss, evictions and
  invalidations are counted when they happen;
* bounding: the LRU never exceeds its capacity.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import SpatialEngine
from repro.geometry import Point, Rect
from repro.plancache import MISS, CacheStats, PlanCache
from repro.query import KnnQuery, PointQuery, RadiusQuery, RangeQuery
from repro.workloads import Workload, generate_dataset


# ---------------------------------------------------------------------------
# PlanCache unit behaviour (with a minimal index stand-in)
# ---------------------------------------------------------------------------


class FakeIndex:
    """The only contract the cache relies on: a generation counter."""

    def __init__(self, generation=0):
        self._flat_generation = generation


class TestPlanCacheUnit:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)
        with pytest.raises(ValueError):
            PlanCache(capacity=-3)

    def test_empty_lookup_is_a_counted_miss(self):
        cache = PlanCache()
        index = FakeIndex()
        assert cache.lookup("k", index) is MISS
        assert cache.stats.snapshot() == {
            "hits": 0, "misses": 1, "evictions": 0, "invalidations": 0,
        }

    def test_store_then_lookup_hits(self):
        cache = PlanCache()
        index = FakeIndex()
        assert cache.store("k", index, 42)
        assert cache.lookup("k", index) == 42
        assert cache.stats.hits == 1

    def test_none_is_a_cacheable_value(self):
        cache = PlanCache()
        index = FakeIndex()
        cache.store("k", index, None)
        assert cache.lookup("k", index) is None  # not MISS

    def test_uncachable_index_never_stores_and_always_misses(self):
        cache = PlanCache()
        plain = object()  # no _flat_generation
        assert not cache.store("k", plain, 42)
        assert cache.lookup("k", plain) is MISS
        assert len(cache) == 0

    def test_generation_bump_invalidates(self):
        cache = PlanCache()
        index = FakeIndex(generation=7)
        cache.store("k", index, "old")
        index._flat_generation = 8
        assert cache.lookup("k", index) is MISS
        assert cache.stats.invalidations == 1
        assert len(cache) == 0  # dropped eagerly, not left to LRU pressure

    def test_identity_change_invalidates_even_at_same_generation(self):
        cache = PlanCache()
        first = FakeIndex(generation=3)
        cache.store("k", first, "first")
        impostor = FakeIndex(generation=3)
        assert cache.lookup("k", impostor) is MISS
        assert cache.stats.invalidations == 1

    def test_dead_index_entry_invalidates(self):
        cache = PlanCache()
        index = FakeIndex()
        cache.store("k", index, 1)
        del index
        assert cache.lookup("k", FakeIndex()) is MISS

    def test_lru_eviction_order_and_count(self):
        cache = PlanCache(capacity=2)
        index = FakeIndex()
        cache.store("a", index, 1)
        cache.store("b", index, 2)
        cache.lookup("a", index)      # refresh "a": now "b" is the LRU
        cache.store("c", index, 3)    # evicts "b"
        assert cache.keys() == ["a", "c"]
        assert cache.stats.evictions == 1
        assert cache.lookup("b", index) is MISS
        assert cache.lookup("a", index) == 1
        assert cache.lookup("c", index) == 3

    def test_len_never_exceeds_capacity(self):
        cache = PlanCache(capacity=4)
        index = FakeIndex()
        for i in range(20):
            cache.store(i, index, i)
            assert len(cache) <= 4

    def test_restore_moves_key_to_fresh_end(self):
        cache = PlanCache(capacity=2)
        index = FakeIndex()
        cache.store("a", index, 1)
        cache.store("b", index, 2)
        cache.store("a", index, 10)   # re-store refreshes recency
        cache.store("c", index, 3)    # so "b" is evicted, not "a"
        assert cache.lookup("a", index) == 10
        assert cache.lookup("b", index) is MISS

    def test_clear_drops_entries_but_keeps_lifetime_stats(self):
        cache = PlanCache()
        index = FakeIndex()
        cache.store("k", index, 1)
        cache.lookup("k", index)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1
        assert cache.lookup("k", index) is MISS

    def test_stats_derived_properties(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.lookups == 4
        assert stats.hit_rate == pytest.approx(0.75)
        assert CacheStats().hit_rate == 0.0


# ---------------------------------------------------------------------------
# Engine integration
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def cached_pair_scenario():
    points = generate_dataset("newyork", 400, seed=6)
    rect_pool = [
        Rect(p.x - w, p.y - w, p.x + w, p.y + w)
        for p in points[::40]
        for w in (0.02, 0.3)
    ]
    center_pool = [Point(p.x, p.y) for p in points[::60]]
    return points, rect_pool, center_pool


def build_pair(points):
    """A cached engine and its uncached twin, built identically."""
    cached = SpatialEngine.build(
        "wazi", points, leaf_capacity=16, seed=2, plan_cache=True
    )
    plain = SpatialEngine.build("wazi", points, leaf_capacity=16, seed=2)
    assert cached.plan_cache is not None and plain.plan_cache is None
    return cached, plain


def observable(value):
    """A comparable projection of whatever execute() returned."""
    if isinstance(value, (int, bool)):
        return value
    xs, ys = value.as_arrays()
    return (xs.tobytes(), ys.tobytes())


class TestEngineNeverServesStale:
    """The core property: cached and uncached engines are indistinguishable."""

    OPS = st.lists(
        st.one_of(
            st.tuples(st.just("range"), st.integers(0, 19), st.booleans(),
                      st.sampled_from([None, 3])),
            st.tuples(st.just("knn"), st.integers(0, 6), st.integers(1, 8)),
            st.tuples(st.just("radius"), st.integers(0, 6),
                      st.sampled_from([0.02, 0.08])),
            st.tuples(st.just("insert"), st.integers(0, 2**20)),
            st.tuples(st.just("delete"), st.integers(0, 399)),
            st.tuples(st.just("adapt"), st.integers(0, 19)),
        ),
        min_size=1,
        max_size=40,
    )

    @settings(max_examples=12, deadline=None)
    @given(ops=OPS)
    def test_differential_against_uncached_twin(self, cached_pair_scenario, ops):
        points, rect_pool, center_pool = cached_pair_scenario
        cached, plain = build_pair(points)
        live = list(points)
        for op in ops:
            if op[0] == "range":
                _, i, count_only, limit = op
                plan = RangeQuery(rect_pool[i % len(rect_pool)])
                # Issue twice so the second call is a guaranteed exact
                # repeat — the hit path must agree with the miss path.
                for _ in range(2):
                    got = cached.execute(plan, count_only=count_only, limit=limit)
                    want = plain.execute(plan, count_only=count_only, limit=limit)
                    assert observable(got) == observable(want)
            elif op[0] == "knn":
                _, i, k = op
                plan = KnnQuery(center_pool[i % len(center_pool)], k)
                for _ in range(2):
                    assert observable(cached.execute(plan)) == observable(
                        plain.execute(plan)
                    )
            elif op[0] == "radius":
                _, i, radius = op
                plan = RadiusQuery(center_pool[i % len(center_pool)], radius)
                for _ in range(2):
                    assert observable(cached.execute(plan)) == observable(
                        plain.execute(plan)
                    )
            elif op[0] == "insert":
                point = Point((op[1] % 997) / 997.0, (op[1] % 991) / 991.0)
                cached.insert(point)
                plain.insert(point)
                live.append(point)
            elif op[0] == "delete":
                victim = live[op[1] % len(live)]
                assert cached.delete(victim) == plain.delete(victim)
                live = [p for p in live if p is not victim]
            elif op[0] == "adapt":
                workload = Workload(queries=[rect_pool[op[1] % len(rect_pool)]])
                cached.adapt(workload, tune_leaf_capacity=False)
                plain.adapt(workload, tune_leaf_capacity=False)

    def test_execute_many_hit_miss_merge_preserves_order(self, cached_pair_scenario):
        points, rect_pool, _ = cached_pair_scenario
        cached, plain = build_pair(points)
        plans = [RangeQuery(r) for r in rect_pool[:8]]
        # Pre-warm an arbitrary subset so the batch mixes hits and misses.
        for plan in plans[::2]:
            cached.execute(plan)
        for count_only in (False, True):
            got = cached.execute_many(plans, count_only=count_only)
            want = plain.execute_many(plans, count_only=count_only)
            assert [observable(v) for v in got] == [observable(v) for v in want]

    def test_mutation_between_batches_invalidates(self, cached_pair_scenario):
        points, rect_pool, _ = cached_pair_scenario
        cached, plain = build_pair(points)
        rect = rect_pool[0]
        plans = [RangeQuery(rect)]
        first = cached.execute_many(plans, count_only=True)
        inside = Point((rect.xmin + rect.xmax) / 2, (rect.ymin + rect.ymax) / 2)
        cached.insert(inside)
        plain.insert(inside)
        second = cached.execute_many(plans, count_only=True)
        assert second[0] == first[0] + 1
        assert second == plain.execute_many(plans, count_only=True)

    def test_adapt_invalidates_without_hooks(self, cached_pair_scenario):
        points, rect_pool, _ = cached_pair_scenario
        cached, _ = build_pair(points)
        plan = RangeQuery(rect_pool[0])
        before = cached.execute(plan, count_only=True)
        cached.adapt(Workload(queries=rect_pool[:4]), tune_leaf_capacity=False)
        invalidations_before = cached.plan_cache.stats.invalidations
        after = cached.execute(plan, count_only=True)
        assert after == before
        assert cached.plan_cache.stats.invalidations == invalidations_before + 1


class TestKeySeparation:
    def test_count_only_and_limit_do_not_alias(self, cached_pair_scenario):
        points, rect_pool, _ = cached_pair_scenario
        cached, plain = build_pair(points)
        rect = max(
            rect_pool, key=lambda r: plain.execute(RangeQuery(r), count_only=True)
        )
        full = plain.execute(RangeQuery(rect), count_only=True)
        assert full >= 2, "scenario needs a rect with at least 2 matches"
        plan = RangeQuery(rect)
        assert cached.execute(plan, count_only=True) == full
        assert cached.execute(plan, count_only=True, limit=1) == 1
        assert len(cached.execute(plan, limit=1)) == 1
        assert len(cached.execute(plan)) == full
        # Repeats of each variant still answer from their own entries.
        assert cached.execute(plan, count_only=True) == full
        assert len(cached.execute(plan, limit=1)) == 1

    def test_capped_count_hits_still_record_true_counts(self, cached_pair_scenario):
        points, rect_pool, _ = cached_pair_scenario
        cached, plain = build_pair(points)
        rect = max(
            rect_pool, key=lambda r: plain.execute(RangeQuery(r), count_only=True)
        )
        full = plain.execute(RangeQuery(rect), count_only=True)
        assert full >= 2
        cached.start_recording()
        plan = RangeQuery(rect)
        for _ in range(2):  # miss then hit: both must log the uncapped count
            assert cached.execute(plan, count_only=True, limit=1) == 1
        log = cached.workload_log
        recorded = log._range_counts[:log.num_ranges]
        assert list(recorded) == [full, full]

    def test_point_queries_are_never_cached(self, cached_pair_scenario):
        points, _, _ = cached_pair_scenario
        cached, _ = build_pair(points)
        plan = PointQuery(points[0])
        assert cached.execute(plan) is True
        assert len(cached.plan_cache) == 0


class TestHitAccounting:
    def test_exact_hit_and_miss_counts_single_plans(self, cached_pair_scenario):
        points, rect_pool, _ = cached_pair_scenario
        cached, _ = build_pair(points)
        stats = cached.plan_cache.stats
        plans = [RangeQuery(r) for r in rect_pool[:5]]
        for plan in plans:
            cached.execute(plan)
        assert (stats.hits, stats.misses) == (0, 5)
        for plan in plans:
            cached.execute(plan)
        assert (stats.hits, stats.misses) == (5, 5)
        assert stats.lookups == 10
        assert stats.hit_rate == pytest.approx(0.5)

    def test_exact_hit_and_miss_counts_batches(self, cached_pair_scenario):
        points, rect_pool, _ = cached_pair_scenario
        cached, _ = build_pair(points)
        stats = cached.plan_cache.stats
        plans = [RangeQuery(r) for r in rect_pool[:6]]
        cached.execute_many(plans, count_only=True)
        assert (stats.hits, stats.misses) == (0, 6)
        cached.execute_many(plans, count_only=True)
        assert (stats.hits, stats.misses) == (6, 6)
        # A half-overlapping batch: 3 hits, 3 misses.
        shifted = plans[3:] + [RangeQuery(r) for r in rect_pool[6:9]]
        cached.execute_many(shifted, count_only=True)
        assert (stats.hits, stats.misses) == (9, 9)

    def test_eviction_pressure_counted(self, cached_pair_scenario):
        points, rect_pool, _ = cached_pair_scenario
        points = list(points)
        cached = SpatialEngine.build(
            "wazi", points, leaf_capacity=16, seed=2, plan_cache=4
        )
        assert cached.plan_cache.capacity == 4
        for rect in rect_pool[:10]:
            cached.execute(RangeQuery(rect), count_only=True)
        assert len(cached.plan_cache) == 4
        assert cached.plan_cache.stats.evictions == 6


class TestConstructorArgument:
    def test_accepted_shapes(self, cached_pair_scenario):
        points, _, _ = cached_pair_scenario
        assert SpatialEngine.build("wazi", points, seed=2).plan_cache is None
        assert SpatialEngine.build(
            "wazi", points, seed=2, plan_cache=False
        ).plan_cache is None
        enabled = SpatialEngine.build("wazi", points, seed=2, plan_cache=True)
        assert isinstance(enabled.plan_cache, PlanCache)
        shared = PlanCache(capacity=8)
        adopted = SpatialEngine.build("wazi", points, seed=2, plan_cache=shared)
        assert adopted.plan_cache is shared

    def test_rejected_shapes(self, cached_pair_scenario):
        points, _, _ = cached_pair_scenario
        with pytest.raises(TypeError, match="plan_cache"):
            SpatialEngine.build("wazi", points, seed=2, plan_cache="big")

    def test_uncachable_index_engine_still_correct(self, cached_pair_scenario):
        points, rect_pool, _ = cached_pair_scenario
        # R-tree exposes no flat generation: the cache must pass through.
        cached = SpatialEngine.build(
            "rtree", points, leaf_capacity=16, seed=2, plan_cache=True
        )
        plain = SpatialEngine.build("rtree", points, leaf_capacity=16, seed=2)
        plan = RangeQuery(rect_pool[0])
        for _ in range(2):
            assert observable(cached.execute(plan)) == observable(
                plain.execute(plan)
            )
        assert len(cached.plan_cache) == 0
