"""Tests for the first-class Workload object and the WorkloadLog observer."""

import numpy as np
import pytest

from repro.geometry import Point, Rect
from repro.persistence import load_workload, save_workload
from repro.workload_log import WorkloadLog
from repro.workloads import (
    ProbeWorkload,
    Workload,
    drift_scenario,
    generate_knn_workload,
    generate_range_workload,
    hotspot_workload,
    moving_hotspot,
    uniform_centers_workload,
)
from repro.workloads.drift import SCENARIO_KINDS


@pytest.fixture()
def mixed_workload():
    return Workload(
        queries=[Rect(0.0, 0.0, 0.5, 0.5), Rect(0.25, 0.25, 1.0, 1.0)],
        region="unit",
        seed=5,
        description="mixed",
        knn_probes=[Point(0.1, 0.2), Point(0.8, 0.9), Point(0.5, 0.5)],
        knn_k=7,
        radius_probes=[Point(0.3, 0.3)],
        radius_radii=0.125,
    )


class TestWorkloadConstruction:
    def test_legacy_positional_shape_still_works(self):
        rects = [Rect(0, 0, 1, 1), Rect(1, 1, 2, 2)]
        workload = Workload(rects, "newyork", 0.0256, 3, "legacy", {"a": 1})
        assert workload.queries == rects
        assert workload.region == "newyork"
        assert workload.selectivity_percent == 0.0256
        assert workload.seed == 3
        assert workload.extra == {"a": 1}

    def test_sequence_protocol_over_rects(self, mixed_workload):
        assert mixed_workload[0] == Rect(0.0, 0.0, 0.5, 0.5)
        assert list(iter(mixed_workload))[:2] == mixed_workload.queries

    def test_len_counts_every_kind(self, mixed_workload):
        assert len(mixed_workload) == 2 + 3 + 1
        assert mixed_workload.num_ranges == 2
        assert mixed_workload.num_knn == 3
        assert mixed_workload.num_radius == 1
        assert mixed_workload.kinds == ("range", "knn", "radius")

    def test_columnar_tables(self, mixed_workload):
        assert mixed_workload.ranges.shape == (2, 4)
        assert mixed_workload.knn_probes.shape == (3, 2)
        assert mixed_workload.knn_k.tolist() == [7, 7, 7]
        assert mixed_workload.radius_probes.shape == (1, 2)
        assert mixed_workload.radius_radii.tolist() == [0.125]

    def test_tables_are_read_only(self, mixed_workload):
        with pytest.raises(ValueError):
            mixed_workload.ranges[0, 0] = 99.0
        with pytest.raises(ValueError):
            mixed_workload.knn_k[0] = 1

    def test_frozen_attributes(self, mixed_workload):
        with pytest.raises(AttributeError):
            mixed_workload.region = "changed"
        with pytest.raises(AttributeError):
            mixed_workload.seed = 1

    def test_views(self, mixed_workload):
        assert len(mixed_workload.range_view) == 2
        assert mixed_workload.range_view.rects() == mixed_workload.queries
        assert len(mixed_workload.knn_view) == 3
        assert mixed_workload.knn_view.points()[0] == Point(0.1, 0.2)
        assert mixed_workload.knn_view.ks.tolist() == [7, 7, 7]
        assert len(mixed_workload.radius_view) == 1
        assert mixed_workload.radius_view.radii.tolist() == [0.125]

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            Workload(queries=[Rect(0, 0, 1, 1)], ranges=np.zeros((1, 4)))
        with pytest.raises(ValueError):
            Workload(ranges=np.array([[1.0, 0.0, 0.0, 1.0]]))  # xmin > xmax
        with pytest.raises(ValueError):
            Workload(knn_probes=[Point(0, 0)], knn_k=0)
        with pytest.raises(ValueError):
            Workload(knn_probes=[Point(0, 0)])  # k missing
        with pytest.raises(ValueError):
            Workload(radius_probes=[Point(0, 0)], radius_radii=-1.0)
        with pytest.raises(ValueError):
            Workload(knn_probes=[Point(0, 0), Point(1, 1)], knn_k=[1])

    def test_equality_by_content(self, mixed_workload):
        twin = Workload(
            queries=list(mixed_workload.queries),
            region="unit", seed=5, description="mixed",
            knn_probes=mixed_workload.knn_probes, knn_k=mixed_workload.knn_k,
            radius_probes=mixed_workload.radius_probes,
            radius_radii=mixed_workload.radius_radii,
        )
        assert twin == mixed_workload
        assert Workload() != mixed_workload

    def test_generators_return_first_class_workload(self):
        workload = generate_range_workload("newyork", 20, 0.0256, seed=1)
        assert isinstance(workload, Workload)
        assert workload.ranges.shape == (20, 4)
        assert workload.num_knn == 0

    def test_probe_workload_adapter(self):
        probe = generate_knn_workload("newyork", 15, k=5, seed=2)
        assert isinstance(probe, ProbeWorkload)
        lifted = probe.as_workload()
        assert isinstance(lifted, Workload)
        assert lifted.num_knn == 15
        assert lifted.knn_k.tolist() == [5] * 15
        as_radius = probe.as_workload(radius=0.25)
        assert as_radius.num_radius == 15
        with pytest.raises(ValueError):
            ProbeWorkload(probes=probe.probes, k=0).as_workload()


class TestWorkloadAlgebra:
    def test_merge_concatenates_every_kind(self, mixed_workload):
        merged = mixed_workload.merge(mixed_workload)
        assert merged.num_ranges == 4
        assert merged.num_knn == 6
        assert merged.num_radius == 2
        assert np.array_equal(merged.ranges[:2], mixed_workload.ranges)
        also = mixed_workload + mixed_workload
        assert also == merged

    def test_sample_preserves_rows(self, mixed_workload):
        sampled = mixed_workload.sample(3, seed=1)
        assert len(sampled) == 3
        # every sampled row exists in the original tables
        for row in sampled.ranges:
            assert any(np.array_equal(row, r) for r in mixed_workload.ranges)
        with pytest.raises(ValueError):
            mixed_workload.sample(100)

    def test_split_partitions(self, mixed_workload):
        first, second = mixed_workload.split(0.5, seed=2)
        assert len(first) + len(second) == len(mixed_workload)
        assert len(first) == 3

    def test_fingerprint_tracks_content(self, mixed_workload):
        twin = Workload(
            queries=list(mixed_workload.queries),
            knn_probes=mixed_workload.knn_probes, knn_k=mixed_workload.knn_k,
            radius_probes=mixed_workload.radius_probes,
            radius_radii=mixed_workload.radius_radii,
        )
        assert twin.fingerprint() == mixed_workload.fingerprint()
        assert Workload().fingerprint() != mixed_workload.fingerprint()
        assert mixed_workload.sample(3, seed=0).fingerprint() != mixed_workload.fingerprint()

    def test_equivalent_ranges_covers_probes(self, mixed_workload):
        table = mixed_workload.equivalent_ranges(
            total_points=1000, extent=Rect(0, 0, 1, 1)
        )
        assert table.shape == (6, 4)
        # radius probe becomes its bounding square
        square = table[-1]
        assert square.tolist() == [0.3 - 0.125, 0.3 - 0.125, 0.3 + 0.125, 0.3 + 0.125]
        # knn squares have positive area when density information is given
        knn_rows = table[2:5]
        assert (knn_rows[:, 2] > knn_rows[:, 0]).all()
        # without density information knn probes degrade to points
        degenerate = mixed_workload.equivalent_ranges()
        assert (degenerate[2:5, 2] == degenerate[2:5, 0]).all()

    def test_to_plans_round_trip(self, mixed_workload):
        plans = mixed_workload.to_plans()
        assert len(plans) == len(mixed_workload)


class TestWorkloadPersistence:
    def test_round_trip_byte_identical(self, mixed_workload, tmp_path):
        path = tmp_path / "workload.snapshot"
        save_workload(mixed_workload, path)
        first_bytes = path.read_bytes()
        restored = load_workload(path)
        assert restored == mixed_workload
        save_workload(restored, path)
        assert path.read_bytes() == first_bytes

    def test_save_load_methods(self, mixed_workload, tmp_path):
        path = tmp_path / "workload.snapshot"
        mixed_workload.save(path)
        assert Workload.load(path) == mixed_workload

    def test_load_snapshot_refuses_workload_container(self, mixed_workload, tmp_path):
        from repro.persistence import SnapshotError, load_snapshot

        path = tmp_path / "workload.snapshot"
        mixed_workload.save(path)
        with pytest.raises(SnapshotError):
            load_snapshot(path)

    def test_load_workload_refuses_index_container(self, tmp_path, uniform_points):
        from repro.engine import SpatialEngine
        from repro.persistence import SnapshotError

        path = tmp_path / "index.snapshot"
        SpatialEngine.build("base", uniform_points).save(path)
        with pytest.raises(SnapshotError):
            load_workload(path)


class TestWorkloadLog:
    def test_scalar_and_batch_range_appends(self):
        log = WorkloadLog()
        log.record_range(Rect(0, 0, 1, 1))
        log.record_range(Rect(1, 1, 2, 2), count=9)
        log.record_ranges([Rect(2, 2, 3, 3), Rect(3, 3, 4, 4)], counts=[1, 2])
        assert log.num_ranges == 4
        assert log.range_rects[0].tolist() == [0, 0, 1, 1]
        assert log.range_counts.tolist() == [-1, 9, 1, 2]

    def test_knn_and_radius_appends(self):
        log = WorkloadLog()
        log.record_knn(Point(0.5, 0.5), 10)
        log.record_knns([Point(0, 0), Point(1, 1)], 3)
        log.record_radius(Point(0.2, 0.2), 0.5)
        log.record_radii([Point(0.4, 0.4)], 0.25)
        assert log.num_knn == 3
        assert log.num_radius == 2
        assert len(log) == 5

    def test_growth_beyond_initial_capacity(self):
        log = WorkloadLog()
        for i in range(1000):
            log.record_range(Rect(i, i, i + 1, i + 1), count=i)
        assert log.num_ranges == 1000
        assert log.range_rects[-1].tolist() == [999, 999, 1000, 1000]
        assert log.range_counts[-1] == 999

    def test_snapshot_freezes_contents(self):
        log = WorkloadLog()
        log.record_ranges([Rect(0, 0, 1, 1)], counts=[5])
        log.record_knn(Point(0.5, 0.5), 4)
        snapshot = log.snapshot(region="unit")
        assert isinstance(snapshot, Workload)
        assert snapshot.num_ranges == 1
        assert snapshot.num_knn == 1
        assert snapshot.knn_k.tolist() == [4]
        assert snapshot.region == "unit"
        assert snapshot.extra["observed_range_counts_known"] == 1
        assert snapshot.extra["observed_range_hits"] == 5
        # later appends do not leak into the snapshot
        log.record_range(Rect(9, 9, 10, 10))
        assert snapshot.num_ranges == 1

    def test_snapshot_fingerprint_stable_under_later_appends(self):
        # Regression: snapshot() must copy its live column slices.  A view
        # into the growth buffers would be mutated by in-place appends that
        # do not trigger a reallocation, silently changing a previously
        # captured Workload.
        log = WorkloadLog()
        for i in range(8):
            log.record_range(Rect(i, i, i + 1, i + 1), count=i)
        log.record_knns([Point(0.1, 0.1), Point(0.9, 0.9)], 7)
        log.record_radius(Point(0.5, 0.5), 0.25)
        snapshot = log.snapshot()
        fingerprint = snapshot.fingerprint()
        ranges = snapshot.ranges.copy()
        # Way below the initial buffer capacity: these appends write into
        # the same backing arrays rather than reallocating them.
        for i in range(20):
            log.record_range(Rect(-i, -i, i + 1, i + 1))
            log.record_knn(Point(float(i), float(i)), 1)
            log.record_radius(Point(float(i), 0.0), 9.9)
        assert snapshot.fingerprint() == fingerprint
        assert snapshot.ranges.tolist() == ranges.tolist()
        assert log.snapshot().fingerprint() != fingerprint

    def test_extend_and_from_workload(self):
        log = WorkloadLog()
        log.record_range(Rect(0, 0, 1, 1))
        log.record_knn(Point(0.1, 0.1), 2)
        log.record_radius(Point(0.2, 0.2), 0.3)
        restored = WorkloadLog.from_workload(log.snapshot())
        assert len(restored) == len(log)
        assert restored.snapshot() == log.snapshot()

    def test_clear(self):
        log = WorkloadLog()
        log.record_range(Rect(0, 0, 1, 1))
        log.clear()
        assert len(log) == 0
        assert not log
        assert log.nbytes() > 0  # buffers retained


class TestDriftScenarios:
    @pytest.mark.parametrize("kind", SCENARIO_KINDS)
    def test_scenarios_generate_phases(self, kind):
        phases = drift_scenario(kind, "newyork", num_queries=40, seed=1)
        assert len(phases) >= 2
        for phase in phases:
            assert len(phase.workload) == 40
            assert isinstance(phase.workload, Workload)

    def test_scenarios_deterministic(self):
        a = drift_scenario("hotspot_shift", "newyork", num_queries=30, seed=2)
        b = drift_scenario("hotspot_shift", "newyork", num_queries=30, seed=2)
        for pa, pb in zip(a, b):
            assert pa.workload == pb.workload

    def test_hotspot_concentrates_centers(self):
        broad = uniform_centers_workload("newyork", 200, 0.0256, seed=1)
        hot = hotspot_workload(
            "newyork", 200, 0.0256, hotspot_center=(0.2, 0.2),
            hotspot_fraction=0.1, seed=1,
        )
        def spread(workload):
            centers = np.column_stack([
                (workload.ranges[:, 0] + workload.ranges[:, 2]) / 2,
                (workload.ranges[:, 1] + workload.ranges[:, 3]) / 2,
            ])
            return centers.std(axis=0).sum()
        assert spread(hot) < spread(broad) / 3

    def test_knn_heavy_phase_has_knn_probes(self):
        phases = drift_scenario("knn_heavy", "newyork", num_queries=50, seed=1, k=5)
        assert phases[-1].workload.num_knn > 0
        assert phases[-1].workload.knn_k.tolist() == [5] * phases[-1].workload.num_knn

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            drift_scenario("sideways", "newyork")


class TestMovingHotspot:
    def test_generates_one_phase_per_step(self):
        phases = moving_hotspot("newyork", 6, 25, 0.01, seed=4)
        assert [p.name for p in phases] == [f"step-{i:02d}" for i in range(6)]
        for phase in phases:
            assert len(phase.workload) == 25
            assert isinstance(phase.workload, Workload)

    def test_center_translates_linearly(self):
        phases = moving_hotspot(
            "newyork", 5, 10, 0.01, start=(0.1, 0.2), end=(0.9, 0.6), seed=4
        )
        centers = [tuple(p.workload.extra["hotspot_center"]) for p in phases]
        assert centers[0] == (0.1, 0.2)
        assert centers[-1] == (0.9, 0.6)
        xs = [c[0] for c in centers]
        steps = np.diff(xs)
        assert np.allclose(steps, steps[0])  # uniform increments

    def test_single_step_sits_at_start(self):
        phases = moving_hotspot("newyork", 1, 10, 0.01, start=(0.3, 0.7), seed=0)
        assert len(phases) == 1
        assert tuple(phases[0].workload.extra["hotspot_center"]) == (0.3, 0.7)

    def test_deterministic_and_steps_differ(self):
        a = moving_hotspot("newyork", 4, 15, 0.01, seed=9)
        b = moving_hotspot("newyork", 4, 15, 0.01, seed=9)
        for pa, pb in zip(a, b):
            assert pa.workload == pb.workload
        assert a[0].workload != a[-1].workload  # the hotspot actually moved

    def test_rejects_degenerate_sizes(self):
        with pytest.raises(ValueError):
            moving_hotspot(num_steps=0)
        with pytest.raises(ValueError):
            moving_hotspot(queries_per_step=0)
