"""Unit tests for fixed-capacity data pages."""

import pytest

from repro.geometry import Point, Rect
from repro.storage import Page
from repro.storage.page import PageOverflowError


class TestPageBasics:
    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            Page(0)

    def test_empty_page(self):
        page = Page(4)
        assert len(page) == 0
        assert page.is_empty
        assert not page.is_full
        assert page.bbox is None

    def test_add_and_len(self):
        page = Page(4, [Point(0, 0), Point(1, 1)])
        assert len(page) == 2
        assert Point(1, 1) in page

    def test_iteration_preserves_insertion_order(self):
        points = [Point(3, 1), Point(0, 0), Point(2, 2)]
        page = Page(8, points)
        assert list(page) == points

    def test_overflow_raises(self):
        page = Page(2, [Point(0, 0), Point(1, 1)])
        assert page.is_full
        with pytest.raises(PageOverflowError):
            page.add(Point(2, 2))

    def test_bbox_grows_with_adds(self):
        page = Page(8)
        page.add(Point(1, 1))
        assert page.bbox == Rect(1, 1, 1, 1)
        page.add(Point(-1, 3))
        assert page.bbox == Rect(-1, 1, 1, 3)


class TestPageQueries:
    def test_filter_range(self):
        page = Page(8, [Point(0, 0), Point(2, 2), Point(5, 5)])
        inside = page.filter_range(Rect(1, 1, 3, 3))
        assert inside == [Point(2, 2)]

    def test_filter_range_inclusive_boundaries(self):
        page = Page(8, [Point(1, 1), Point(3, 3)])
        assert len(page.filter_range(Rect(1, 1, 3, 3))) == 2

    def test_count_in_range_matches_filter(self):
        points = [Point(float(i), float(i % 3)) for i in range(8)]
        page = Page(8, points)
        query = Rect(2, 0, 6, 2)
        assert page.count_in_range(query) == len(page.filter_range(query))

    def test_contains_exact(self):
        page = Page(4, [Point(1.5, 2.5)])
        assert page.contains_exact(Point(1.5, 2.5))
        assert not page.contains_exact(Point(1.5, 2.500001))


class TestPageMutation:
    def test_remove_existing(self):
        page = Page(4, [Point(0, 0), Point(1, 1)])
        assert page.remove(Point(0, 0))
        assert len(page) == 1
        assert page.bbox == Rect(1, 1, 1, 1)

    def test_remove_missing_returns_false(self):
        page = Page(4, [Point(0, 0)])
        assert not page.remove(Point(9, 9))
        assert len(page) == 1

    def test_remove_last_point_clears_bbox(self):
        page = Page(4, [Point(0, 0)])
        page.remove(Point(0, 0))
        assert page.bbox is None
        assert page.is_empty


class TestPageAccounting:
    def test_size_bytes_grows_with_points(self):
        empty = Page(16)
        half = Page(16, [Point(i, i) for i in range(8)])
        assert half.size_bytes() > empty.size_bytes()

    def test_repr_mentions_count(self):
        assert "n=2" in repr(Page(4, [Point(0, 0), Point(1, 1)]))


class TestColumnarPage:
    def test_from_arrays_roundtrip(self):
        import numpy as np

        xs = np.array([0.5, 1.5, 2.5])
        ys = np.array([3.0, 1.0, 2.0])
        page = Page.from_arrays(8, xs, ys)
        assert len(page) == 3
        assert page.points == [Point(0.5, 3.0), Point(1.5, 1.0), Point(2.5, 2.0)]
        assert page.bbox == Rect(0.5, 1.0, 2.5, 3.0)

    def test_from_arrays_grows_capacity_for_oversized_input(self):
        import numpy as np

        xs = np.arange(10, dtype=float)
        page = Page.from_arrays(4, xs, xs)
        assert len(page) == 10
        assert page.capacity >= 10

    def test_coordinate_views_track_mutations(self):
        page = Page(4, [Point(1.0, 2.0)])
        assert page.xs.tolist() == [1.0]
        assert page.ys.tolist() == [2.0]
        page.add(Point(3.0, 4.0))
        assert page.xs.tolist() == [1.0, 3.0]
        assert page.ys.tolist() == [2.0, 4.0]
        page.remove(Point(1.0, 2.0))
        assert page.xs.tolist() == [3.0]

    def test_range_mask_matches_filter(self):
        points = [Point(float(i), float(i % 4)) for i in range(12)]
        page = Page(16, points)
        query = Rect(2.0, 1.0, 9.0, 2.0)
        mask = page.range_mask(query)
        selected = [p for p, keep in zip(points, mask.tolist()) if keep]
        assert selected == page.filter_range(query)

    def test_bbox_tuple(self):
        page = Page(4)
        assert page.bbox_tuple() is None
        page.add(Point(2.0, 5.0))
        assert page.bbox_tuple() == (2.0, 5.0, 2.0, 5.0)

    def test_remove_preserves_order_of_remaining_points(self):
        points = [Point(0.0, 0.0), Point(1.0, 1.0), Point(2.0, 2.0), Point(3.0, 3.0)]
        page = Page(8, points)
        page.remove(Point(1.0, 1.0))
        assert page.points == [Point(0.0, 0.0), Point(2.0, 2.0), Point(3.0, 3.0)]

    def test_remove_duplicate_removes_single_occurrence(self):
        page = Page(8, [Point(1.0, 1.0), Point(1.0, 1.0), Point(2.0, 2.0)])
        assert page.remove(Point(1.0, 1.0))
        assert len(page) == 2
        assert page.contains_exact(Point(1.0, 1.0))
