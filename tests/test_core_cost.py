"""Unit tests for the retrieval-cost model (Eq. 1-5)."""

import pytest

from repro.core.cost import (
    ALPHA_WITH_SKIPPING,
    QuadrantCounts,
    best_ordering,
    ordering_cost,
    overlapping_quadrants,
    query_pair_counts,
    single_query_cost,
    workload_cost,
)
from repro.geometry import Rect
from repro.geometry.rect import QUADRANT_A, QUADRANT_B, QUADRANT_C, QUADRANT_D
from repro.zindex.node import ORDER_ABCD, ORDER_ACBD

COUNTS = QuadrantCounts(10.0, 20.0, 30.0, 40.0)
ALPHA = 0.5


class TestOverlappingQuadrants:
    def test_same_quadrant(self):
        assert overlapping_quadrants((QUADRANT_B, QUADRANT_B)) == (QUADRANT_B,)

    def test_bottom_half(self):
        assert overlapping_quadrants((QUADRANT_A, QUADRANT_B)) == (QUADRANT_A, QUADRANT_B)

    def test_left_half(self):
        assert overlapping_quadrants((QUADRANT_A, QUADRANT_C)) == (QUADRANT_A, QUADRANT_C)

    def test_all_quadrants(self):
        assert overlapping_quadrants((QUADRANT_A, QUADRANT_D)) == (
            QUADRANT_A,
            QUADRANT_B,
            QUADRANT_C,
            QUADRANT_D,
        )

    def test_impossible_pair_rejected(self):
        with pytest.raises(ValueError):
            overlapping_quadrants((QUADRANT_B, QUADRANT_C))
        with pytest.raises(ValueError):
            overlapping_quadrants((QUADRANT_D, QUADRANT_A))


class TestSingleQueryCostEq1:
    """The closed-form terms of Eq. 1 (ordering "abcd")."""

    def test_query_in_ad_scans_everything(self):
        cost = single_query_cost((QUADRANT_A, QUADRANT_D), COUNTS, ORDER_ABCD, ALPHA)
        assert cost == pytest.approx(100.0)

    def test_query_in_ac_skips_b(self):
        cost = single_query_cost((QUADRANT_A, QUADRANT_C), COUNTS, ORDER_ABCD, ALPHA)
        assert cost == pytest.approx(10.0 + ALPHA * 20.0 + 30.0)

    def test_query_in_bd_skips_c(self):
        cost = single_query_cost((QUADRANT_B, QUADRANT_D), COUNTS, ORDER_ABCD, ALPHA)
        assert cost == pytest.approx(20.0 + ALPHA * 30.0 + 40.0)

    def test_query_in_ab_scans_adjacent_pair(self):
        cost = single_query_cost((QUADRANT_A, QUADRANT_B), COUNTS, ORDER_ABCD, ALPHA)
        assert cost == pytest.approx(30.0)

    def test_query_in_cd_scans_adjacent_pair(self):
        cost = single_query_cost((QUADRANT_C, QUADRANT_D), COUNTS, ORDER_ABCD, ALPHA)
        assert cost == pytest.approx(70.0)

    @pytest.mark.parametrize(
        "quadrant, expected",
        [(QUADRANT_A, 10.0), (QUADRANT_B, 20.0), (QUADRANT_C, 30.0), (QUADRANT_D, 40.0)],
    )
    def test_query_inside_one_quadrant(self, quadrant, expected):
        cost = single_query_cost((quadrant, quadrant), COUNTS, ORDER_ABCD, ALPHA)
        assert cost == pytest.approx(expected)


class TestSingleQueryCostEq2:
    """The "acbd" ordering (Eq. 2): AC/BD become adjacent, AB/CD sandwich a cell."""

    def test_query_in_ac_is_adjacent(self):
        cost = single_query_cost((QUADRANT_A, QUADRANT_C), COUNTS, ORDER_ACBD, ALPHA)
        assert cost == pytest.approx(40.0)

    def test_query_in_bd_is_adjacent(self):
        cost = single_query_cost((QUADRANT_B, QUADRANT_D), COUNTS, ORDER_ACBD, ALPHA)
        assert cost == pytest.approx(60.0)

    def test_query_in_ab_skips_c(self):
        cost = single_query_cost((QUADRANT_A, QUADRANT_B), COUNTS, ORDER_ACBD, ALPHA)
        assert cost == pytest.approx(10.0 + 20.0 + ALPHA * 30.0)

    def test_query_in_cd_skips_b(self):
        cost = single_query_cost((QUADRANT_C, QUADRANT_D), COUNTS, ORDER_ACBD, ALPHA)
        assert cost == pytest.approx(30.0 + 40.0 + ALPHA * 20.0)

    def test_ad_identical_across_orderings(self):
        abcd = single_query_cost((QUADRANT_A, QUADRANT_D), COUNTS, ORDER_ABCD, ALPHA)
        acbd = single_query_cost((QUADRANT_A, QUADRANT_D), COUNTS, ORDER_ACBD, ALPHA)
        assert abcd == acbd


class TestAlphaBehaviour:
    def test_zero_alpha_removes_skip_cost(self):
        cost = single_query_cost((QUADRANT_A, QUADRANT_C), COUNTS, ORDER_ABCD, 0.0)
        assert cost == pytest.approx(40.0)

    def test_alpha_one_counts_skipped_cell_fully(self):
        cost = single_query_cost((QUADRANT_A, QUADRANT_C), COUNTS, ORDER_ABCD, 1.0)
        assert cost == pytest.approx(60.0)

    def test_cost_monotone_in_alpha(self):
        low = single_query_cost((QUADRANT_B, QUADRANT_D), COUNTS, ORDER_ABCD, ALPHA_WITH_SKIPPING)
        high = single_query_cost((QUADRANT_B, QUADRANT_D), COUNTS, ORDER_ABCD, 0.9)
        assert low < high


class TestWorkloadAggregation:
    # Split at (2, 2) inside a 4x4 space.
    QUERIES = [
        Rect(0.0, 0.0, 1.0, 1.0),   # AA
        Rect(0.5, 0.5, 3.0, 1.0),   # AB
        Rect(0.5, 0.5, 1.0, 3.0),   # AC
        Rect(1.0, 1.0, 3.0, 3.0),   # AD
        Rect(3.0, 0.5, 3.5, 3.0),   # BD
    ]

    def test_query_pair_counts(self):
        pairs = query_pair_counts(self.QUERIES, 2.0, 2.0)
        assert pairs[(QUADRANT_A, QUADRANT_A)] == 1
        assert pairs[(QUADRANT_A, QUADRANT_B)] == 1
        assert pairs[(QUADRANT_A, QUADRANT_C)] == 1
        assert pairs[(QUADRANT_A, QUADRANT_D)] == 1
        assert pairs[(QUADRANT_B, QUADRANT_D)] == 1
        assert sum(pairs.values()) == len(self.QUERIES)

    def test_ordering_cost_equals_sum_of_single_costs(self):
        pairs = query_pair_counts(self.QUERIES, 2.0, 2.0)
        total = ordering_cost(pairs, COUNTS, ORDER_ABCD, ALPHA)
        expected = sum(
            single_query_cost(
                (q.quadrant_of_point(q.xmin, q.ymin, 2.0, 2.0),
                 q.quadrant_of_point(q.xmax, q.ymax, 2.0, 2.0)),
                COUNTS,
                ORDER_ABCD,
                ALPHA,
            )
            for q in self.QUERIES
        )
        assert total == pytest.approx(expected)

    def test_workload_cost_returns_both_orderings(self):
        costs = workload_cost(self.QUERIES, COUNTS, 2.0, 2.0, ALPHA)
        assert set(costs) == {ORDER_ABCD, ORDER_ACBD}
        assert all(value >= 0 for value in costs.values())

    def test_best_ordering_picks_minimum(self):
        ordering, cost = best_ordering(self.QUERIES, COUNTS, 2.0, 2.0, ALPHA)
        costs = workload_cost(self.QUERIES, COUNTS, 2.0, 2.0, ALPHA)
        assert cost == pytest.approx(min(costs.values()))
        assert costs[ordering] == pytest.approx(cost)

    def test_vertical_workload_prefers_acbd(self):
        # Tall, thin queries straddle A and C; "acbd" places those adjacent.
        tall_queries = [Rect(0.5, 0.5, 1.0, 3.5) for _ in range(10)]
        ordering, _ = best_ordering(tall_queries, COUNTS, 2.0, 2.0, ALPHA)
        assert ordering == ORDER_ACBD

    def test_horizontal_workload_prefers_abcd(self):
        wide_queries = [Rect(0.5, 0.5, 3.5, 1.0) for _ in range(10)]
        ordering, _ = best_ordering(wide_queries, COUNTS, 2.0, 2.0, ALPHA)
        assert ordering == ORDER_ABCD


class TestQuadrantCounts:
    def test_indexing_and_total(self):
        assert COUNTS[QUADRANT_A] == 10.0
        assert COUNTS[QUADRANT_D] == 40.0
        assert COUNTS.total == 100.0
