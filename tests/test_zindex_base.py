"""Unit and integration tests for the base Z-index structure."""

import pytest

from repro.geometry import Point, Rect
from repro.interfaces import brute_force_range
from repro.zindex import BaseZIndex, ZIndex, MidpointSplitStrategy


def result_set(points):
    return sorted((p.x, p.y) for p in points)


class TestConstruction:
    def test_empty_index(self):
        index = BaseZIndex([])
        assert len(index) == 0
        assert index.range_query(Rect(0, 0, 1, 1)) == []
        assert not index.point_query(Point(0, 0))
        assert index.extent() is None

    def test_invalid_leaf_capacity(self):
        with pytest.raises(ValueError):
            BaseZIndex([Point(0, 0)], leaf_capacity=0)

    def test_single_point(self):
        index = BaseZIndex([Point(1.0, 2.0)])
        assert len(index) == 1
        assert index.point_query(Point(1.0, 2.0))
        assert index.range_query(Rect(0, 0, 3, 3)) == [Point(1.0, 2.0)]

    def test_all_points_stored(self, clustered_points):
        index = BaseZIndex(clustered_points, leaf_capacity=32)
        assert len(index) == len(clustered_points)
        assert result_set(index.all_points()) == result_set(clustered_points)

    def test_leaf_capacity_respected(self, clustered_points):
        index = BaseZIndex(clustered_points, leaf_capacity=32)
        assert max(index.leaf_sizes()) <= 32

    def test_leaflist_is_linked(self, clustered_points):
        index = BaseZIndex(clustered_points, leaf_capacity=32)
        assert index.leaflist.check_linked()

    def test_duplicate_points_build_as_oversized_leaf(self):
        duplicates = [Point(1.0, 1.0)] * 300
        index = BaseZIndex(duplicates, leaf_capacity=64)
        assert len(index) == 300
        assert index.point_query(Point(1.0, 1.0))
        assert len(index.range_query(Rect(0, 0, 2, 2))) == 300

    def test_depth_and_node_counts(self, clustered_points):
        index = BaseZIndex(clustered_points, leaf_capacity=32)
        internal, leaves = index.node_counts()
        assert leaves == len(index.leaflist)
        assert index.depth() >= 2
        assert internal >= 1

    def test_extent_covers_all_points(self, clustered_points):
        index = BaseZIndex(clustered_points)
        extent = index.extent()
        assert all(extent.contains_xy(p.x, p.y) for p in clustered_points)


class TestPointQueries:
    def test_every_indexed_point_found(self, uniform_points):
        index = BaseZIndex(uniform_points, leaf_capacity=16)
        assert all(index.point_query(p) for p in uniform_points)

    def test_missing_point_not_found(self, uniform_points):
        index = BaseZIndex(uniform_points, leaf_capacity=16)
        assert not index.point_query(Point(2.0, 2.0))

    def test_counters_track_nodes_and_pages(self, uniform_points):
        index = BaseZIndex(uniform_points, leaf_capacity=16)
        index.reset_counters()
        index.point_query(uniform_points[0])
        assert index.counters.nodes_visited >= 1
        assert index.counters.pages_scanned == 1


class TestRangeQueries:
    def test_matches_brute_force(self, uniform_points, sample_queries):
        index = BaseZIndex(uniform_points, leaf_capacity=16)
        for query in sample_queries:
            expected = brute_force_range(uniform_points, query)
            assert result_set(index.range_query(query)) == result_set(expected)

    def test_whole_extent_returns_everything(self, uniform_points):
        index = BaseZIndex(uniform_points, leaf_capacity=16)
        assert len(index.range_query(Rect(-1, -1, 2, 2))) == len(uniform_points)

    def test_empty_region_returns_nothing(self, uniform_points):
        index = BaseZIndex(uniform_points, leaf_capacity=16)
        assert index.range_query(Rect(5.0, 5.0, 6.0, 6.0)) == []

    def test_degenerate_query_rectangle(self, uniform_points):
        index = BaseZIndex(uniform_points, leaf_capacity=16)
        target = uniform_points[0]
        hits = index.range_query(Rect(target.x, target.y, target.x, target.y))
        assert target in hits

    def test_counters_accumulate(self, uniform_points, sample_queries):
        index = BaseZIndex(uniform_points, leaf_capacity=16)
        index.reset_counters()
        for query in sample_queries[:5]:
            index.range_query(query)
        assert index.counters.bbs_checked > 0
        assert index.counters.points_filtered >= index.counters.points_returned

    def test_phase_timer_records_projection_and_scan(self, uniform_points, sample_queries):
        from repro.evaluation import PhaseTimer

        index = BaseZIndex(uniform_points, leaf_capacity=16)
        index.phase_timer = PhaseTimer()
        index.range_query(sample_queries[0])
        totals = index.phase_timer.totals()
        assert "projection" in totals
        assert "scan" in totals


class TestMonotonicity:
    def test_dominated_points_in_earlier_or_equal_leaves(self, uniform_points):
        """The paper's monotonicity property: domination implies curve order."""
        index = BaseZIndex(uniform_points, leaf_capacity=16)
        ordered = index.all_points()
        positions = {(p.x, p.y): i for i, p in enumerate(ordered)}
        leaf_of = {}
        for leaf_index, entry in enumerate(index.leaflist):
            for point in entry.page:
                leaf_of[(point.x, point.y)] = leaf_index
        sample = uniform_points[:80]
        for a in sample:
            for b in sample:
                if a.x < b.x and a.y < b.y and leaf_of[(a.x, a.y)] != leaf_of[(b.x, b.y)]:
                    assert leaf_of[(a.x, a.y)] < leaf_of[(b.x, b.y)]
                    assert positions[(a.x, a.y)] < positions[(b.x, b.y)]


class TestUpdates:
    def test_insert_then_query(self, uniform_points):
        index = BaseZIndex(uniform_points[:200], leaf_capacity=16)
        new_point = Point(0.123456, 0.654321)
        index.insert(new_point)
        assert index.point_query(new_point)
        assert len(index) == 201

    def test_insert_overflow_splits_leaf(self):
        points = [Point(x / 20.0, 0.5) for x in range(20)]
        index = BaseZIndex(points, leaf_capacity=8)
        before_leaves = len(index.leaflist)
        for i in range(30):
            index.insert(Point(0.5 + i * 1e-4, 0.5 + i * 1e-4))
        assert len(index) == 50
        assert len(index.leaflist) > before_leaves
        assert index.leaflist.check_linked()

    def test_insert_into_empty_index(self):
        index = BaseZIndex([])
        index.insert(Point(1.0, 1.0))
        assert len(index) == 1
        assert index.point_query(Point(1.0, 1.0))

    def test_range_queries_correct_after_inserts(self, uniform_points, sample_queries):
        half = len(uniform_points) // 2
        index = BaseZIndex(uniform_points[:half], leaf_capacity=16)
        for point in uniform_points[half:]:
            index.insert(point)
        for query in sample_queries[:10]:
            expected = brute_force_range(uniform_points, query)
            assert result_set(index.range_query(query)) == result_set(expected)

    def test_delete_existing_point(self, uniform_points):
        index = BaseZIndex(uniform_points, leaf_capacity=16)
        victim = uniform_points[3]
        assert index.delete(victim)
        assert not index.point_query(victim)
        assert len(index) == len(uniform_points) - 1

    def test_delete_missing_point(self, uniform_points):
        index = BaseZIndex(uniform_points, leaf_capacity=16)
        assert not index.delete(Point(5.0, 5.0))
        assert len(index) == len(uniform_points)

    def test_delete_many_merges_leaves(self):
        points = [Point(x / 100.0, (x % 10) / 10.0) for x in range(100)]
        index = BaseZIndex(points, leaf_capacity=16)
        leaves_before = len(index.leaflist)
        for point in points[:90]:
            assert index.delete(point)
        assert len(index) == 10
        assert len(index.leaflist) <= leaves_before
        remaining = result_set(index.all_points())
        assert remaining == result_set(points[90:])


class TestCustomStrategy:
    def test_midpoint_strategy_still_correct(self, uniform_points, sample_queries):
        index = ZIndex(uniform_points, leaf_capacity=16, split_strategy=MidpointSplitStrategy())
        for query in sample_queries[:10]:
            expected = brute_force_range(uniform_points, query)
            assert result_set(index.range_query(query)) == result_set(expected)

    def test_size_bytes_positive_and_grows(self, uniform_points):
        small = BaseZIndex(uniform_points[:100], leaf_capacity=16)
        large = BaseZIndex(uniform_points, leaf_capacity=16)
        assert 0 < small.size_bytes() < large.size_bytes()

    def test_knn_matches_brute_force(self, uniform_points):
        from repro.interfaces import brute_force_knn

        index = BaseZIndex(uniform_points, leaf_capacity=16)
        center = Point(0.5, 0.5)
        expected = {(p.x, p.y) for p in brute_force_knn(uniform_points, center, 5)}
        got = {(p.x, p.y) for p in index.knn(center, 5)}
        assert got == expected
