"""repro-lint: every rule fires on its failing fixture and stays quiet on
the passing one; suppressions, strict hygiene, and the CLI contract."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools.lint import (
    RULES,
    SUPPRESSION_RULE,
    lint_paths,
    lint_source,
    main,
)
from repro.devtools.lint import rules as _rules  # noqa: F401  (registers rules)

FIXTURES = Path(__file__).parent / "lint_fixtures"
SRC = Path(__file__).parent.parent / "src" / "repro"

#: rule name -> (passing fixture, failing fixture), relative to FIXTURES.
FIXTURE_PAIRS = {
    "mutation-must-invalidate": (
        "zindex/mutation_must_invalidate_ok.py",
        "zindex/mutation_must_invalidate_bad.py",
    ),
    "cow-before-write": (
        "storage/cow_before_write_ok.py",
        "storage/cow_before_write_bad.py",
    ),
    "no-hidden-rng": ("no_hidden_rng_ok.py", "no_hidden_rng_bad.py"),
    "error-taxonomy": (
        "persistence/error_taxonomy_ok.py",
        "persistence/error_taxonomy_bad.py",
    ),
    "no-boxing-in-hot-path": ("hot_path_ok.py", "hot_path_bad.py"),
    "keyword-only-api-growth": ("public_api_ok.py", "public_api_bad.py"),
    "pickle-safety": ("pickle_safety_ok.py", "pickle_safety_bad.py"),
    "deterministic-io": (
        "persistence/deterministic_io_ok.py",
        "persistence/deterministic_io_bad.py",
    ),
    "kernel-parity": (
        "kernels/kernel_parity_ok.py",
        "kernels/kernel_parity_bad.py",
    ),
}


class TestRuleCatalog:
    def test_at_least_eight_rules_registered(self):
        assert len(RULES) >= 8

    def test_every_rule_has_a_fixture_pair(self):
        assert set(FIXTURE_PAIRS) == set(RULES)

    def test_descriptions_are_nonempty(self):
        for rule in RULES.values():
            assert rule.description


class TestFixtures:
    @pytest.mark.parametrize("rule_name", sorted(FIXTURE_PAIRS))
    def test_failing_fixture_fires(self, rule_name):
        _, bad = FIXTURE_PAIRS[rule_name]
        findings = lint_paths([FIXTURES / bad])
        assert any(f.rule == rule_name for f in findings), (
            f"{bad} should trigger {rule_name}; got "
            f"{[f.rule for f in findings]}"
        )

    @pytest.mark.parametrize("rule_name", sorted(FIXTURE_PAIRS))
    def test_passing_fixture_is_clean(self, rule_name):
        ok, _ = FIXTURE_PAIRS[rule_name]
        findings = lint_paths([FIXTURES / ok], strict=True)
        assert findings == [], [f.render() for f in findings]

    def test_select_restricts_rules(self):
        _, bad = FIXTURE_PAIRS["no-hidden-rng"]
        findings = lint_paths([FIXTURES / bad], select=["error-taxonomy"])
        assert findings == []

    def test_unknown_select_raises(self):
        with pytest.raises(KeyError):
            lint_paths([FIXTURES / "no_hidden_rng_bad.py"], select=["nope"])


class TestSpecificFirings:
    def test_kernel_parity_flags_both_hazards(self):
        findings = lint_paths([FIXTURES / "kernels/kernel_parity_bad.py"])
        messages = " ".join(f.message for f in findings)
        assert 'kind="stable"' in messages
        assert "fastmath" in messages

    def test_kernel_parity_is_tag_scoped(self):
        source = "import numpy as np\norder = np.argsort([3, 1])\n"
        assert lint_source(source, relpath="m.py") == []
        tagged = "# repro-lint: kernel-parity\n" + source
        assert [f.rule for f in lint_source(tagged, relpath="m.py")] == [
            "kernel-parity"
        ]

    def test_hot_path_flags_both_boxing_forms(self):
        findings = lint_paths([FIXTURES / "hot_path_bad.py"])
        messages = " ".join(f.message for f in findings)
        assert "Point" in messages
        assert ".points()" in messages

    def test_error_taxonomy_flags_classmethod_load_paths(self):
        findings = lint_paths([FIXTURES / "persistence/error_taxonomy_bad.py"])
        assert any("Plan.from_manifest" in f.message for f in findings)

    def test_deterministic_io_flags_set_iteration(self):
        findings = lint_paths([FIXTURES / "persistence/deterministic_io_bad.py"])
        assert any("set" in f.message for f in findings)
        assert any("os.urandom" in f.message for f in findings)
        assert any("time.time" in f.message for f in findings)

    def test_scope_is_path_sensitive(self):
        # The same bare-ValueError load path outside persistence/serving is fine.
        source = FIXTURES.joinpath("persistence/error_taxonomy_bad.py").read_text()
        assert lint_source(source, relpath="workloads/loader.py") == []
        assert lint_source(source, relpath="serving/loader.py") != []

    def test_untagged_module_skips_tag_scoped_rules(self):
        source = "def f(a=1, b=2):\n    return a + b\n"
        assert lint_source(source, relpath="m.py") == []
        tagged = "# repro-lint: public-api\n" + source
        assert [f.rule for f in lint_source(tagged, relpath="m.py")] == [
            "keyword-only-api-growth"
        ]


class TestSuppressions:
    BAD_LINE = "rng = default_rng(7)"

    def test_reasoned_suppression_silences(self):
        source = (
            f"from numpy.random import default_rng\n"
            f"{self.BAD_LINE}  # repro-lint: disable=no-hidden-rng -- test-only default\n"
        )
        assert lint_source(source, strict=True) == []

    def test_unreasoned_suppression_fails_strict(self):
        source = (
            f"from numpy.random import default_rng\n"
            f"{self.BAD_LINE}  # repro-lint: disable=no-hidden-rng\n"
        )
        assert lint_source(source) == []  # silenced, but...
        strict = lint_source(source, strict=True)
        assert [f.rule for f in strict] == [SUPPRESSION_RULE]

    def test_suppression_for_other_rule_does_not_silence(self):
        source = (
            f"from numpy.random import default_rng\n"
            f"{self.BAD_LINE}  # repro-lint: disable=error-taxonomy -- wrong rule\n"
        )
        assert any(f.rule == "no-hidden-rng" for f in lint_source(source))

    def test_unknown_rule_suppression_flagged_in_strict(self):
        source = "x = 1  # repro-lint: disable=made-up-rule -- because\n"
        strict = lint_source(source, strict=True)
        assert any("unknown rule" in f.message for f in strict)

    def test_directives_in_strings_are_ignored(self):
        source = 'MESSAGE = "# repro-lint: disable=<rule> -- <why>"\n'
        assert lint_source(source, strict=True) == []


class TestTreeIsClean:
    def test_src_repro_passes_strict(self):
        findings = lint_paths([SRC], strict=True)
        assert findings == [], "\n".join(f.render() for f in findings)


class TestCli:
    def test_exit_zero_on_clean_tree(self):
        assert main([str(SRC), "--strict"]) == 0

    def test_exit_one_on_findings(self, capsys):
        assert main([str(FIXTURES / "no_hidden_rng_bad.py")]) == 1
        out = capsys.readouterr().out
        assert "no-hidden-rng" in out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in RULES:
            assert name in out

    def test_module_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.devtools.lint", str(SRC), "--strict"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
