"""Unit tests for the quaternary-tree node structures."""

import pytest

from repro.geometry import Rect
from repro.geometry.rect import QUADRANT_A, QUADRANT_B, QUADRANT_C, QUADRANT_D
from repro.zindex.node import (
    InternalNode,
    LeafNode,
    ORDER_ABCD,
    ORDER_ACBD,
    count_nodes,
    curve_rank,
    iter_leaves_in_curve_order,
    structure_size_bytes,
    tree_depth,
    visit_sequence,
)


class TestVisitSequence:
    def test_abcd(self):
        assert visit_sequence(ORDER_ABCD) == (QUADRANT_A, QUADRANT_B, QUADRANT_C, QUADRANT_D)

    def test_acbd(self):
        assert visit_sequence(ORDER_ACBD) == (QUADRANT_A, QUADRANT_C, QUADRANT_B, QUADRANT_D)

    def test_unknown_ordering_rejected(self):
        with pytest.raises(ValueError):
            visit_sequence("abdc")

    def test_curve_rank(self):
        assert curve_rank(ORDER_ABCD, QUADRANT_C) == 2
        assert curve_rank(ORDER_ACBD, QUADRANT_C) == 1

    def test_both_orderings_start_with_a_and_end_with_d(self):
        # Both allowed orderings preserve monotonicity precisely because A is
        # always first and D always last.
        for ordering in (ORDER_ABCD, ORDER_ACBD):
            sequence = visit_sequence(ordering)
            assert sequence[0] == QUADRANT_A
            assert sequence[-1] == QUADRANT_D


class TestInternalNode:
    def make_node(self, ordering=ORDER_ABCD):
        cell = Rect(0.0, 0.0, 4.0, 4.0)
        node = InternalNode(cell, 2.0, 2.0, ordering)
        for quadrant, child_cell in enumerate(node.child_cells()):
            node.children[quadrant] = LeafNode(child_cell, leaf_index=quadrant)
        return node

    def test_invalid_ordering_rejected(self):
        with pytest.raises(ValueError):
            InternalNode(Rect(0, 0, 1, 1), 0.5, 0.5, "zzzz")

    def test_quadrant_of_matches_algorithm1(self):
        node = self.make_node()
        assert node.quadrant_of(1.0, 1.0) == QUADRANT_A
        assert node.quadrant_of(3.0, 1.0) == QUADRANT_B
        assert node.quadrant_of(1.0, 3.0) == QUADRANT_C
        assert node.quadrant_of(3.0, 3.0) == QUADRANT_D

    def test_boundary_points_go_to_lower_quadrant(self):
        node = self.make_node()
        assert node.quadrant_of(2.0, 2.0) == QUADRANT_A
        assert node.quadrant_of(2.0, 3.0) == QUADRANT_C

    def test_child_for_point(self):
        node = self.make_node()
        assert node.child_for_point(3.5, 0.5).leaf_index == QUADRANT_B

    def test_children_in_curve_order_respects_ordering(self):
        abcd = self.make_node(ORDER_ABCD)
        acbd = self.make_node(ORDER_ACBD)
        assert [c.leaf_index for c in abcd.children_in_curve_order()] == [0, 1, 2, 3]
        assert [c.leaf_index for c in acbd.children_in_curve_order()] == [0, 2, 1, 3]

    def test_child_cells_partition_cell(self):
        node = self.make_node()
        cells = node.child_cells()
        assert sum(c.area for c in cells) == pytest.approx(node.cell.area)


class TestTreeHelpers:
    def build_two_level_tree(self):
        root = InternalNode(Rect(0, 0, 4, 4), 2.0, 2.0, ORDER_ABCD)
        for quadrant, cell in enumerate(root.child_cells()):
            root.children[quadrant] = LeafNode(cell, leaf_index=quadrant)
        # Replace quadrant B with another internal node to create depth 3.
        inner_cell = root.child_cells()[1]
        inner = InternalNode(inner_cell, inner_cell.center.x, inner_cell.center.y, ORDER_ACBD)
        for quadrant, cell in enumerate(inner.child_cells()):
            inner.children[quadrant] = LeafNode(cell, leaf_index=10 + quadrant)
        root.children[1] = inner
        return root

    def test_count_nodes(self):
        root = self.build_two_level_tree()
        internal, leaves = count_nodes(root)
        assert internal == 2
        assert leaves == 7

    def test_count_nodes_of_leaf(self):
        assert count_nodes(LeafNode(Rect(0, 0, 1, 1))) == (0, 1)
        assert count_nodes(None) == (0, 0)

    def test_tree_depth(self):
        assert tree_depth(self.build_two_level_tree()) == 3
        assert tree_depth(LeafNode(Rect(0, 0, 1, 1))) == 1
        assert tree_depth(None) == 0

    def test_iter_leaves_in_curve_order(self):
        root = self.build_two_level_tree()
        order = [leaf.leaf_index for leaf in iter_leaves_in_curve_order(root)]
        # Root ordering abcd: A leaf, then B subtree (acbd: a, c, b, d), then C, D.
        assert order == [0, 10, 12, 11, 13, 2, 3]

    def test_structure_size_bytes(self):
        root = self.build_two_level_tree()
        assert structure_size_bytes(root) > structure_size_bytes(LeafNode(Rect(0, 0, 1, 1)))
        assert structure_size_bytes(None) == 0
