"""Unit tests for the plain-text reporting helpers (tables, Figure 7 math)."""

import pytest

from repro.evaluation.reporting import (
    INDEX_PROPERTIES,
    format_table,
    improvement_table,
    index_properties_table,
    percent_improvement,
)


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert lines[0].split(" | ") == ["name", "value"]
        assert set(lines[1]) <= {"-", "+"}
        assert lines[2].startswith("a ")
        assert lines[3].startswith("bb")

    def test_title_is_first_line(self):
        text = format_table(["h"], [["x"]], title="Table N: things")
        assert text.splitlines()[0] == "Table N: things"

    def test_floats_use_float_format(self):
        text = format_table(["v"], [[1.23456]], float_format="{:.2f}")
        assert "1.23" in text
        assert "1.234" not in text

    def test_ints_and_strings_use_str(self):
        text = format_table(["a", "b"], [[7, "seven"]])
        assert "7" in text and "seven" in text

    def test_columns_align_across_rows(self):
        text = format_table(["h1", "h2"], [["long-cell", "x"], ["s", "y"]])
        header, _, row1, row2 = text.splitlines()
        # Every row renders to the same width: columns are padded.
        assert len(header) == len(row1) == len(row2)
        assert row1.index(" | ") == row2.index(" | ")

    def test_wide_header_sets_column_width(self):
        text = format_table(["a-very-wide-header"], [["x"]])
        header, rule, row = text.splitlines()
        assert len(rule) == len(header)
        assert len(row) == len(header)


class TestPercentImprovement:
    def test_twice_as_fast_is_plus_fifty(self):
        assert percent_improvement(10.0, 5.0) == pytest.approx(50.0)

    def test_twice_as_slow_is_minus_hundred(self):
        assert percent_improvement(10.0, 20.0) == pytest.approx(-100.0)

    def test_equal_is_zero(self):
        assert percent_improvement(3.0, 3.0) == 0.0

    def test_zero_baseline_is_zero_not_inf(self):
        assert percent_improvement(0.0, 5.0) == 0.0


class TestIndexPropertiesTable:
    def test_covers_every_index_of_table_1(self):
        text = index_properties_table()
        for name in INDEX_PROPERTIES:
            assert name in text

    def test_wazi_row_is_yes_yes_yes(self):
        row = next(
            line for line in index_properties_table().splitlines()
            if line.startswith("WaZI")
        )
        assert row.count("yes") == 3

    def test_str_row_is_no_no_no(self):
        row = next(
            line for line in index_properties_table().splitlines()
            if line.startswith("STR")
        )
        assert row.count("no") == 3
        assert "yes" not in row

    def test_has_title_and_headers(self):
        text = index_properties_table()
        assert text.splitlines()[0].startswith("Table 1:")
        for header in ("Index", "SFC-based", "Query-Aware", "Learned"):
            assert header in text


class TestImprovementTable:
    def test_baseline_scores_zero(self):
        text = improvement_table("Base", {"Base": 10.0, "WaZI": 5.0})
        base_row = next(
            line for line in text.splitlines() if line.startswith("Base")
        )
        assert "0.000" in base_row

    def test_candidate_improvement_value(self):
        text = improvement_table("Base", {"Base": 10.0, "WaZI": 5.0})
        wazi_row = next(
            line for line in text.splitlines() if line.startswith("WaZI")
        )
        assert "50.000" in wazi_row

    def test_header_names_baseline(self):
        text = improvement_table("Base", {"Base": 1.0})
        assert "% improvement over Base" in text

    def test_missing_baseline_raises(self):
        with pytest.raises(KeyError):
            improvement_table("Nope", {"Base": 1.0})
