"""Shared fixtures: small deterministic datasets and workloads.

All fixtures are seeded and sized for fast unit tests; the scaling
behaviour of the indexes is exercised by the benchmark suite instead.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.devtools.invariants import (
    install_sanitizer,
    sanitize_enabled,
    uninstall_sanitizer,
)


@pytest.fixture(scope="session", autouse=True)
def runtime_sanitizer():
    """Deep-check every index the suite builds when REPRO_SANITIZE=1.

    With the variable unset this fixture is a no-op and the library entry
    points stay pristine (bench_sanitize.py asserts the identity).
    """
    if not sanitize_enabled():
        yield
        return
    install_sanitizer()
    try:
        yield
    finally:
        uninstall_sanitizer()

from repro.geometry import Point, Rect
from repro.workloads import (
    generate_dataset,
    generate_range_workload,
)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def uniform_points():
    """500 uniform points in the unit square."""
    generator = np.random.default_rng(7)
    coordinates = generator.uniform(0.0, 1.0, size=(500, 2))
    return [Point(float(x), float(y)) for x, y in coordinates]


@pytest.fixture(scope="session")
def clustered_points():
    """A small clustered dataset from the synthetic NewYork region."""
    return generate_dataset("newyork", 2000, seed=11)


@pytest.fixture(scope="session")
def small_workload():
    """A small skewed range-query workload over the NewYork region."""
    return generate_range_workload("newyork", 60, selectivity_percent=0.0256, seed=11)


@pytest.fixture(scope="session")
def unit_square():
    return Rect(0.0, 0.0, 1.0, 1.0)


@pytest.fixture(scope="session")
def sample_queries(unit_square, rng):
    """40 random rectangles inside the unit square."""
    queries = []
    for _ in range(40):
        x1, x2 = sorted(rng.uniform(0.0, 1.0, size=2))
        y1, y2 = sorted(rng.uniform(0.0, 1.0, size=2))
        queries.append(Rect(float(x1), float(y1), float(x2), float(y2)))
    return queries
