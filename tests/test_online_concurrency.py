"""Threaded online-index properties: queries during ingest, maintenance
during ingest, and final state byte-identical to a serialized execution.

The op schedules are designed so the final multiset is independent of
interleaving — inserts add distinct fresh points, deletes target distinct
base points that exist throughout — which is what makes "concurrent run
ends byte-identical to the serial run" a sound assertion no matter how
the scheduler slices the threads.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.geometry import Point, Rect
from repro.online import MaintenanceLoop, MaintenancePolicy, OnlineIndex
from repro.workload_log import WorkloadLog
from repro.zindex.base import ZIndex

from test_online_index import canonical_points, canonical_result


@pytest.fixture(scope="module")
def base_points():
    rng = np.random.default_rng(77)
    return [Point(float(x), float(y)) for x, y in rng.uniform(0.0, 1.0, (3000, 2))]


@pytest.fixture(scope="module")
def fresh_points():
    rng = np.random.default_rng(78)
    return [Point(float(x), float(y)) for x, y in rng.uniform(0.0, 1.0, (600, 2))]


@pytest.fixture(scope="module")
def query_rects():
    rng = np.random.default_rng(79)
    rects = []
    for _ in range(30):
        x, y = rng.uniform(0.0, 0.8, size=2)
        w, h = rng.uniform(0.05, 0.2, size=2)
        rects.append(Rect(float(x), float(y), float(x + w), float(y + h)))
    return rects


def run_threads(*targets):
    """Run the callables as threads; re-raise the first failure."""
    errors = []

    def guarded(fn):
        def run():
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001 — surfaced to pytest
                errors.append(exc)

        return run

    threads = [threading.Thread(target=guarded(fn)) for fn in targets]
    for t in threads:
        t.start()
    for t in threads:
        t.join(30.0)
        assert not t.is_alive(), "worker thread did not finish"
    if errors:
        raise errors[0]


def expected_multiset(base_points, inserted, deleted):
    removed = {(p.x, p.y) for p in deleted}
    kept = [p for p in base_points if (p.x, p.y) not in removed]
    return kept + list(inserted)


class TestIngestDuringQuery:
    def test_queries_stay_consistent_and_final_state_is_serial(
        self, base_points, fresh_points, query_rects
    ):
        online = OnlineIndex(ZIndex(list(base_points), leaf_capacity=32))
        deleted = base_points[:200]
        stop = threading.Event()

        def writer():
            try:
                for insert, delete in zip(fresh_points, deleted):
                    online.insert(insert)
                    assert online.delete(delete)
            finally:
                stop.set()

        def reader():
            while not stop.is_set():
                for rect in query_rects:
                    xs, ys = online.range_query(rect).as_arrays()
                    inside = (
                        (np.asarray(xs) >= rect.xmin) & (np.asarray(xs) <= rect.xmax)
                        & (np.asarray(ys) >= rect.ymin) & (np.asarray(ys) <= rect.ymax)
                    )
                    assert bool(np.all(inside))
                    assert online.range_count(rect) >= 0

        run_threads(writer, reader, reader)
        expected = expected_multiset(base_points, fresh_points[:200], deleted)
        assert canonical_points(online.all_points()) == canonical_points(expected)

    def test_concurrent_writers_match_serialized(self, base_points, fresh_points):
        online = OnlineIndex(ZIndex(list(base_points), leaf_capacity=32))
        half = len(fresh_points) // 2
        deleted = base_points[:150]

        def inserter(batch):
            def run():
                for p in batch:
                    online.insert(p)

            return run

        def deleter():
            for p in deleted:
                assert online.delete(p)

        run_threads(inserter(fresh_points[:half]), inserter(fresh_points[half:]), deleter)
        expected = expected_multiset(base_points, fresh_points, deleted)
        assert canonical_points(online.all_points()) == canonical_points(expected)
        # the serialized reference: one thread, same ops, eager rebuild
        serial = ZIndex(expected, leaf_capacity=32)
        probe = Rect(0.2, 0.2, 0.6, 0.6)
        assert canonical_result(online.range_query(probe)) == canonical_result(
            serial.range_query(probe)
        )


class TestCompactionDuringTraffic:
    def test_compactions_never_lose_or_duplicate_writes(
        self, base_points, fresh_points, query_rects
    ):
        online = OnlineIndex(ZIndex(list(base_points), leaf_capacity=32))
        deleted = base_points[:100]
        stop = threading.Event()

        def writer():
            try:
                for i, p in enumerate(fresh_points):
                    online.insert(p)
                    if i < len(deleted):
                        assert online.delete(deleted[i])
            finally:
                stop.set()

        def compactor():
            compacted = 0
            while not stop.is_set() or compacted == 0:
                if online.compact() is not None:
                    compacted += 1
                time.sleep(0.001)

        def reader():
            while not stop.is_set():
                for rect in query_rects[:8]:
                    count = online.range_count(rect)
                    assert count >= 0

        run_threads(writer, compactor, reader)
        online.compact()
        assert online.compactions >= 1
        assert online.delta_stats()["rows"] == 0
        expected = expected_multiset(base_points, fresh_points, deleted)
        assert canonical_points(online.all_points()) == canonical_points(expected)


class TestMaintenanceDuringIngest:
    def test_background_loop_with_live_traffic(
        self, base_points, fresh_points, query_rects
    ):
        online = OnlineIndex(ZIndex(list(base_points), leaf_capacity=128))
        log = WorkloadLog(window_size=512)
        rng = np.random.default_rng(80)
        hot = [
            Rect(float(x), float(y), float(x) + 0.03, float(y) + 0.03)
            for x, y in rng.uniform(0.05, 0.17, (120, 2))
        ]
        for rect in hot:
            log.record_range(rect)
        loop = MaintenanceLoop(
            online, workload_log=log,
            policy=MaintenancePolicy(
                interval_seconds=0.005, compact_min_rows=64,
                adapt_min_queries=32, min_leaf_capacity=8,
            ),
        )
        deleted = base_points[:100]
        stop = threading.Event()

        def writer():
            try:
                for i, p in enumerate(fresh_points):
                    online.insert(p)
                    if i < len(deleted):
                        assert online.delete(deleted[i])
                    time.sleep(0.0002)
            finally:
                stop.set()

        def reader():
            while not stop.is_set():
                for rect in hot[:20]:
                    online.range_count(rect)
                for rect in query_rects[:5]:
                    xs, ys = online.range_query(rect).as_arrays()
                    assert np.asarray(xs).shape == np.asarray(ys).shape

        loop.start()
        try:
            run_threads(writer, reader)
            deadline = time.monotonic() + 5.0
            while loop.ticks < 2 and time.monotonic() < deadline:
                time.sleep(0.01)
        finally:
            loop.stop()
        assert loop.ticks >= 1
        assert loop.last_error is None
        online.compact()
        expected = expected_multiset(base_points, fresh_points, deleted)
        assert canonical_points(online.all_points()) == canonical_points(expected)

    def test_incremental_adapt_against_concurrent_ingest(
        self, base_points, fresh_points
    ):
        online = OnlineIndex(ZIndex(list(base_points), leaf_capacity=256))
        rng = np.random.default_rng(81)
        hot = [
            Rect(float(x), float(y), float(x) + 0.03, float(y) + 0.03)
            for x, y in rng.uniform(0.05, 0.17, (120, 2))
        ]
        reports = []

        def adapter():
            reports.append(online.incremental_adapt(hot, min_leaf_capacity=8))

        def writer():
            for p in fresh_points:
                online.insert(p)

        # two writer threads insert the same batch: the merged multiset
        # holds every point twice, whatever the interleaving
        run_threads(adapter, writer, writer)
        expected = expected_multiset(
            base_points, list(fresh_points) + list(fresh_points), []
        )
        assert canonical_points(online.all_points()) == canonical_points(expected)
        assert reports and reports[0].leaves_total > 0
