"""Tests for Z-range shard planning and shard snapshot construction.

The contract: shards are consecutive leaf spans of the global Z-order,
their flat rows concatenate back to the global columns in shard order,
the manifest round-trips, and each shard's bounds are the tight bbox of
the points it holds.
"""

import json

import numpy as np
import pytest

from repro.geometry import Point, Rect
from repro.persistence import save_snapshot
from repro.persistence.errors import SnapshotFormatError
from repro.serving import (
    SHARDS_MANIFEST,
    ShardPlan,
    ShardSpec,
    build_shard_index,
    build_shards,
    leaf_scan_weights,
    plan_shard_spans,
    shard_snapshot_state,
)
from repro.zindex import ZIndex


def _index(n=3000, seed=11, **kwargs):
    rng = np.random.default_rng(seed)
    pts = [Point(float(x), float(y)) for x, y in rng.uniform(0, 300, size=(n, 2))]
    kwargs.setdefault("leaf_capacity", 32)
    return ZIndex(pts, **kwargs), rng


class TestPlanShardSpans:
    def _starts(self, sizes):
        return np.concatenate([[0], np.cumsum(np.asarray(sizes, dtype=np.int64))])

    def test_spans_partition_the_leaf_range(self):
        starts = self._starts([10, 0, 5, 30, 1, 1, 8, 20])
        spans = plan_shard_spans(starts, 3)
        assert spans[0][0] == 0
        assert spans[-1][1] == 8
        for (a_lo, a_hi), (b_lo, b_hi) in zip(spans, spans[1:]):
            assert a_hi == b_lo
            assert a_lo < a_hi
        assert spans[-1][0] < spans[-1][1]

    def test_spans_balance_rows_not_leaves(self):
        # One huge leaf should get its own shard rather than dragging
        # half the leaf count with it.
        starts = self._starts([1000] + [1] * 9)
        spans = plan_shard_spans(starts, 2)
        assert spans[0] == (0, 1)
        assert spans[1] == (1, 10)

    def test_more_shards_than_leaves_clamps(self):
        starts = self._starts([4, 4, 4])
        spans = plan_shard_spans(starts, 16)
        assert len(spans) == 3
        assert [s for s in spans] == [(0, 1), (1, 2), (2, 3)]

    def test_single_shard_is_everything(self):
        starts = self._starts([5, 6, 7])
        assert plan_shard_spans(starts, 1) == [(0, 3)]

    def test_invalid_shard_count(self):
        starts = self._starts([5])
        with pytest.raises(ValueError):
            plan_shard_spans(starts, 0)

    def test_weighted_spans_balance_weight_not_rows(self):
        # Equal-sized leaves but all the cost in the first two: weighted
        # planning isolates the hot leaves instead of halving the rows.
        starts = self._starts([10] * 8)
        weights = np.array([100.0, 100.0, 1, 1, 1, 1, 1, 1])
        spans = plan_shard_spans(starts, 2, weights)
        assert spans == [(0, 1), (1, 8)] or spans == [(0, 2), (2, 8)]
        unweighted = plan_shard_spans(starts, 2)
        assert unweighted == [(0, 4), (4, 8)]

    def test_weighted_spans_still_partition(self):
        starts = self._starts([3, 9, 1, 4, 8, 2, 7, 5])
        weights = np.array([0.0, 5.0, 0.0, 0.0, 20.0, 1.0, 1.0, 0.0])
        spans = plan_shard_spans(starts, 4, weights)
        assert spans[0][0] == 0
        assert spans[-1][1] == 8
        for (a_lo, a_hi), (b_lo, _b_hi) in zip(spans, spans[1:]):
            assert a_hi == b_lo
            assert a_lo < a_hi

    def test_weight_validation(self):
        starts = self._starts([5, 5])
        with pytest.raises(ValueError):
            plan_shard_spans(starts, 2, np.array([1.0]))
        with pytest.raises(ValueError):
            plan_shard_spans(starts, 2, np.array([1.0, -2.0]))


class TestShardSnapshotState:
    def test_rows_concatenate_to_global_order(self):
        index, _ = _index()
        state = index.snapshot_state()
        spans = plan_shard_spans(state.arrays["leaf_starts"], 5)
        xs_parts, ys_parts = [], []
        for lo, hi in spans:
            shard = shard_snapshot_state(state, lo, hi)
            xs_parts.append(shard.arrays["flat_x"])
            ys_parts.append(shard.arrays["flat_y"])
        np.testing.assert_array_equal(
            np.concatenate(xs_parts), state.arrays["flat_x"]
        )
        np.testing.assert_array_equal(
            np.concatenate(ys_parts), state.arrays["flat_y"]
        )

    def test_shard_keeps_global_extent_and_leaf_count(self):
        index, _ = _index()
        state = index.snapshot_state()
        spans = plan_shard_spans(state.arrays["leaf_starts"], 4)
        lo, hi = spans[1]
        shard = shard_snapshot_state(state, lo, hi)
        assert shard.extent == state.extent
        assert len(shard.arrays["leaf_starts"]) == len(state.arrays["leaf_starts"])
        starts = shard.arrays["leaf_starts"]
        # Out-of-span leaves are empty, in-span leaves keep their sizes.
        sizes = np.diff(starts)
        global_sizes = np.diff(state.arrays["leaf_starts"])
        np.testing.assert_array_equal(sizes[lo:hi], global_sizes[lo:hi])
        assert int(sizes[:lo].sum()) == 0
        assert int(sizes[hi:].sum()) == 0

    def test_restored_shard_answers_in_span_queries(self):
        index, rng = _index(use_skipping=True)
        state = index.snapshot_state()
        spans = plan_shard_spans(state.arrays["leaf_starts"], 3)
        lo, hi = spans[0]
        shard = build_shard_index(state, lo, hi)
        row_lo = int(state.arrays["leaf_starts"][lo])
        row_hi = int(state.arrays["leaf_starts"][hi])
        xs = state.arrays["flat_x"][row_lo:row_hi]
        ys = state.arrays["flat_y"][row_lo:row_hi]
        assert len(shard) == row_hi - row_lo
        for i in range(0, len(xs), max(1, len(xs) // 20)):
            assert shard.point_query(Point(float(xs[i]), float(ys[i])))
        whole = Rect(-1e9, -1e9, 1e9, 1e9)
        assert shard.range_count(whole) == len(shard)


class TestBuildShards:
    @pytest.fixture()
    def built(self, tmp_path):
        index, rng = _index(use_skipping=True)
        plan = build_shards(index, tmp_path / "shards", num_shards=4)
        return index, plan, tmp_path / "shards", rng

    def test_manifest_roundtrip(self, built):
        index, plan, directory, _ = built
        assert (directory / SHARDS_MANIFEST).exists()
        loaded = ShardPlan.load(directory)
        assert loaded.num_points == len(index) == plan.num_points
        assert loaded.use_skipping == plan.use_skipping
        assert [s.path for s in loaded.shards] == [s.path for s in plan.shards]
        assert all(isinstance(s, ShardSpec) for s in loaded.shards)
        assert sum(s.num_points for s in loaded.shards) == len(index)

    def test_bounds_are_tight_per_shard(self, built):
        index, plan, _, _ = built
        state = index.snapshot_state()
        for spec in plan.shards:
            if spec.bounds is None:
                assert spec.num_points == 0
                continue
            xs = state.arrays["flat_x"][spec.row_lo : spec.row_hi]
            ys = state.arrays["flat_y"][spec.row_lo : spec.row_hi]
            assert spec.bounds == (
                float(xs.min()),
                float(ys.min()),
                float(xs.max()),
                float(ys.max()),
            )

    def test_routing_helpers(self, built):
        index, plan, _, rng = built
        for spec in plan.shards:
            if spec.bounds is None:
                continue
            x0, y0, x1, y1 = spec.bounds
            cx, cy = (x0 + x1) / 2.0, (y0 + y1) / 2.0
            assert spec.contains_point(cx, cy)
            assert spec.overlaps_rect(Rect(cx, cy, cx, cy))
            assert spec.mindist_squared(cx, cy) == 0.0
            outside = spec.mindist_squared(x1 + 10.0, y1 + 10.0)
            assert outside >= 100.0
        whole = Rect(-1e9, -1e9, 1e9, 1e9)
        assert [s.shard_id for s in plan.route_rect(whole)] == [
            s.shard_id for s in plan.shards if s.num_points
        ]

    def test_build_from_snapshot_path(self, tmp_path):
        index, _ = _index(n=800)
        snap = tmp_path / "snap.zip"
        save_snapshot(index, snap)
        plan = build_shards(snap, tmp_path / "shards", num_shards=3)
        assert plan.num_points == len(index)
        loaded = ShardPlan.load(tmp_path / "shards")
        assert sum(s.num_points for s in loaded.shards) == len(index)

    def test_workload_aware_build_balances_scan_cost(self, tmp_path):
        index, rng = _index(n=4000, use_skipping=True)
        # A workload hammering one corner of the space.
        hot = []
        for _ in range(40):
            cx, cy = rng.uniform(0, 40, 2)
            hot.append(Rect(cx, cy, cx + 15.0, cy + 15.0))
        state = index.snapshot_state()
        weights = leaf_scan_weights(state, hot)
        assert weights.shape == (len(index.leaflist),)
        assert (weights > 0).all()
        plan = build_shards(index, tmp_path / "aware", num_shards=4, workload=hot)
        uniform = build_shards(index, tmp_path / "uniform", num_shards=4)
        assert sum(s.num_points for s in plan.shards) == len(index)
        # The hot corner gets split finer than under row balance, and the
        # results stay byte-identical to the unsharded index.
        spans_aware = [(s.leaf_lo, s.leaf_hi) for s in plan.shards]
        spans_uniform = [(s.leaf_lo, s.leaf_hi) for s in uniform.shards]
        assert spans_aware != spans_uniform
        from repro.serving import open_sharded

        with open_sharded(tmp_path / "aware", workers=0) as sharded:
            for query in hot[:10]:
                expect = index.range_query(query).as_arrays()
                got = sharded.range_query(query).as_arrays()
                np.testing.assert_array_equal(expect[0], got[0])
                np.testing.assert_array_equal(expect[1], got[1])

    def test_load_rejects_bad_manifest(self, tmp_path):
        directory = tmp_path / "shards"
        directory.mkdir()
        (directory / SHARDS_MANIFEST).write_text(json.dumps({"format": "nope"}))
        with pytest.raises(SnapshotFormatError):
            ShardPlan.load(directory)
        (directory / SHARDS_MANIFEST).unlink()
        with pytest.raises(SnapshotFormatError):
            ShardPlan.load(directory)
