"""Unit tests for rectangles, overlap predicates and quadrant classification."""

import pytest

from repro.geometry import Point, Rect, bounding_box, classify_quadrants, rect_from_center
from repro.geometry.rect import (
    QUADRANT_A,
    QUADRANT_B,
    QUADRANT_C,
    QUADRANT_D,
    bounding_box_of_rects,
    rect_from_points,
)


class TestRectConstruction:
    def test_malformed_rectangle_rejected(self):
        with pytest.raises(ValueError):
            Rect(1.0, 0.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            Rect(0.0, 1.0, 1.0, 0.0)

    def test_degenerate_rectangle_allowed(self):
        rect = Rect(1.0, 1.0, 1.0, 1.0)
        assert rect.area == 0.0
        assert rect.contains_point(Point(1.0, 1.0))

    def test_corners(self):
        rect = Rect(0.0, 1.0, 2.0, 3.0)
        assert rect.bottom_left == Point(0.0, 1.0)
        assert rect.top_right == Point(2.0, 3.0)

    def test_measures(self):
        rect = Rect(0.0, 0.0, 2.0, 4.0)
        assert rect.width == 2.0
        assert rect.height == 4.0
        assert rect.area == 8.0
        assert rect.center == Point(1.0, 2.0)

    def test_from_points_and_center(self):
        assert rect_from_points(Point(0, 0), Point(1, 2)) == Rect(0, 0, 1, 2)
        assert rect_from_center(Point(1.0, 1.0), 2.0, 4.0) == Rect(0.0, -1.0, 2.0, 3.0)


class TestContainmentAndOverlap:
    def test_contains_point_boundary_inclusive(self):
        rect = Rect(0.0, 0.0, 1.0, 1.0)
        assert rect.contains_point(Point(0.0, 0.0))
        assert rect.contains_point(Point(1.0, 1.0))
        assert rect.contains_xy(0.5, 1.0)
        assert not rect.contains_point(Point(1.00001, 0.5))

    def test_contains_rect(self):
        outer = Rect(0.0, 0.0, 10.0, 10.0)
        assert outer.contains_rect(Rect(1.0, 1.0, 2.0, 2.0))
        assert outer.contains_rect(outer)
        assert not outer.contains_rect(Rect(5.0, 5.0, 11.0, 6.0))

    def test_overlap_positive(self):
        assert Rect(0, 0, 2, 2).overlaps(Rect(1, 1, 3, 3))

    def test_overlap_touching_edge_counts(self):
        assert Rect(0, 0, 1, 1).overlaps(Rect(1, 0, 2, 1))

    def test_overlap_disjoint(self):
        assert not Rect(0, 0, 1, 1).overlaps(Rect(2, 2, 3, 3))

    def test_overlap_is_symmetric(self):
        a, b = Rect(0, 0, 2, 2), Rect(1.5, -1, 5, 0.5)
        assert a.overlaps(b) == b.overlaps(a)

    def test_intersection(self):
        inter = Rect(0, 0, 2, 2).intersection(Rect(1, 1, 3, 3))
        assert inter == Rect(1, 1, 2, 2)

    def test_intersection_disjoint_is_none(self):
        assert Rect(0, 0, 1, 1).intersection(Rect(5, 5, 6, 6)) is None

    def test_union(self):
        assert Rect(0, 0, 1, 1).union(Rect(2, 2, 3, 3)) == Rect(0, 0, 3, 3)

    def test_expand_to_point(self):
        assert Rect(0, 0, 1, 1).expand_to_point(Point(2, -1)) == Rect(0, -1, 2, 1)

    def test_enlargement(self):
        base = Rect(0, 0, 1, 1)
        assert base.enlargement(Rect(0, 0, 1, 1)) == 0.0
        assert base.enlargement(Rect(0, 0, 2, 1)) == pytest.approx(1.0)


class TestDirectionalRelations:
    query = Rect(2.0, 2.0, 4.0, 4.0)

    def test_below(self):
        assert Rect(0, 0, 1, 1).is_below(self.query)
        assert not Rect(0, 3, 1, 5).is_below(self.query)

    def test_above(self):
        assert Rect(0, 5, 1, 6).is_above(self.query)

    def test_left_of(self):
        assert Rect(0, 0, 1, 6).is_left_of(self.query)

    def test_right_of(self):
        assert Rect(5, 0, 6, 6).is_right_of(self.query)

    def test_overlapping_satisfies_no_criterion(self):
        overlapping = Rect(3, 3, 5, 5)
        assert not overlapping.is_below(self.query)
        assert not overlapping.is_above(self.query)
        assert not overlapping.is_left_of(self.query)
        assert not overlapping.is_right_of(self.query)


class TestSplitAndQuadrants:
    def test_split_produces_four_quadrants(self):
        cell = Rect(0.0, 0.0, 4.0, 4.0)
        quad_a, quad_b, quad_c, quad_d = cell.split(1.0, 3.0)
        assert quad_a == Rect(0.0, 0.0, 1.0, 3.0)
        assert quad_b == Rect(1.0, 0.0, 4.0, 3.0)
        assert quad_c == Rect(0.0, 3.0, 1.0, 4.0)
        assert quad_d == Rect(1.0, 3.0, 4.0, 4.0)

    def test_split_areas_sum_to_cell_area(self):
        cell = Rect(0.0, 0.0, 10.0, 6.0)
        quadrants = cell.split(2.5, 4.0)
        assert sum(q.area for q in quadrants) == pytest.approx(cell.area)

    def test_split_point_outside_rejected(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 1, 1).split(2.0, 0.5)

    def test_quadrant_of_point_boundary_goes_low(self):
        cell = Rect(0, 0, 4, 4)
        assert cell.quadrant_of_point(2.0, 2.0, 2.0, 2.0) == QUADRANT_A
        assert cell.quadrant_of_point(2.0001, 2.0, 2.0, 2.0) == QUADRANT_B
        assert cell.quadrant_of_point(2.0, 2.0001, 2.0, 2.0) == QUADRANT_C
        assert cell.quadrant_of_point(3.0, 3.0, 2.0, 2.0) == QUADRANT_D


class TestClassifyQuadrants:
    def test_query_within_one_quadrant(self):
        assert classify_quadrants(Rect(0, 0, 1, 1), 2.0, 2.0) == (QUADRANT_A, QUADRANT_A)

    def test_query_spanning_bottom_half(self):
        assert classify_quadrants(Rect(1, 0, 3, 1), 2.0, 2.0) == (QUADRANT_A, QUADRANT_B)

    def test_query_spanning_left_half(self):
        assert classify_quadrants(Rect(0, 1, 1, 3), 2.0, 2.0) == (QUADRANT_A, QUADRANT_C)

    def test_query_spanning_all(self):
        assert classify_quadrants(Rect(1, 1, 3, 3), 2.0, 2.0) == (QUADRANT_A, QUADRANT_D)

    def test_query_in_top_right(self):
        assert classify_quadrants(Rect(3, 3, 4, 4), 2.0, 2.0) == (QUADRANT_D, QUADRANT_D)

    def test_bottom_left_always_dominated(self):
        # The BL corner quadrant never ranks above the TR corner quadrant in
        # the component-wise sense required by the cost model.
        pair = classify_quadrants(Rect(1.9, 2.1, 2.5, 3.0), 2.0, 2.0)
        assert pair == (QUADRANT_C, QUADRANT_D)


class TestBoundingBoxes:
    def test_bounding_box_of_points(self):
        box = bounding_box([Point(1, 5), Point(-2, 3), Point(4, 4)])
        assert box == Rect(-2, 3, 4, 5)

    def test_bounding_box_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_box([])

    def test_bounding_box_of_rects(self):
        box = bounding_box_of_rects([Rect(0, 0, 1, 1), Rect(2, -1, 3, 0.5)])
        assert box == Rect(0, -1, 3, 1)

    def test_bounding_box_of_rects_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_box_of_rects([])
