"""Unit tests for points and the domination partial order."""

import pytest

from repro.geometry import Point, dominates
from repro.geometry.point import as_points


class TestPointBasics:
    def test_as_tuple(self):
        assert Point(1.0, 2.0).as_tuple() == (1.0, 2.0)

    def test_iteration_and_unpacking(self):
        x, y = Point(3.0, 4.0)
        assert (x, y) == (3.0, 4.0)

    def test_indexing(self):
        point = Point(5.0, 6.0)
        assert point[0] == 5.0
        assert point[1] == 6.0

    def test_indexing_out_of_range(self):
        with pytest.raises(IndexError):
            Point(0.0, 0.0)[2]

    def test_len(self):
        assert len(Point(0.0, 0.0)) == 2

    def test_equality_and_hash(self):
        assert Point(1.0, 2.0) == Point(1.0, 2.0)
        assert hash(Point(1.0, 2.0)) == hash(Point(1.0, 2.0))
        assert Point(1.0, 2.0) != Point(2.0, 1.0)

    def test_points_usable_in_sets(self):
        points = {Point(0.0, 0.0), Point(0.0, 0.0), Point(1.0, 1.0)}
        assert len(points) == 2

    def test_translate(self):
        assert Point(1.0, 1.0).translate(2.0, -1.0) == Point(3.0, 0.0)

    def test_distance_squared(self):
        assert Point(0.0, 0.0).distance_squared(Point(3.0, 4.0)) == 25.0

    def test_distance_squared_is_symmetric(self):
        a, b = Point(1.5, -2.0), Point(-0.5, 3.5)
        assert a.distance_squared(b) == b.distance_squared(a)


class TestDomination:
    def test_strictly_greater_dominates(self):
        assert dominates(Point(2.0, 2.0), Point(1.0, 1.0))

    def test_equal_points_do_not_dominate(self):
        assert not dominates(Point(1.0, 1.0), Point(1.0, 1.0))

    def test_one_axis_equal_still_dominates(self):
        assert dominates(Point(2.0, 1.0), Point(1.0, 1.0))
        assert dominates(Point(1.0, 2.0), Point(1.0, 1.0))

    def test_incomparable_points(self):
        assert not dominates(Point(2.0, 0.0), Point(1.0, 1.0))
        assert not dominates(Point(1.0, 1.0), Point(2.0, 0.0))

    def test_domination_is_antisymmetric(self):
        a, b = Point(3.0, 3.0), Point(1.0, 2.0)
        assert dominates(a, b)
        assert not dominates(b, a)


class TestAsPoints:
    def test_converts_tuples(self):
        points = as_points([(0, 0), (1, 2)])
        assert points == [Point(0.0, 0.0), Point(1.0, 2.0)]

    def test_empty_input(self):
        assert as_points([]) == []

    def test_coerces_to_float(self):
        (point,) = as_points([(1, 2)])
        assert isinstance(point.x, float)
        assert isinstance(point.y, float)
