"""Failing fixture: a view-backed class relying on default pickling."""


class Buffer:
    @classmethod
    def from_view(cls, data):
        instance = cls()
        instance._data = data
        return instance

    def _promote(self):
        self._data = self._data.copy()
