"""Failing fixture: boxes Point objects inside a hot-path scan."""

# repro-lint: hot-path

from repro.geometry import Point


def scan(xs, ys, query):
    hits = []
    for x, y in zip(xs, ys):
        if query.contains(Point(x, y)):
            hits.append(Point(x, y))
    return hits


def count(result_set):
    return len(result_set.points())
