"""Passing fixture: a view-backed class with explicit pickle protocol."""


class Buffer:
    def _promote(self):
        self._data = self._data.copy()

    def __getstate__(self):
        return {"data": self._data.copy()}

    def __setstate__(self, state):
        self._data = state["data"]
