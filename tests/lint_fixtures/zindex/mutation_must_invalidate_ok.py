"""Passing fixture: structural mutation paired with cache invalidation."""


class Index:
    def shrink(self):
        self.root = self.root.children[0]
        self._invalidate_flat()

    def retag(self, index, value):
        self.nonempty[index] = value
        self.leaflist.invalidate_packed()
