"""Failing fixture: rebinds the root without invalidating derived caches."""


class Index:
    def shrink(self):
        self.root = self.root.children[0]

    def retag(self, index, value):
        self.nonempty[index] = value
