"""Passing fixture: seeds thread through parameters."""

import numpy as np


def sample(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(size=n)
