"""Passing fixture: defaulted options are keyword-only on the public API."""

# repro-lint: public-api


def build_index(name, points, workload=(), *, leaf_capacity=64, seed=0):
    return (name, points, workload, leaf_capacity, seed)
