"""Passing fixture: a hot-path module that stays columnar."""

# repro-lint: hot-path

import numpy as np

from repro.geometry import Point


def scan_columns(xs, ys, query):
    mask = (xs >= query.xmin) & (xs <= query.xmax)
    return np.flatnonzero(mask)


def boxed_points(xs, ys):
    # Whitelisted boxer: the result-materialisation boundary.
    return [Point(x, y) for x, y in zip(xs, ys)]
