"""Failing fixture: a literal seed hidden inside library code."""

import numpy as np
import random


def sample(n):
    rng = np.random.default_rng(0)
    random.seed(42)
    return rng.uniform(size=n)
