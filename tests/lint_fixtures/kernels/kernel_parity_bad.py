# repro-lint: kernel-parity
"""Failing fixture: an unstable default sort and a fastmath JIT kernel."""

import numpy as np


def njit(**kwargs):
    def wrap(fn):
        return fn
    return wrap


@njit(cache=True, fastmath=True)
def ranked(d2):
    return np.argsort(d2)
