# repro-lint: kernel-parity
"""Passing fixture: stable sorts, fastmath left off."""

import numpy as np


def njit(**kwargs):
    def wrap(fn):
        return fn
    return wrap


@njit(cache=True)
def ranked(d2):
    return np.argsort(d2, kind="stable")


@njit(cache=True, fastmath=False)
def ordered(values):
    return np.sort(values, kind="stable")
