"""Failing fixture: clocks, entropy and set order leak into written bytes."""

import os
import time
import zipfile


def write_container(path, members):
    with zipfile.ZipFile(path, "w") as archive:
        archive.writestr("stamp", str(time.time()))
        archive.writestr("nonce", os.urandom(8).hex())
        for name in set(members):
            archive.writestr(name, members[name])
