"""Passing fixture: a write path with fully deterministic output."""

import zipfile


def write_container(path, members):
    with zipfile.ZipFile(path, "w") as archive:
        for name in sorted(members):
            archive.writestr(name, members[name])
