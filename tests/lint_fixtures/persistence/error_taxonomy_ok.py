"""Passing fixture: load paths raise the persistence taxonomy."""

from repro.persistence.errors import SnapshotFormatError


def load_manifest(path):
    if not path.exists():
        raise SnapshotFormatError(f"{path} is not a snapshot container")
    return path.read_text()


def save_manifest(path, payload):
    # Not a load path: input validation may raise builtins.
    if not isinstance(payload, dict):
        raise TypeError("payload must be a dict")
