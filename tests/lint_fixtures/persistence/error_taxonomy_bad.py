"""Failing fixture: bare built-in exceptions escape a load path."""


def load_manifest(path):
    if not path.exists():
        raise ValueError(f"{path} is not a snapshot container")
    return path.read_text()


class Plan:
    @classmethod
    def from_manifest(cls, manifest):
        if "format" not in manifest:
            raise KeyError("format")
        return cls()
