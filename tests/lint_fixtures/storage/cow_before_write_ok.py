"""Passing fixture: promotion precedes every item-write to a COW buffer."""


class Page:
    def _promote(self):
        self._xs = self._xs.copy()
        self._owned = True

    def add(self, index, value):
        if not self._owned:
            self._promote()
        self._xs[index] = value

    def __getstate__(self):
        return {"xs": self._xs.copy()}

    def __setstate__(self, state):
        self._xs = state["xs"]
        self._owned = True
