"""Failing fixture: writes through a view-backed buffer without promoting."""


class Page:
    def _promote(self):
        self._xs = self._xs.copy()
        self._owned = True

    def add(self, index, value):
        self._xs[index] = value

    def __getstate__(self):
        return {"xs": self._xs.copy()}

    def __setstate__(self, state):
        self._xs = state["xs"]
        self._owned = True
