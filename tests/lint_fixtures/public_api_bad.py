"""Failing fixture: two defaulted positional params on a public entry point."""

# repro-lint: public-api


def build_index(name, points, leaf_capacity=64, seed=0):
    return (name, points, leaf_capacity, seed)
