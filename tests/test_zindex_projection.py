"""Regression tests for the projection-interval and update bugfixes.

Covers three defects fixed together with the columnar storage engine:

* the range-query projection derived its scan interval from only the
  bottom-left/top-right query corners, which silently drops results under
  non-monotone child orderings;
* inserting a point outside the original extent expanded ``_extent`` but
  left the point in a leaf whose cell does not contain it, making it
  unfindable;
* leaf splits rebuilt the entire LeafList (and all look-ahead pointers) per
  overflow; they are now repaired incrementally and must stay byte-for-byte
  equivalent to a from-scratch rebuild.
"""

import numpy as np
import pytest

from repro.geometry import Point, Rect
from repro.interfaces import brute_force_range
from repro.core import BaseWithSkipping, WaZI
from repro.storage.leaflist import SKIP_CRITERIA
from repro.zindex import BaseZIndex, ZIndex
from repro.zindex.node import ORDER_BADC
from repro.zindex.skipping import build_lookahead_pointers
from repro.zindex.splitters import FixedDecisionStrategy, SplitDecision


def result_set(points):
    return sorted((p.x, p.y) for p in points)


class TestFourCornerProjection:
    """The scan interval must cover the leaves of all four query corners."""

    def build_adversarial_index(self):
        """One split at the centre with the non-monotone "badc" ordering.

        Curve order becomes B(0), A(1), D(2), C(3).  A query spanning all
        four quadrants has its BL corner in A (rank 1) and its TR corner in
        D (rank 2): the old two-corner interval [1, 2] excludes the leaves
        of B and C even though they hold matching points.
        """
        points = []
        for cx, cy in ((0.2, 0.2), (0.8, 0.2), (0.2, 0.8), (0.8, 0.8)):
            points += [
                Point(cx - 0.05, cy - 0.05),
                Point(cx + 0.05, cy + 0.05),
                Point(cx, cy),
            ]
        strategy = FixedDecisionStrategy(SplitDecision(0.5, 0.5, ORDER_BADC))
        return points, ZIndex(points, leaf_capacity=4, split_strategy=strategy)

    def test_adversarial_ordering_returns_exact_results(self):
        points, index = self.build_adversarial_index()
        query = Rect(0.1, 0.1, 0.9, 0.9)
        got = result_set(index.range_query(query))
        expected = result_set(brute_force_range(points, query))
        assert got == expected

    def test_two_corner_interval_would_have_dropped_leaves(self):
        """Documents the failure mode the fix addresses: under "badc" the
        BL/TR corners alone bound a strict sub-interval of the relevant
        leaves, so the old projection could not have been correct."""
        points, index = self.build_adversarial_index()
        query = Rect(0.1, 0.1, 0.9, 0.9)
        bl = index._leaf_for(query.xmin, query.ymin).leaf_index
        tr = index._leaf_for(query.xmax, query.ymax).leaf_index
        two_corner = set(range(min(bl, tr), max(bl, tr) + 1))
        low, high, relevant = index._project(query)
        assert set(relevant) - two_corner, (
            "expected relevant leaves outside the two-corner interval"
        )
        assert (low, high) == (0, len(index.leaflist) - 1)

    def test_monotone_orderings_unaffected(self, uniform_points, sample_queries):
        index = BaseZIndex(uniform_points, leaf_capacity=16)
        for query in sample_queries[:10]:
            expected = brute_force_range(uniform_points, query)
            assert result_set(index.range_query(query)) == result_set(expected)


class TestOutOfExtentInsert:
    """Inserting outside the root cell must keep the point queryable."""

    def build(self):
        rng = np.random.default_rng(11)
        points = [Point(float(x), float(y)) for x, y in rng.random((200, 2))]
        return points, BaseZIndex(points, leaf_capacity=16)

    def test_far_insert_found_by_range_query(self):
        points, index = self.build()
        far = Point(10.0, 10.0)
        index.insert(far)
        assert index.point_query(far)
        hits = index.range_query(Rect(9.0, 9.0, 11.0, 11.0))
        assert result_set(hits) == [(10.0, 10.0)]
        assert len(index) == len(points) + 1

    def test_negative_direction_insert(self):
        points, index = self.build()
        far = Point(-5.0, -7.5)
        index.insert(far)
        assert index.point_query(far)
        assert result_set(index.range_query(Rect(-8.0, -8.0, -4.0, -4.0))) == [
            (-5.0, -7.5)
        ]

    def test_full_result_set_preserved_after_extent_growth(self):
        points, index = self.build()
        extras = [Point(3.0, 3.0), Point(-2.0, 0.5), Point(0.5, 4.0)]
        for point in extras:
            index.insert(point)
        everything = points + extras
        box = Rect(-10.0, -10.0, 10.0, 10.0)
        assert result_set(index.range_query(box)) == result_set(everything)

    def test_skipping_index_out_of_extent(self):
        rng = np.random.default_rng(12)
        points = [Point(float(x), float(y)) for x, y in rng.random((150, 2))]
        index = BaseWithSkipping(points, leaf_capacity=8)
        far = Point(42.0, -3.0)
        index.insert(far)
        assert index.point_query(far)
        assert index.leaflist.check_linked()
        assert index.leaflist.check_skip_pointers_forward()


class TestIncrementalSplitRepair:
    """Splice-based leaf splits must match a from-scratch rebuild exactly."""

    @pytest.mark.parametrize("use_skipping", [False, True])
    def test_many_inserts_keep_list_consistent(self, use_skipping):
        rng = np.random.default_rng(7)
        points = [Point(float(x), float(y)) for x, y in rng.random((60, 2))]
        cls = BaseWithSkipping if use_skipping else BaseZIndex
        index = cls(points, leaf_capacity=8)
        extras = [Point(float(x), float(y)) for x, y in rng.random((120, 2))]
        for point in extras:
            index.insert(point)
            assert index.leaflist.check_linked()
            assert index.leaflist.check_skip_pointers_forward()
        everything = points + extras
        box = Rect(0.0, 0.0, 1.0, 1.0)
        assert result_set(index.range_query(box)) == result_set(everything)

    def test_pointers_equal_full_rebuild_after_inserts(self):
        rng = np.random.default_rng(8)
        points = [Point(float(x), float(y)) for x, y in rng.random((40, 2))]
        workload = [Rect(0.2, 0.2, 0.6, 0.6)]
        index = WaZI(points, workload, leaf_capacity=8, num_candidates=4, seed=0)
        for x, y in rng.random((80, 2)):
            index.insert(Point(float(x), float(y)))
        incremental = [
            [entry.skip_pointer(criterion) for criterion in SKIP_CRITERIA]
            for entry in index.leaflist
        ]
        build_lookahead_pointers(index.leaflist)
        fresh = [
            [entry.skip_pointer(criterion) for criterion in SKIP_CRITERIA]
            for entry in index.leaflist
        ]
        assert incremental == fresh

    def test_leaf_indices_track_tree_after_splits(self):
        from repro.zindex.node import iter_leaves_in_curve_order

        rng = np.random.default_rng(9)
        points = [Point(float(x), float(y)) for x, y in rng.random((30, 2))]
        index = BaseZIndex(points, leaf_capacity=8)
        for x, y in rng.random((90, 2)):
            index.insert(Point(float(x), float(y)))
        leaves = list(iter_leaves_in_curve_order(index.root))
        assert [leaf.leaf_index for leaf in leaves] == list(range(len(index.leaflist)))
        for leaf in leaves:
            assert index.leaflist[leaf.leaf_index].cell == leaf.cell


class TestBatchRangeQuery:
    """batch_range_query must match per-query results exactly."""

    def test_zindex_batch_matches_singles(self, uniform_points, sample_queries):
        index = BaseZIndex(uniform_points, leaf_capacity=16)
        singles = [index.range_query(query) for query in sample_queries]
        batch = index.batch_range_query(sample_queries)
        assert [result_set(r) for r in batch] == [result_set(r) for r in singles]
        # Same objects, same order — byte-identical result lists.
        assert batch == singles

    def test_wazi_batch_matches_singles(self, clustered_points, small_workload):
        index = WaZI(
            clustered_points, small_workload.queries, leaf_capacity=32, seed=3
        )
        singles = [index.range_query(query) for query in small_workload.queries]
        batch = index.batch_range_query(small_workload.queries)
        assert batch == singles

    def test_batch_counters_match_singles(self, uniform_points, sample_queries):
        index_a = BaseWithSkipping(uniform_points, leaf_capacity=16)
        index_b = BaseWithSkipping(uniform_points, leaf_capacity=16)
        for query in sample_queries:
            index_a.range_query(query)
        index_b.batch_range_query(sample_queries)
        assert index_a.counters.snapshot() == index_b.counters.snapshot()

    def test_default_batch_implementation_for_baselines(self, uniform_points, sample_queries):
        from repro.baselines import STRRTree

        index = STRRTree(uniform_points, leaf_capacity=16)
        singles = [result_set(index.range_query(q)) for q in sample_queries[:8]]
        batch = [result_set(r) for r in index.batch_range_query(sample_queries[:8])]
        assert batch == singles

    def test_batch_on_empty_index(self):
        index = BaseZIndex([])
        assert index.batch_range_query([Rect(0, 0, 1, 1)]) == [[]]


class TestDeletePointerRefresh:
    """Deletes shrink leaf bboxes; skip pointers must be refreshed (a latent
    seed bug: the scan could jump past a leaf the query still overlaps)."""

    def test_deletes_keep_skipping_queries_exact(self):
        for seed in range(25):
            rng = np.random.default_rng(seed)
            points = [Point(float(x), float(y)) for x, y in rng.random((120, 2))]
            index = BaseWithSkipping(points, leaf_capacity=4)
            live = list(points)
            for i in sorted(set(rng.permutation(120)[:40].tolist())):
                if index.delete(points[i]):
                    live.remove(points[i])
            for _ in range(10):
                x1, x2 = sorted(rng.random(2))
                y1, y2 = sorted(rng.random(2))
                query = Rect(float(x1), float(y1), float(x2), float(y2))
                got = result_set(index.range_query(query))
                expected = result_set(
                    p for p in live if query.contains_xy(p.x, p.y)
                )
                assert got == expected, f"seed {seed}"

    def test_pointers_equal_full_rebuild_after_deletes(self):
        rng = np.random.default_rng(14)
        points = [Point(float(x), float(y)) for x, y in rng.random((150, 2))]
        index = WaZI(
            points, [Rect(0.2, 0.2, 0.7, 0.7)], leaf_capacity=8,
            num_candidates=4, seed=1,
        )
        for i in range(0, 150, 4):
            index.delete(points[i])
        incremental = [
            [entry.skip_pointer(criterion) for criterion in SKIP_CRITERIA]
            for entry in index.leaflist
        ]
        build_lookahead_pointers(index.leaflist)
        fresh = [
            [entry.skip_pointer(criterion) for criterion in SKIP_CRITERIA]
            for entry in index.leaflist
        ]
        assert incremental == fresh


class TestStaleScanBudget:
    """Mixed update/query workloads use the per-page path instead of paying
    an O(N) flat-cache rebuild per query."""

    def test_alternating_inserts_and_queries_stay_exact(self):
        rng = np.random.default_rng(15)
        points = [Point(float(x), float(y)) for x, y in rng.random((300, 2))]
        index = BaseZIndex(points, leaf_capacity=16)
        live = list(points)
        query = Rect(0.2, 0.2, 0.8, 0.8)
        for x, y in rng.random((50, 2)):
            # Strictly inside the extent so no insert triggers a full rebuild.
            point = Point(0.1 + 0.8 * float(x), 0.1 + 0.8 * float(y))
            index.insert(point)
            live.append(point)
            got = result_set(index.range_query(query))
            expected = result_set(p for p in live if query.contains_xy(p.x, p.y))
            assert got == expected
            # A single query after a mutation must not rebuild the cache.
            assert index._flat_starts is None

    def test_query_burst_rebuilds_flat_cache_once(self):
        rng = np.random.default_rng(16)
        points = [Point(float(x), float(y)) for x, y in rng.random((200, 2))]
        index = BaseZIndex(points, leaf_capacity=16)
        index.insert(Point(0.5, 0.5))
        query = Rect(0.1, 0.1, 0.9, 0.9)
        for _ in range(index._STALE_SCAN_BUDGET + 1):
            index.range_query(query)
        assert index._flat_starts is not None
