"""ResultSet: lazy columnar views vs the eager boxed lists they replace.

The redesign's core correctness claim: every query path now returns a
:class:`~repro.results.ResultSet` whose lazy surfaces (``.count()``,
``.as_arrays()``, ``.mask()``/``.take()``) and boxed surfaces
(``.points()``, iteration, sequence protocol) are element- and
order-identical to the eager ``List[Point]`` the pre-redesign API
returned — for all 12 index names, including count-only mode and queries
after mutations, with identical cost counters.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.api import INDEX_NAMES, build_index
from repro.engine import SpatialEngine
from repro.geometry import Point, Rect
from repro.interfaces import brute_force_knn, brute_force_range
from repro.query import RangeQuery
from repro.results import ResultSet
from repro.zindex import ZIndex

#: Index names whose indexes support inserts/deletes (for mutation tests).
MUTABLE_NAMES = ("wazi", "wazi-sk", "base", "base+sk", "flood", "quadtree", "quasii", "rtree")

coordinates = st.floats(min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False)


@st.composite
def points_strategy(draw, min_size=1, max_size=80):
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    xs = draw(st.lists(coordinates, min_size=n, max_size=n))
    ys = draw(st.lists(coordinates, min_size=n, max_size=n))
    return [Point(x, y) for x, y in zip(xs, ys)]


@st.composite
def rect_strategy(draw):
    x1, x2 = sorted((draw(coordinates), draw(coordinates)))
    y1, y2 = sorted((draw(coordinates), draw(coordinates)))
    return Rect(x1, y1, x2, y2)


def assert_lazy_matches_eager(result: ResultSet):
    """The columnar surfaces agree with the boxed surfaces, element for element."""
    boxed = result.points()
    assert result.count() == len(boxed) == len(result)
    xs, ys = result.as_arrays()
    assert xs.shape == ys.shape == (len(boxed),)
    assert [Point(x, y) for x, y in zip(xs.tolist(), ys.tolist())] == boxed
    assert list(result) == boxed
    assert result == boxed  # sequence-protocol equality with the eager list
    # The arrays are frozen views.
    with pytest.raises(ValueError):
        xs[:1] = 0.0


class TestResultSetUnit:
    def test_from_points_round_trip(self):
        pts = [Point(1.0, 2.0), Point(3.0, 4.0)]
        result = ResultSet.from_points(pts)
        assert_lazy_matches_eager(result)
        assert result.points() == pts
        assert result.points() is not result.points()  # fresh list per call

    def test_from_arrays_boxes_lazily(self):
        calls = []

        def boxer():
            calls.append(1)
            return [Point(1.0, 5.0), Point(2.0, 6.0)]

        result = ResultSet.from_arrays(
            np.array([1.0, 2.0]), np.array([5.0, 6.0]), boxer=boxer
        )
        assert result.count() == 2
        assert result.as_arrays()[0].tolist() == [1.0, 2.0]
        assert not calls  # columnar surface never boxes
        assert result.points() == [Point(1.0, 5.0), Point(2.0, 6.0)]
        assert calls == [1]
        result.points()
        assert calls == [1]  # boxing cached

    def test_empty(self):
        result = ResultSet.empty()
        assert result.count() == 0
        assert result == []
        assert not result
        assert result.points() == []
        assert result.as_arrays()[0].shape == (0,)

    def test_sequence_protocol(self):
        pts = [Point(0.0, 0.0), Point(1.0, 1.0), Point(2.0, 2.0)]
        result = ResultSet.from_points(pts)
        assert result[0] == pts[0]
        assert result[-1] == pts[-1]
        assert result[1:] == pts[1:]
        assert Point(1.0, 1.0) in result
        assert Point(9.0, 9.0) not in result
        assert 17 not in result  # non-point membership is simply False
        assert result == pts and pts == list(result)
        assert result != pts[:2]
        assert result != [Point(0.0, 0.0), Point(1.0, 1.0), Point(2.0, 9.0)]

    def test_equality_between_result_sets(self):
        a = ResultSet.from_points([Point(1.0, 2.0)])
        b = ResultSet.from_arrays(np.array([1.0]), np.array([2.0]))
        c = ResultSet.from_arrays(np.array([1.5]), np.array([2.0]))
        assert a == b
        assert a != c

    def test_mask_and_take(self):
        pts = [Point(float(i), float(-i)) for i in range(5)]
        result = ResultSet.from_points(pts)
        kept = result.mask(np.array([True, False, True, False, True]))
        assert kept == [pts[0], pts[2], pts[4]]
        taken = result.take([3, 1])
        assert taken == [pts[3], pts[1]]
        assert result.take(np.array([-1])) == [pts[-1]]
        with pytest.raises(ValueError):
            result.mask(np.array([True]))  # wrong length
        with pytest.raises(IndexError):
            result.take([5])

    def test_mask_take_stay_columnar(self):
        boxed = []

        def boxer():
            boxed.append(1)
            return [Point(1.0, 4.0), Point(2.0, 5.0), Point(3.0, 6.0)]

        result = ResultSet.from_arrays(
            np.array([1.0, 2.0, 3.0]), np.array([4.0, 5.0, 6.0]), boxer=boxer
        )
        narrowed = result.mask(np.array([True, False, True]))
        assert narrowed.count() == 2
        assert narrowed.as_arrays()[0].tolist() == [1.0, 3.0]
        assert not boxed  # selection never boxed anything

    def test_take_reuses_boxed_objects(self):
        pts = [Point(1.0, 1.0), Point(2.0, 2.0)]
        result = ResultSet.from_points(pts)
        taken = result.take([1])
        assert taken.points()[0] is pts[1]

    def test_head(self):
        pts = [Point(float(i), 0.0) for i in range(4)]
        result = ResultSet.from_points(pts)
        assert result.head(2) == pts[:2]
        assert result.head(99) is result
        with pytest.raises(ValueError):
            result.head(-1)

    def test_boxer_length_mismatch_raises(self):
        result = ResultSet.from_arrays(
            np.array([1.0]), np.array([2.0]), boxer=lambda: []
        )
        with pytest.raises(RuntimeError):
            result.points()

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ResultSet.from_arrays(np.array([1.0, 2.0]), np.array([1.0]))

    def test_unhashable_like_list(self):
        with pytest.raises(TypeError):
            hash(ResultSet.empty())


class TestLazyEqualsEagerAllIndexes:
    """Lazy views vs eager boxed lists, property-based over all 12 indexes."""

    @pytest.mark.parametrize("name", INDEX_NAMES)
    @given(points=points_strategy(), query=rect_strategy())
    @settings(max_examples=8, deadline=None)
    def test_range_query_surfaces_agree(self, name, points, query):
        workload = [query]
        index = build_index(name, points, workload, leaf_capacity=8, seed=3)
        result = index.range_query(query)
        assert_lazy_matches_eager(result)
        assert sorted(result.points(), key=Point.as_tuple) == sorted(
            brute_force_range(points, query), key=Point.as_tuple
        )
        # Count-only execution matches, with identical cost counters.
        twin = build_index(name, points, workload, leaf_capacity=8, seed=3)
        twin.reset_counters()
        count = twin.range_count(query)
        index.reset_counters()
        again = index.range_query(query)
        assert count == again.count()
        assert twin.counters.snapshot() == index.counters.snapshot()

    @pytest.mark.parametrize("name", INDEX_NAMES)
    @given(points=points_strategy(min_size=3), k=st.integers(min_value=1, max_value=6))
    @settings(max_examples=6, deadline=None)
    def test_knn_surfaces_agree(self, name, points, k):
        index = build_index(name, points, [], leaf_capacity=8, seed=3)
        center = points[len(points) // 2]
        result = index.knn(center, k)
        assert_lazy_matches_eager(result)
        expected = brute_force_knn(points, center, k)
        got = result.points()
        assert len(got) == len(expected)
        assert [center.distance_squared(p) for p in got] == [
            center.distance_squared(p) for p in expected
        ]

    @pytest.mark.parametrize("name", INDEX_NAMES)
    def test_batch_surfaces_agree(self, name, uniform_points, sample_queries):
        index = build_index(name, uniform_points, sample_queries, leaf_capacity=16, seed=5)
        queries = sample_queries[:12]
        batch = index.batch_range_query(queries)
        counts = build_index(
            name, uniform_points, sample_queries, leaf_capacity=16, seed=5
        ).batch_range_count(queries)
        for query, result, count in zip(queries, batch, counts):
            assert_lazy_matches_eager(result)
            assert result == index.range_query(query)
            assert count == result.count()

    @pytest.mark.parametrize("name", MUTABLE_NAMES)
    @given(points=points_strategy(min_size=4), extra=points_strategy(min_size=1, max_size=6),
           query=rect_strategy())
    @settings(max_examples=5, deadline=None)
    def test_post_mutation_queries_agree(self, name, points, extra, query):
        index = build_index(name, points, [query], leaf_capacity=4, seed=3)
        live = list(points)
        before = index.range_query(query)  # result captured before mutations
        before_expected = sorted(
            brute_force_range(live, query), key=Point.as_tuple
        )
        for point in extra:
            index.insert(point)
            live.append(point)
        victim = live[0]
        if index.delete(victim):
            live.remove(victim)
        result = index.range_query(query)
        assert_lazy_matches_eager(result)
        assert sorted(result.points(), key=Point.as_tuple) == sorted(
            brute_force_range(live, query), key=Point.as_tuple
        )
        assert index.range_count(query) == result.count()
        # The pre-mutation result set still answers from its captured rows.
        assert sorted(before.points(), key=Point.as_tuple) == before_expected


class TestZIndexLaziness:
    """The columnar core's results defer boxing to explicit consumption."""

    def test_range_result_boxes_lazily_and_identity_preserving(self, uniform_points):
        index = build_index("base", uniform_points, leaf_capacity=16)
        query = Rect(0.2, 0.2, 0.8, 0.8)
        result = index.range_query(query)
        assert result.count() > 0
        assert index._flat_points is None  # nothing boxed yet
        first = result.points()
        second = index.range_query(query).points()
        assert [a is b for a, b in zip(first, second)] == [True] * len(first)

    def test_post_mutation_resultset_survives_cache_invalidation(self, uniform_points):
        index = build_index("base", uniform_points, leaf_capacity=16)
        query = Rect(0.0, 0.0, 1.0, 1.0)
        result = index.range_query(query)
        expected = result.count()
        index.insert(Point(0.5, 0.5))  # invalidates the flat cache
        boxed = result.points()  # boxes from the captured columns
        assert len(boxed) == expected
        assert sorted(boxed, key=Point.as_tuple) == sorted(
            brute_force_range(uniform_points, query), key=Point.as_tuple
        )

    def test_batch_range_count_honours_stale_budget_after_mutation(self, uniform_points):
        index = build_index("base", uniform_points, leaf_capacity=16)
        index.insert(Point(0.5, 0.5))  # flat cache stale, budget armed
        live = uniform_points + [Point(0.5, 0.5)]
        queries = [Rect(0.1, 0.1, 0.6, 0.6), Rect(0.4, 0.4, 0.9, 0.9)]
        counts = index.batch_range_count(queries)
        assert counts == [len(brute_force_range(live, q)) for q in queries]
        assert index._flat_starts is None  # the budgeted per-page path served it

    def test_resultset_does_not_pin_the_index(self, uniform_points):
        import gc
        import weakref

        index = build_index("base", uniform_points, leaf_capacity=16)
        result = index.range_query(Rect(0.2, 0.2, 0.8, 0.8))
        expected = result.count()
        ref = weakref.ref(index)
        del index
        gc.collect()
        assert ref() is None  # un-boxed results hold no strong index reference
        assert len(result.points()) == expected  # boxes from the captured columns

    def test_engine_count_only_skips_selection(self, uniform_points, sample_queries):
        engine = SpatialEngine.build("base", uniform_points, leaf_capacity=16)
        plans = [RangeQuery(q) for q in sample_queries]
        counts = engine.execute_many(plans, count_only=True)
        results = engine.execute_many(plans)
        assert counts == [r.count() for r in results]
        assert isinstance(engine.index, ZIndex)
