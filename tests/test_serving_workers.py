"""Tests for worker-process serving: shard hosts and replica pools.

The headline property (the mmap byte-identity guarantee): N separate
processes opening the same mmap'd snapshot answer a shared query batch
byte-identically — results *and* cost counters — to a single in-memory
engine.  Plus the worker plumbing: pipelined requests, error replies,
round-robin shard hosting, and clean shutdown.
"""

import numpy as np
import pytest

from repro.geometry import Point, Rect
from repro.persistence import save_snapshot
from repro.serving import (
    ReplicaPool,
    ServingError,
    ShardHost,
    build_shards,
    open_sharded,
    process_rss,
)
from repro.zindex import ZIndex


def _build(n=2500, seed=31, span=250.0, **kwargs):
    rng = np.random.default_rng(seed)
    pts = [Point(float(x), float(y)) for x, y in rng.uniform(0, span, size=(n, 2))]
    kwargs.setdefault("leaf_capacity", 32)
    return ZIndex(pts, **kwargs), rng


def _query_batch(rng, count=30, span=250.0):
    windows = []
    for _ in range(count):
        x0, x1 = sorted(rng.uniform(0, span, 2).tolist())
        y0, y1 = sorted(rng.uniform(0, span, 2).tolist())
        windows.append([x0, y0, x1, y1])
    return np.asarray(windows, dtype=np.float64)


class TestReplicaByteIdentity:
    """Satellite property test: N processes × one mmap snapshot ≡ one engine."""

    N_REPLICAS = 3

    @pytest.fixture()
    def setup(self, tmp_path):
        index, rng = _build(use_skipping=True)
        path = tmp_path / "snap.zip"
        save_snapshot(index, path)
        with ReplicaPool(path, self.N_REPLICAS, mmap=True, validate=False) as pool:
            yield index, pool, rng

    def test_ranges_and_counters_identical_across_processes(self, setup):
        index, pool, rng = setup
        windows = _query_batch(rng)
        index.reset_counters()
        pool.broadcast("reset")
        rects = [Rect(*row) for row in windows.tolist()]
        expect = [r.as_arrays() for r in index.batch_range_query(rects)]
        expect_counters = dict(vars(index.counters))
        replies = pool.broadcast("batch_range_rows", windows)
        assert len(replies) == self.N_REPLICAS
        for rows, delta, busy in replies:
            assert busy >= 0.0
            assert delta == expect_counters
            for (ex, ey), (gx, gy) in zip(expect, rows):
                np.testing.assert_array_equal(ex, gx)
                np.testing.assert_array_equal(ey, gy)
        # The replicas' cumulative counters agree with each other too.
        counters = pool.broadcast("counters")
        assert all(c == expect_counters for c in counters)

    def test_knn_and_radius_identical_across_processes(self, setup):
        index, pool, rng = setup
        centers = rng.uniform(0, 250, size=(10, 2))
        probes = [Point(float(x), float(y)) for x, y in centers]
        radius = index._default_radius()
        index.reset_counters()
        pool.broadcast("reset")
        expect = [r.as_arrays() for r in index.batch_knn(probes, 6, initial_radius=radius)]
        expect_counters = dict(vars(index.counters))
        for rows, delta, _busy in pool.broadcast("batch_knn_rows", (centers, 6, radius)):
            assert delta == expect_counters
            for (ex, ey), (gx, gy) in zip(expect, rows):
                np.testing.assert_array_equal(ex, gx)
                np.testing.assert_array_equal(ey, gy)
        expect_rad = [r.as_arrays() for r in index.batch_radius_query(probes, 9.0)]
        for rows, _delta, _busy in pool.broadcast("batch_radius_rows", (centers, 9.0)):
            for (ex, ey), (gx, gy) in zip(expect_rad, rows):
                np.testing.assert_array_equal(ex, gx)
                np.testing.assert_array_equal(ey, gy)

    def test_replicas_map_not_copy(self, setup):
        _index, pool, _rng = setup
        for info in pool.broadcast("column_info"):
            assert info["store"] == "MmapColumnStore"
            assert info["mapped"] and all(info["mapped"].values())
        sizes = pool.broadcast("num_points")
        assert len(set(sizes)) == 1


class TestShardHost:
    def test_host_serves_multiple_slots(self, tmp_path):
        index, rng = _build(n=1000)
        a, b = tmp_path / "a.zip", tmp_path / "b.zip"
        save_snapshot(index, a)
        save_snapshot(index, b)
        with ShardHost([a, b]) as host:
            assert host.slot_sizes == [len(index), len(index)]
            assert host.request(0, "num_points") == len(index)
            assert host.request(1, "num_points") == len(index)
            # Pipelined: both submitted before either reply is read.
            host.send(0, "num_points")
            host.send(1, "size_bytes")
            assert host.receive() == len(index)
            assert host.receive() > 0

    def test_error_replies_do_not_kill_the_worker(self, tmp_path):
        index, _ = _build(n=400)
        path = tmp_path / "s.zip"
        save_snapshot(index, path)
        with ShardHost([path]) as host:
            with pytest.raises(ServingError):
                host.request(0, "no_such_method")
            # Still serving.
            assert host.request(0, "num_points") == len(index)

    def test_bad_snapshot_fails_fast(self, tmp_path):
        bad = tmp_path / "bad.zip"
        bad.write_bytes(b"junk")
        with pytest.raises(ServingError):
            ShardHost([bad])

    def test_receive_without_send_raises(self, tmp_path):
        index, _ = _build(n=300)
        path = tmp_path / "s.zip"
        save_snapshot(index, path)
        with ShardHost([path]) as host:
            with pytest.raises(RuntimeError):
                host.receive()

    def test_rss_probe(self, tmp_path):
        index, _ = _build(n=300)
        path = tmp_path / "s.zip"
        save_snapshot(index, path)
        with ShardHost([path]) as host:
            readings = host.request(0, "rss")
        rss = readings["rss_bytes"]
        assert rss is None or rss > 0
        assert process_rss() is None or process_rss() > 0


class TestWorkerShardedIndex:
    """The dispatcher over real worker processes: identical to in-process."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_worker_counts_all_byte_identical(self, tmp_path, workers):
        index, rng = _build(n=2000, use_skipping=True)
        build_shards(index, tmp_path / "shards", num_shards=4)
        queries = []
        for _ in range(25):
            x0, x1 = sorted(rng.uniform(0, 250, 2).tolist())
            y0, y1 = sorted(rng.uniform(0, 250, 2).tolist())
            queries.append(Rect(x0, y0, x1, y1))
        centers = [Point(float(x), float(y)) for x, y in rng.uniform(0, 250, size=(8, 2))]
        expect_ranges = index.batch_range_query(queries)
        expect_knn = index.batch_knn(centers, 5)
        expect_radius = index.batch_radius_query(centers, 11.0)
        with open_sharded(tmp_path / "shards", workers=workers) as sharded:
            got_ranges = sharded.batch_range_query(queries)
            got_knn = sharded.batch_knn(centers, 5)
            got_radius = sharded.batch_radius_query(centers, 11.0)
            for expect, got in (
                (expect_ranges, got_ranges),
                (expect_knn, got_knn),
                (expect_radius, got_radius),
            ):
                for e, g in zip(expect, got):
                    np.testing.assert_array_equal(e.as_arrays()[0], g.as_arrays()[0])
                    np.testing.assert_array_equal(e.as_arrays()[1], g.as_arrays()[1])
            assert sharded.point_query(index.all_points()[0])
            info = sharded.column_info()
            assert all(entry["store"] == "MmapColumnStore" for entry in info)
            readings = sharded.worker_rss()
            assert len(readings) == sharded.num_shards

    def test_close_shuts_workers_down(self, tmp_path):
        index, _ = _build(n=600)
        build_shards(index, tmp_path / "shards", num_shards=2)
        sharded = open_sharded(tmp_path / "shards", workers=2)
        hosts = {backend.host for backend in sharded._backends}
        pids = [host.pid for host in hosts]
        assert all(pid is not None for pid in pids)
        sharded.close()
        import os

        for pid in pids:
            # After close+join the pid must no longer be a live child.
            try:
                os.kill(pid, 0)
            except (ProcessLookupError, PermissionError):
                continue
            # Reaped zombies keep the pid visible briefly; waitpid confirms.
            done, _ = os.waitpid(pid, os.WNOHANG)
            assert done in (0, pid)
