"""Unit tests for the BIGMIN / LITMAX computation."""

import numpy as np
import pytest

from repro.zorder import bigmin, litmax, z_range_overlaps
from repro.zorder.bigmin import z_range_of_rect
from repro.zorder.morton import deinterleave, interleave


def brute_force_bigmin(z_current, z_min, z_max, bits):
    """Reference implementation: scan all addresses above z_current."""
    (min_x, min_y) = deinterleave(z_min, bits)
    (max_x, max_y) = deinterleave(z_max, bits)
    candidates = [
        interleave(x, y, bits)
        for x in range(min_x, max_x + 1)
        for y in range(min_y, max_y + 1)
    ]
    above = [z for z in candidates if z > z_current]
    return min(above) if above else 0


def brute_force_litmax(z_current, z_min, z_max, bits):
    (min_x, min_y) = deinterleave(z_min, bits)
    (max_x, max_y) = deinterleave(z_max, bits)
    candidates = [
        interleave(x, y, bits)
        for x in range(min_x, max_x + 1)
        for y in range(min_y, max_y + 1)
    ]
    below = [z for z in candidates if z < z_current]
    return max(below) if below else 0


class TestBigminAgainstBruteForce:
    def test_randomised_rectangles(self):
        bits = 4
        rng = np.random.default_rng(3)
        for _ in range(200):
            x1, x2 = sorted(rng.integers(0, 16, size=2))
            y1, y2 = sorted(rng.integers(0, 16, size=2))
            z_min = interleave(int(x1), int(y1), bits)
            z_max = interleave(int(x2), int(y2), bits)
            z_current = int(rng.integers(0, 1 << (2 * bits)))
            if z_range_overlaps(z_current, (int(x1), int(y1)), (int(x2), int(y2)), bits):
                continue  # BIGMIN is only queried for addresses outside the box
            expected = brute_force_bigmin(z_current, z_min, z_max, bits)
            if expected == 0:
                continue
            assert bigmin(z_current, z_min, z_max, bits) == expected

    def test_litmax_randomised(self):
        bits = 4
        rng = np.random.default_rng(9)
        for _ in range(200):
            x1, x2 = sorted(rng.integers(0, 16, size=2))
            y1, y2 = sorted(rng.integers(0, 16, size=2))
            z_min = interleave(int(x1), int(y1), bits)
            z_max = interleave(int(x2), int(y2), bits)
            z_current = int(rng.integers(0, 1 << (2 * bits)))
            if z_range_overlaps(z_current, (int(x1), int(y1)), (int(x2), int(y2)), bits):
                continue
            expected = brute_force_litmax(z_current, z_min, z_max, bits)
            if expected == 0:
                continue
            assert litmax(z_current, z_min, z_max, bits) == expected


class TestBigminProperties:
    def test_known_example(self):
        # Query box covering cells (1..2, 1..2) in a 4x4 grid; the address
        # just after the bottom-left corner that lies outside the box must
        # jump to the next in-box address.
        bits = 2
        z_min = interleave(1, 1, bits)
        z_max = interleave(2, 2, bits)
        z_current = interleave(3, 1, bits)  # outside (x too large)
        result = bigmin(z_current, z_min, z_max, bits)
        x, y = deinterleave(result, bits)
        assert 1 <= x <= 2 and 1 <= y <= 2
        assert result > z_current

    def test_result_is_inside_box_and_above_current(self):
        bits = 5
        rng = np.random.default_rng(21)
        for _ in range(100):
            x1, x2 = sorted(rng.integers(0, 32, size=2))
            y1, y2 = sorted(rng.integers(0, 32, size=2))
            z_min = interleave(int(x1), int(y1), bits)
            z_max = interleave(int(x2), int(y2), bits)
            z_current = int(rng.integers(0, 1 << (2 * bits)))
            if z_range_overlaps(z_current, (int(x1), int(y1)), (int(x2), int(y2)), bits):
                continue
            if z_current >= z_max:
                continue
            result = bigmin(z_current, z_min, z_max, bits)
            x, y = deinterleave(result, bits)
            assert x1 <= x <= x2
            assert y1 <= y <= y2
            assert result > z_current

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            bigmin(0, 10, 5)
        with pytest.raises(ValueError):
            litmax(0, 10, 5)


class TestZRangeHelpers:
    def test_z_range_of_rect(self):
        low, high = z_range_of_rect((1, 1), (2, 3), bits=3)
        assert low == interleave(1, 1, 3)
        assert high == interleave(2, 3, 3)

    def test_z_range_overlaps(self):
        z = interleave(2, 2, 3)
        assert z_range_overlaps(z, (1, 1), (3, 3), bits=3)
        assert not z_range_overlaps(z, (3, 3), (4, 4), bits=3)
