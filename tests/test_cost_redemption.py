"""Tests for the Table 4 cost-redemption arithmetic.

The break-even formula is checked against a brute-force simulation of
cumulative (build + query) cost curves: the formula's break-even count
must be the query count at which the two curves actually cross.
"""

import pytest

from repro.evaluation.cost_redemption import CostRedemption, cost_redemption


def brute_force_break_even(index_build, index_query, base_build, base_query,
                           horizon=2_000_000):
    """First query count where the index's cumulative cost undercuts Base."""
    for n in range(horizon):
        if index_build + n * index_query <= base_build + n * base_query:
            return n
    return None


class TestFourRegimes:
    def test_slower_build_faster_queries(self):
        result = cost_redemption("wazi", 10.0, 0.001, 2.0, 0.003)
        assert result.sign == "+"
        assert result.queries_to_break_even == pytest.approx((10.0 - 2.0) / 0.002)

    def test_faster_build_slower_queries(self):
        result = cost_redemption("str", 1.0, 0.004, 3.0, 0.001)
        assert result.sign == "-"
        assert result.queries_to_break_even == pytest.approx(2.0 / 0.003)

    def test_dominates_outright(self):
        result = cost_redemption("flood", 1.0, 0.001, 2.0, 0.002)
        assert result.sign == "+"
        assert result.queries_to_break_even is None

    def test_dominated_outright(self):
        result = cost_redemption("slow", 5.0, 0.004, 2.0, 0.002)
        assert result.sign == "-"
        assert result.queries_to_break_even is None

    def test_equal_costs_count_as_never_worse(self):
        result = cost_redemption("same", 2.0, 0.002, 2.0, 0.002)
        assert result.sign == "+"
        assert result.queries_to_break_even is None


class TestAgainstBruteForceSimulation:
    @pytest.mark.parametrize("index_build,index_query,base_build,base_query", [
        (10.0, 0.001, 2.0, 0.003),
        (50.0, 0.0005, 1.0, 0.002),
        (7.5, 0.01, 7.0, 0.011),
    ])
    def test_break_even_matches_cumulative_crossover(
        self, index_build, index_query, base_build, base_query
    ):
        result = cost_redemption(
            "x", index_build, index_query, base_build, base_query
        )
        assert result.sign == "+"
        crossover = brute_force_break_even(
            index_build, index_query, base_build, base_query
        )
        # the formula gives the exact (fractional) crossover; the simulated
        # integer crossover is its ceiling (±1 for float rounding at the
        # exact crossing point)
        assert abs(result.queries_to_break_even - crossover) <= 1.0

    def test_negative_regime_crossover(self):
        # cheaper to build, slower per query: better only *before* the count
        result = cost_redemption("x", 1.0, 0.004, 3.0, 0.001)
        n = result.queries_to_break_even
        cheaper_before = 1.0 + (n - 1) * 0.004 < 3.0 + (n - 1) * 0.001
        cheaper_after = 1.0 + (n + 1) * 0.004 < 3.0 + (n + 1) * 0.001
        assert cheaper_before and not cheaper_after


class TestRendering:
    def test_render_formats(self):
        assert CostRedemption("a", "+", None).render() == "(+)"
        assert CostRedemption("a", "-", 512.0).render() == "(-) 512"
        assert CostRedemption("a", "+", 4_000.0).render() == "(+) 4k"
        assert CostRedemption("a", "+", 2_500_000.0).render() == "(+) 2.5M"
