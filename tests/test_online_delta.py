"""LSM delta buffer: columnar memtable semantics, freeze, rollback merge."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import Rect
from repro.online.delta import _INITIAL_CAPACITY, DeltaBuffer, DeltaView, window_mask


@pytest.fixture()
def buffer():
    return DeltaBuffer()


class TestWrites:
    def test_empty_buffer(self, buffer):
        assert buffer.is_empty
        assert buffer.live_count == 0
        assert buffer.tombstone_count == 0
        assert buffer.rows == 0
        assert buffer.bbox is None
        assert buffer.first_write_monotonic is None

    def test_append_updates_counts_and_bbox(self, buffer):
        buffer.append(0.5, 0.25, clock=10.0)
        buffer.append(0.1, 0.9)
        assert buffer.live_count == 2
        assert buffer.rows == 2
        assert not buffer.is_empty
        assert buffer.bbox == (0.1, 0.25, 0.5, 0.9)
        assert buffer.first_write_monotonic == 10.0

    def test_version_bumps_on_every_mutation(self, buffer):
        buffer.append(0.5, 0.5)
        buffer.tombstone(0.2, 0.2)
        assert buffer.kill_newest(0.5, 0.5)
        assert buffer.version == 3

    def test_growth_beyond_initial_capacity(self, buffer):
        total = _INITIAL_CAPACITY * 2 + 5
        for i in range(total):
            buffer.append(float(i), float(-i))
            buffer.tombstone(float(i) + 0.5, 0.0)
        assert buffer.live_count == total
        assert buffer.tombstone_count == total
        xs, ys = buffer.live_xy()
        assert xs.tolist() == [float(i) for i in range(total)]
        assert ys.tolist() == [float(-i) for i in range(total)]

    def test_kill_newest_cancels_latest_duplicate(self, buffer):
        buffer.append(0.3, 0.3)
        buffer.append(0.3, 0.3)
        buffer.append(0.7, 0.7)
        assert buffer.kill_newest(0.3, 0.3)
        assert buffer.live_count == 2
        assert buffer.exact_live(0.3, 0.3) == 1
        # rows keeps counting the dead slot (size-based compaction trigger)
        assert buffer.rows == 3
        xs, _ys = buffer.live_xy()
        assert xs.tolist() == [0.3, 0.7]

    def test_kill_newest_misses(self, buffer):
        assert not buffer.kill_newest(0.1, 0.1)
        buffer.append(0.2, 0.2)
        assert not buffer.kill_newest(0.1, 0.1)
        assert buffer.kill_newest(0.2, 0.2)
        # already dead: a second kill finds nothing
        assert not buffer.kill_newest(0.2, 0.2)

    def test_tombstones_tracked_separately(self, buffer):
        buffer.tombstone(0.4, 0.6, clock=3.0)
        assert buffer.live_count == 0
        assert buffer.tombstone_count == 1
        assert buffer.rows == 1
        assert buffer.exact_tombstones(0.4, 0.6) == 1
        tx, ty = buffer.tombstone_xy()
        assert tx.tolist() == [0.4] and ty.tolist() == [0.6]
        # tombstones never contribute to the insert bbox
        assert buffer.bbox is None


class TestWindowReads:
    def test_window_mask_is_closed(self):
        xs = np.array([0.0, 0.5, 1.0, 1.5])
        ys = np.array([0.0, 0.5, 1.0, 1.5])
        mask = window_mask(xs, ys, Rect(0.5, 0.5, 1.0, 1.0))
        assert mask.tolist() == [False, True, True, False]

    def test_scan_excludes_dead_rows(self, buffer):
        buffer.append(0.2, 0.2)
        buffer.append(0.4, 0.4)
        buffer.kill_newest(0.4, 0.4)
        xs, ys = buffer.scan(Rect(0.0, 0.0, 1.0, 1.0))
        assert xs.tolist() == [0.2] and ys.tolist() == [0.2]
        assert buffer.count_in(Rect(0.0, 0.0, 1.0, 1.0)) == 1
        assert buffer.count_in(Rect(0.3, 0.3, 1.0, 1.0)) == 0

    def test_tombstones_in_window(self, buffer):
        buffer.tombstone(0.25, 0.25)
        buffer.tombstone(0.75, 0.75)
        tx, ty = buffer.tombstones_in(Rect(0.0, 0.0, 0.5, 0.5))
        assert tx.tolist() == [0.25] and ty.tolist() == [0.25]
        assert buffer.tombstone_count_in(Rect(0.0, 0.0, 0.5, 0.5)) == 1
        assert buffer.tombstone_count_in(Rect(0.0, 0.0, 1.0, 1.0)) == 2

    def test_nbytes_positive(self, buffer):
        assert buffer.nbytes() > 0


class TestFreeze:
    def test_freeze_compacts_and_is_immutable(self, buffer):
        buffer.append(0.1, 0.1)
        buffer.append(0.2, 0.2)
        buffer.kill_newest(0.1, 0.1)
        buffer.tombstone(0.9, 0.9)
        view = buffer.freeze()
        assert isinstance(view, DeltaView)
        assert view.live_count == 1
        assert view.tombstone_count == 1
        assert view.xs.tolist() == [0.2]
        for array in (view.xs, view.ys, view.tomb_x, view.tomb_y):
            assert not array.flags.writeable

    def test_freeze_is_independent_of_later_writes(self, buffer):
        buffer.append(0.3, 0.3)
        view = buffer.freeze()
        buffer.append(0.6, 0.6)
        buffer.tombstone(0.3, 0.3)
        assert view.live_count == 1
        assert view.tombstone_count == 0

    def test_view_window_reads(self, buffer):
        buffer.append(0.2, 0.2)
        buffer.append(0.8, 0.8)
        buffer.tombstone(0.2, 0.2)
        view = buffer.freeze()
        xs, _ys = view.scan(Rect(0.0, 0.0, 0.5, 0.5))
        assert xs.tolist() == [0.2]
        assert view.count_in(Rect(0.0, 0.0, 1.0, 1.0)) == 2
        assert view.tombstone_count_in(Rect(0.0, 0.0, 0.5, 0.5)) == 1
        assert view.exact_live(0.8, 0.8) == 1
        assert view.exact_tombstones(0.2, 0.2) == 1


class TestRollbackMerge:
    def test_merged_restores_frozen_before_active(self):
        first = DeltaBuffer()
        first.append(0.1, 0.1, clock=1.0)
        first.tombstone(0.5, 0.5)
        frozen = first.freeze()
        active = DeltaBuffer()
        active.append(0.2, 0.2, clock=2.0)
        active.tombstone(0.6, 0.6)
        restored = DeltaBuffer.merged(frozen, active)
        xs, _ys = restored.live_xy()
        assert xs.tolist() == [0.1, 0.2]
        tx, _ty = restored.tombstone_xy()
        assert tx.tolist() == [0.5, 0.6]
        # the age trigger keeps firing off the still-buffered writes
        assert restored.first_write_monotonic == 2.0

    def test_merged_with_empty_active(self):
        first = DeltaBuffer()
        first.append(0.4, 0.4, clock=7.0)
        restored = DeltaBuffer.merged(first.freeze(), DeltaBuffer())
        assert restored.live_count == 1
        assert restored.tombstone_count == 0
        xs, ys = restored.live_xy()
        assert xs.tolist() == [0.4] and ys.tolist() == [0.4]
