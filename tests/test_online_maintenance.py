"""Maintenance loop and incremental adapt: compaction triggers, scoped
subtree re-derive, convergent baselines, background thread lifecycle."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.geometry import Point, Rect
from repro.obs import MetricsRegistry, render_prometheus
from repro.obs.instrument import OnlineMetrics
from repro.online import (
    MaintenanceLoop,
    MaintenancePolicy,
    OnlineIndex,
    incremental_adapt,
    leaf_scan_costs,
    subtree_candidates,
)
from repro.workload_log import WorkloadLog
from repro.zindex.base import ZIndex

from test_online_index import assert_query_parity, canonical_points, canonical_result


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(31)
    return [Point(float(x), float(y)) for x, y in rng.uniform(0.0, 1.0, (6000, 2))]


@pytest.fixture(scope="module")
def hot_rects():
    """Small windows concentrated in one corner of the unit square."""
    rng = np.random.default_rng(8)
    return [
        Rect(float(x), float(y), float(x) + 0.03, float(y) + 0.03)
        for x, y in rng.uniform(0.05, 0.17, (120, 2))
    ]


@pytest.fixture(scope="module")
def queries():
    rng = np.random.default_rng(6)
    rects = []
    for _ in range(10):
        x1, x2 = sorted(rng.uniform(0.0, 1.0, size=2))
        y1, y2 = sorted(rng.uniform(0.0, 1.0, size=2))
        rects.append(Rect(float(x1), float(y1), float(x2), float(y2)))
    return rects


def coarse_index(points):
    """A layout deliberately too coarse for small hotspot windows."""
    return ZIndex(list(points), leaf_capacity=256)


class TestIncrementalModule:
    def test_leaf_scan_costs_shape_and_floor(self, points):
        index = coarse_index(points)
        costs = leaf_scan_costs(index, [])
        assert costs.shape[0] == len(index.leaflist)
        assert np.all(costs > 0)  # one row per leaf keeps a nonzero floor

    def test_subtree_candidates_cover_leaf_layer(self, points):
        index = coarse_index(points)
        candidates = subtree_candidates(index, scope_depth=2)
        assert 1 <= len(candidates) <= 16
        spans = [(ref.low, ref.high) for ref in candidates]
        assert spans[0][0] == 0
        assert spans[-1][1] == len(index.leaflist) - 1
        for (_, prev_high), (low, _) in zip(spans, spans[1:]):
            assert low == prev_high + 1  # disjoint, contiguous cover
        for ref in candidates:
            assert ref.depth <= 2

    def test_adapt_selects_hot_subtree_and_preserves_results(
        self, points, hot_rects, queries
    ):
        index = coarse_index(points)
        before = canonical_points(index.all_points())
        baselines = {}
        report = incremental_adapt(
            index, hot_rects, baselines=baselines, min_leaf_capacity=8
        )
        assert report.selected >= 1
        assert report.leaves_rederived < report.leaves_total  # strict subset
        assert 0.0 < report.scope < 1.0
        assert len(report.subtree_keys) == report.selected
        assert set(report.subtree_keys) <= set(baselines)
        assert canonical_points(index.all_points()) == before
        # the re-derived layout actually serves the hot windows cheaper
        stale = coarse_index(points)
        index.reset_counters()
        stale.reset_counters()
        for rect in hot_rects:
            index.range_count(rect)
            stale.range_count(rect)
        assert index.counters.points_filtered < stale.counters.points_filtered

    def test_baselines_suppress_repeat_rederive(self, points, hot_rects):
        index = coarse_index(points)
        baselines = {}
        first = incremental_adapt(
            index, hot_rects, baselines=baselines, min_leaf_capacity=8
        )
        assert first.selected >= 1
        second = incremental_adapt(
            index, hot_rects, baselines=baselines, min_leaf_capacity=8
        )
        assert second.selected == 0

    def test_empty_window_is_a_noop(self, points):
        index = coarse_index(points)
        report = incremental_adapt(index, [])
        assert report.selected == 0
        assert report.leaves_rederived == 0

    def test_multiple_disjoint_subtrees_rederived_in_one_pass(self, points, queries):
        # Two far-apart hot corners select two subtrees; the first
        # re-derive renumbers every later leaf index, so the second
        # subtree's pages must be gathered through its node, not through
        # the span captured at enumeration time.
        index = coarse_index(points)
        before = canonical_result(index.range_query(Rect(0.0, 0.0, 1.0, 1.0)))
        rng = np.random.default_rng(9)
        two_corners = [
            Rect(float(x), float(y), float(x) + 0.03, float(y) + 0.03)
            for base in (0.05, 0.80)
            for x, y in rng.uniform(base, base + 0.12, (60, 2))
        ]
        report = incremental_adapt(
            index, two_corners, scope_depth=4, min_leaf_capacity=8
        )
        assert report.selected >= 2
        assert 0.0 < report.scope < 1.0
        after = canonical_result(index.range_query(Rect(0.0, 0.0, 1.0, 1.0)))
        assert after == before
        for rect in queries:
            assert index.range_count(rect) >= 0  # structure still queryable


class TestPolicy:
    def test_defaults(self):
        policy = MaintenancePolicy()
        assert policy.interval_seconds == 1.0
        assert policy.compact_min_rows == 4096
        assert policy.compact_max_age_seconds == 30.0
        assert policy.adapt_min_queries == 64
        assert policy.window_size == 2048
        assert policy.scope_depth == 2


class TestRunOnce:
    def test_clean_index_ticks_without_work(self, points):
        online = OnlineIndex(coarse_index(points))
        loop = MaintenanceLoop(online)
        summary = loop.run_once()
        assert summary == {"compacted": False, "adapted": False, "scope": 0.0}
        assert loop.ticks == 1

    def test_compacts_on_row_threshold(self, points):
        online = OnlineIndex(coarse_index(points))
        loop = MaintenanceLoop(online, policy=MaintenancePolicy(compact_min_rows=4))
        for i in range(3):
            online.insert(Point(0.5 + i * 0.01, 0.5))
        assert not loop.run_once()["compacted"]  # 3 rows < 4
        online.insert(Point(0.9, 0.9))
        summary = loop.run_once()
        assert summary["compacted"]
        assert summary["compaction"]["merged_inserts"] == 4
        assert loop.compactions == 1
        assert online.delta_stats()["rows"] == 0

    def test_compacts_on_age_threshold(self, points):
        online = OnlineIndex(coarse_index(points))
        loop = MaintenanceLoop(
            online,
            policy=MaintenancePolicy(compact_min_rows=10_000,
                                     compact_max_age_seconds=0.0),
        )
        online.insert(Point(0.5, 0.5))
        assert loop.run_once()["compacted"]

    def test_adapts_from_window(self, points, hot_rects, queries):
        online = OnlineIndex(coarse_index(points))
        log = WorkloadLog(window_size=512)
        for rect in hot_rects:
            log.record_range(rect)
        loop = MaintenanceLoop(
            online, workload_log=log,
            policy=MaintenancePolicy(adapt_min_queries=32, min_leaf_capacity=8),
        )
        summary = loop.run_once()
        assert summary["adapted"]
        assert 0.0 < summary["scope"] < 1.0
        assert loop.incremental_adapts == 1
        assert_query_parity(online, points, queries)
        # the shared baselines make the second tick a no-op
        assert not loop.run_once()["adapted"]

    def test_below_min_queries_skips_adapt(self, points, hot_rects):
        online = OnlineIndex(coarse_index(points))
        log = WorkloadLog()
        for rect in hot_rects[:10]:
            log.record_range(rect)
        loop = MaintenanceLoop(
            online, workload_log=log, policy=MaintenancePolicy(adapt_min_queries=32)
        )
        assert not loop.run_once()["adapted"]
        assert loop.incremental_adapts == 0

    def test_metrics_observed(self, points, hot_rects):
        registry = MetricsRegistry()
        online = OnlineIndex(coarse_index(points))
        log = WorkloadLog()
        for rect in hot_rects:
            log.record_range(rect)
        loop = MaintenanceLoop(
            online, workload_log=log,
            policy=MaintenancePolicy(adapt_min_queries=32, compact_min_rows=1,
                                     min_leaf_capacity=8),
            metrics=OnlineMetrics(registry),
        )
        online.insert(Point(0.5, 0.5))
        loop.run_once()
        text = render_prometheus(registry)
        assert "repro_maintenance_ticks_total 1" in text
        assert "repro_compactions_total 1" in text
        assert "repro_incremental_adapt_scope" in text


class TestBackgroundThread:
    def test_start_stop_and_ticks(self, points):
        online = OnlineIndex(coarse_index(points))
        loop = MaintenanceLoop(
            online,
            policy=MaintenancePolicy(interval_seconds=0.01, compact_min_rows=8),
        )
        assert not loop.running
        loop.start()
        assert loop.start() is loop  # idempotent
        try:
            assert loop.running
            for i in range(32):
                online.insert(Point(0.25 + i * 1e-4, 0.75))
            deadline = time.monotonic() + 5.0
            while loop.compactions == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
        finally:
            loop.stop()
        assert not loop.running
        assert loop.ticks > 0
        assert loop.compactions >= 1
        assert loop.last_error is None
        assert online.delta_stats()["rows"] == 0

    def test_status_shape(self, points, hot_rects):
        online = OnlineIndex(coarse_index(points))
        log = WorkloadLog()
        for rect in hot_rects:
            log.record_range(rect)
        loop = MaintenanceLoop(
            online, workload_log=log,
            policy=MaintenancePolicy(adapt_min_queries=32, min_leaf_capacity=8),
        )
        loop.run_once()
        status = loop.status()
        assert status["running"] is False
        assert status["ticks"] == 1
        assert status["incremental_adapts"] == 1
        assert status["delta"]["rows"] == 0
        assert status["last_error"] is None
        adapt = status["last_adapt"]
        assert adapt is not None
        assert adapt["selected"] >= 1
        assert 0.0 < adapt["scope"] < 1.0
        assert status["policy"]["adapt_min_queries"] == 32
