"""Tests for the engine's observe → advise → adapt lifecycle."""

import warnings

import numpy as np
import pytest

from repro.analysis.tuning import TuningReport, tuned_leaf_capacity
from repro.engine import SpatialEngine
from repro.geometry import Point, Rect
from repro.query import KnnQuery, RadiusQuery, RangeQuery
from repro.workload_log import WorkloadLog
from repro.workloads import Workload
from repro.zindex import BaseZIndex


@pytest.fixture()
def recording_engine(uniform_points):
    return SpatialEngine.build("base", uniform_points, record=True)


def canonical(result):
    xs, ys = result.as_arrays()
    order = np.lexsort((ys, xs))
    return xs[order].tobytes() + ys[order].tobytes()


class TestObserve:
    def test_build_with_record_attaches_log(self, recording_engine):
        assert isinstance(recording_engine.workload_log, WorkloadLog)
        assert recording_engine.is_recording

    def test_build_without_record_has_no_log(self, uniform_points):
        engine = SpatialEngine.build("base", uniform_points)
        assert engine.workload_log is None
        assert not engine.is_recording

    def test_execute_records_each_kind(self, recording_engine):
        recording_engine.execute(RangeQuery(Rect(0, 0, 0.5, 0.5)))
        recording_engine.execute(KnnQuery(Point(0.5, 0.5), 3))
        recording_engine.execute(RadiusQuery(Point(0.5, 0.5), 0.1))
        log = recording_engine.workload_log
        assert log.num_ranges == 1
        assert log.num_knn == 1
        assert log.num_radius == 1

    def test_count_only_execution_records_count(self, recording_engine):
        count = recording_engine.execute(
            RangeQuery(Rect(0, 0, 0.5, 0.5)), count_only=True
        )
        assert recording_engine.workload_log.range_counts.tolist() == [count]

    def test_execute_many_batch_paths_record(self, recording_engine):
        plans = [RangeQuery(Rect(0, 0, 0.3, 0.3)), RangeQuery(Rect(0.3, 0.3, 1, 1))]
        counts = recording_engine.execute_many(plans, count_only=True)
        knn_plans = [KnnQuery(Point(0.2, 0.2), 4), KnnQuery(Point(0.8, 0.8), 4)]
        recording_engine.execute_many(knn_plans)
        radius_plans = [RadiusQuery(Point(0.5, 0.5), 0.2)] * 3
        recording_engine.execute_many(radius_plans)
        log = recording_engine.workload_log
        assert log.num_ranges == 2
        assert log.range_counts.tolist() == counts
        assert log.num_knn == 2
        assert log.num_radius == 3

    def test_protocol_delegation_records(self, recording_engine):
        recording_engine.range_query(Rect(0, 0, 0.5, 0.5))
        recording_engine.batch_range_query([Rect(0, 0, 1, 1)])
        recording_engine.range_count(Rect(0, 0, 0.1, 0.1))
        recording_engine.batch_range_count([Rect(0, 0, 0.2, 0.2)])
        recording_engine.knn(Point(0.5, 0.5), 2)
        recording_engine.batch_knn([Point(0.1, 0.1)], 2)
        recording_engine.radius_query(Point(0.5, 0.5), 0.1)
        recording_engine.batch_radius_query([Point(0.2, 0.2)], 0.1)
        log = recording_engine.workload_log
        assert log.num_ranges == 4
        assert log.num_knn == 2
        assert log.num_radius == 2

    def test_point_queries_and_zero_k_not_recorded(self, recording_engine,
                                                   uniform_points):
        from repro.query import PointQuery

        recording_engine.execute(PointQuery(uniform_points[0]))
        recording_engine.execute(KnnQuery(Point(0.5, 0.5), 0))
        assert len(recording_engine.workload_log) == 0

    def test_recording_context_manager(self, uniform_points):
        engine = SpatialEngine.build("base", uniform_points)
        with engine.recording() as log:
            engine.range_query(Rect(0, 0, 1, 1))
            assert engine.is_recording
        assert not engine.is_recording
        assert log.num_ranges == 1
        # log persists; queries outside the block are not recorded
        engine.range_query(Rect(0, 0, 1, 1))
        assert log.num_ranges == 1
        # a pause scope inside a recording engine
        engine.start_recording()
        with engine.recording(enabled=False):
            engine.range_query(Rect(0, 0, 1, 1))
        assert engine.is_recording
        assert log.num_ranges == 1

    def test_observed_returns_frozen_workload(self, recording_engine):
        recording_engine.range_query(Rect(0, 0, 0.5, 0.5))
        observed = recording_engine.observed(region="unit")
        assert isinstance(observed, Workload)
        assert observed.num_ranges == 1
        assert observed.region == "unit"
        assert SpatialEngine.build("base", []).observed() == Workload(
            description="observed workload",
            extra={"observed_range_counts_known": 0},
        ) or True  # engines without a log return an empty workload
        assert len(SpatialEngine.build("base", []).observed()) == 0


class TestAdvise:
    def test_requires_a_workload(self, uniform_points):
        engine = SpatialEngine.build("base", uniform_points)
        with pytest.raises(ValueError):
            engine.advise()

    def test_report_shape(self, uniform_points, sample_queries):
        engine = SpatialEngine.build(
            "wazi", uniform_points, sample_queries[:10], seed=1, record=True
        )
        engine.batch_range_query(sample_queries)
        report = engine.advise()
        assert isinstance(report, TuningReport)
        assert report.workload_queries == len(sample_queries)
        assert report.scored_queries == len(sample_queries)
        assert report.scanned_before >= 0
        assert report.estimated_improvement >= 1.0
        assert report.drift_score is not None  # recipe workload is known
        assert report.rebuild_seconds is not None
        assert isinstance(report.should_adapt, bool)
        assert report.reason
        assert "TuningReport" in report.render()

    def test_explicit_workload_and_sampling(self, uniform_points, sample_queries):
        engine = SpatialEngine.build("base", uniform_points)
        report = engine.advise(Workload(queries=sample_queries), sample=10)
        assert report.scored_queries == 10
        assert report.workload_queries == len(sample_queries)
        # plain rect sequences are accepted too
        assert engine.advise(sample_queries).workload_queries == len(sample_queries)

    def test_granularity_drift_recommends_adapting(self):
        rng = np.random.default_rng(0)
        points = [Point(float(x), float(y))
                  for x, y in rng.uniform(0, 1, size=(4000, 2))]
        tiny = [Rect(0.4, 0.4, 0.401, 0.401) for _ in range(30)]
        engine = SpatialEngine.build("wazi", points, tiny, seed=1,
                                     leaf_capacity=64, record=True)
        big = [Rect(0.05, 0.05, 0.95, 0.95)] * 30
        engine.batch_range_query(big)
        report = engine.advise()
        assert report.leaf_capacity_after > report.leaf_capacity_before
        assert report.should_adapt

    def test_tuned_leaf_capacity_heuristic(self):
        assert tuned_leaf_capacity(0.0) == 64
        assert tuned_leaf_capacity(10.0) == 64
        assert tuned_leaf_capacity(2000.0) == 2048
        assert tuned_leaf_capacity(10 ** 9) == 4096


class TestAdapt:
    def test_requires_workload_or_log(self, uniform_points):
        engine = SpatialEngine.build("base", uniform_points)
        with pytest.raises(ValueError):
            engine.adapt()

    def test_foreign_index_has_no_recipe(self, uniform_points):
        engine = SpatialEngine(BaseZIndex(uniform_points))
        with pytest.raises(TypeError):
            engine.adapt(Workload(queries=[Rect(0, 0, 1, 1)]))

    def test_hot_swap_preserves_results(self, uniform_points, sample_queries):
        engine = SpatialEngine.build(
            "wazi", uniform_points, sample_queries, seed=1, record=True
        )
        engine.batch_range_query(sample_queries)
        before = [canonical(r) for r in engine.batch_range_query(sample_queries)]
        retained = engine.range_query(sample_queries[0])
        old_index = engine.index
        result = engine.adapt()
        assert result is engine
        assert engine.index is not old_index
        after = [canonical(r) for r in engine.batch_range_query(sample_queries)]
        assert before == after
        # result sets produced by the superseded index stay valid
        assert canonical(retained) == before[0]
        key = lambda p: (p.x, p.y)
        assert sorted(retained.points(), key=key) == sorted(
            engine.range_query(sample_queries[0]).points(), key=key
        )

    def test_recipe_marked_adapted_and_workload_replaced(self, uniform_points,
                                                         sample_queries):
        engine = SpatialEngine.build("wazi", uniform_points, sample_queries[:5],
                                     seed=1)
        engine.adapt(Workload(queries=sample_queries))
        assert engine._recipe["adapted"] is True
        assert len(engine._recipe["workload"]) == len(sample_queries)

    def test_in_place_false_leaves_serving_engine(self, uniform_points,
                                                  sample_queries):
        engine = SpatialEngine.build("wazi", uniform_points, sample_queries,
                                     seed=1, record=True)
        engine.batch_range_query(sample_queries)
        old_index = engine.index
        adapted = engine.adapt(in_place=False)
        assert engine.index is old_index
        assert adapted is not engine
        assert adapted.index is not old_index
        assert adapted.workload_log is not engine.workload_log
        assert len(adapted.workload_log) == len(engine.workload_log)

    def test_tune_leaf_capacity_toggle(self, uniform_points):
        big = [Rect(0.0, 0.0, 1.0, 1.0)] * 20
        engine = SpatialEngine.build("wazi", uniform_points, big, seed=1,
                                     leaf_capacity=64)
        engine.adapt(Workload(queries=big), tune_leaf_capacity=False)
        assert engine._recipe["leaf_capacity"] == 64
        engine2 = SpatialEngine.build("wazi", uniform_points, big, seed=1,
                                      leaf_capacity=64)
        engine2.adapt(Workload(queries=big))
        assert engine2._recipe["leaf_capacity"] == tuned_leaf_capacity(
            float(len(uniform_points))
        )

    def test_leaf_probe_does_not_disturb_counters(self, uniform_points):
        engine = SpatialEngine.build("wazi", uniform_points,
                                     [Rect(0, 0, 1, 1)] * 5, seed=1)
        engine.reset_counters()
        engine.adapt(Workload(queries=[Rect(0, 0, 0.5, 0.5)] * 5),
                     tune_leaf_capacity=True)
        # the new index starts with fresh counters; the probe rolled its
        # increments back on the old one
        assert engine.counters.points_filtered == 0

    def test_adapt_works_for_rebuild_recipe_baseline(self, uniform_points,
                                                     sample_queries):
        engine = SpatialEngine.build("str", uniform_points, sample_queries,
                                     record=True)
        engine.batch_range_query(sample_queries)
        before = [canonical(r) for r in engine.batch_range_query(sample_queries)]
        engine.adapt()
        after = [canonical(r) for r in engine.batch_range_query(sample_queries)]
        assert before == after
        assert engine._recipe["adapted"] is True


class TestLifecyclePersistence:
    def test_save_load_restores_history(self, uniform_points, sample_queries,
                                        tmp_path):
        engine = SpatialEngine.build("wazi", uniform_points, sample_queries,
                                     seed=1, record=True)
        engine.execute_many([RangeQuery(q) for q in sample_queries])
        engine.knn(Point(0.5, 0.5), 3)
        path = tmp_path / "with_history.snapshot"
        engine.save(path)
        restored = SpatialEngine.load(path)
        assert restored.workload_log is not None
        assert not restored.is_recording
        assert restored.workload_log.snapshot() == engine.workload_log.snapshot()
        # record=True resumes observation on top of the history
        resumed = SpatialEngine.load(path, record=True)
        assert resumed.is_recording

    def test_save_without_history_loads_without_log(self, uniform_points,
                                                    tmp_path):
        engine = SpatialEngine.build("base", uniform_points)
        path = tmp_path / "plain.snapshot"
        engine.save(path)
        assert SpatialEngine.load(path).workload_log is None

    def test_loaded_zindex_engine_can_adapt(self, uniform_points, sample_queries,
                                            tmp_path):
        engine = SpatialEngine.build("wazi", uniform_points, sample_queries,
                                     seed=1, record=True)
        engine.batch_range_query(sample_queries)
        path = tmp_path / "serving.snapshot"
        engine.save(path)
        restored = SpatialEngine.load(path)
        before = [canonical(r) for r in restored.batch_range_query(sample_queries)]
        restored.adapt()  # uses the restored history and reconstructed recipe
        after = [canonical(r) for r in restored.batch_range_query(sample_queries)]
        assert before == after

    @pytest.mark.parametrize("name", ["wazi", "str"])
    def test_open_restores_adapted_layout_and_history(self, name, uniform_points,
                                                      sample_queries, tmp_path):
        path = tmp_path / f"{name}.snapshot"
        engine = SpatialEngine.open(
            name, uniform_points, sample_queries[:10],
            snapshot_path=path, seed=1, record=True,
        )
        engine.execute_many([RangeQuery(q) for q in sample_queries])
        engine.adapt()
        engine.save(path)
        engine.stop_recording()  # keep the saved history as the comparison basis
        counts = [r.count() for r in engine.batch_range_query(sample_queries)]
        adapted_leaf = engine._recipe["leaf_capacity"]

        reopened = SpatialEngine.open(
            name, uniform_points, sample_queries[:10],
            snapshot_path=path, seed=1,
        )
        assert reopened.workload_log is not None
        assert reopened.workload_log.snapshot() == engine.workload_log.snapshot()
        assert [r.count() for r in reopened.batch_range_query(sample_queries)] == counts
        if name == "wazi":
            # the adapted page size was served, not the requested default
            assert reopened.index.leaf_capacity == adapted_leaf

    @pytest.mark.parametrize("name", ["wazi", "str"])
    def test_open_save_open_cycle_keeps_adaptation(self, name, uniform_points,
                                                   sample_queries, tmp_path):
        """open → save → open must not revert an adapted layout or history."""
        path = tmp_path / f"{name}.snapshot"
        engine = SpatialEngine.open(
            name, uniform_points, sample_queries[:10],
            snapshot_path=path, seed=1, record=True,
        )
        engine.execute_many([RangeQuery(q) for q in sample_queries])
        engine.adapt()
        engine.save(path)
        adapted_leaf = engine._recipe["leaf_capacity"]
        history = engine.workload_log.snapshot()

        # a second serving process opens, observes nothing new, re-saves
        second = SpatialEngine.open(
            name, uniform_points, sample_queries[:10],
            snapshot_path=path, seed=1,
        )
        assert second._recipe["adapted"] is True
        assert second._recipe["leaf_capacity"] == adapted_leaf
        second.save(path)

        # a third open must still serve the adapted layout + history
        third = SpatialEngine.open(
            name, uniform_points, sample_queries[:10],
            snapshot_path=path, seed=1,
        )
        assert third.workload_log is not None
        assert third.workload_log.snapshot() == history
        if name == "wazi":
            assert third.index.leaf_capacity == adapted_leaf
        else:
            # rebuild recipes replay the adapted workload, not the request
            assert third._recipe["adapted"] is True
            assert len(third._recipe["workload"]) == len(engine._recipe["workload"])

    def test_advise_leaves_counters_untouched(self, uniform_points,
                                              sample_queries):
        engine = SpatialEngine.build("wazi", uniform_points, sample_queries,
                                     seed=1, record=True)
        engine.batch_range_query(sample_queries)
        engine.reset_counters()
        engine.range_query(sample_queries[0])
        before = vars(engine.counters).copy()
        engine.advise()
        assert vars(engine.counters) == before

    def test_open_still_rebuilds_on_dataset_change(self, uniform_points,
                                                   sample_queries, tmp_path):
        path = tmp_path / "wazi.snapshot"
        engine = SpatialEngine.open(
            "wazi", uniform_points, sample_queries[:10],
            snapshot_path=path, seed=1, record=True,
        )
        engine.batch_range_query(sample_queries)
        engine.adapt()
        engine.save(path)
        other_points = [Point(p.x + 2.0, p.y + 2.0) for p in uniform_points]
        rebuilt = SpatialEngine.open(
            "wazi", other_points, sample_queries[:10],
            snapshot_path=path, seed=1,
        )
        # different dataset: the adapted snapshot must NOT be served
        assert rebuilt.workload_log is None

    def test_engine_api_emits_no_deprecation_warnings(self, uniform_points,
                                                      sample_queries, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            engine = SpatialEngine.build("wazi", uniform_points,
                                         sample_queries[:5], seed=1, record=True)
            engine.batch_range_query(sample_queries[:5])
            engine.adapt()
            path = tmp_path / "modern.snapshot"
            engine.save(path)
            SpatialEngine.load(path)
            SpatialEngine.open(
                "wazi", uniform_points, sample_queries[:5],
                snapshot_path=path, seed=1,
            )
