"""Tests for the buffer-manager layer (repro.storage.buffers).

The contract: a ColumnStore owns the flat columns, everything above it
holds views.  The memory backend gathers from (or adopts) arrays without
copying; the mmap backend opens snapshot containers zero-copy; both sit
behind one read interface the index layer consumes without knowing which
it got.
"""

import numpy as np
import pytest

from repro.geometry import Point
from repro.persistence import save_snapshot
from repro.storage import (
    COLUMN_NAMES,
    ColumnStore,
    MemoryColumnStore,
    MmapColumnStore,
)
from repro.zindex import ZIndex


def _small_index(n=500, seed=3, **kwargs):
    rng = np.random.default_rng(seed)
    pts = [Point(float(x), float(y)) for x, y in rng.uniform(0, 100, size=(n, 2))]
    return ZIndex(pts, leaf_capacity=16, **kwargs)


class TestColumnStoreInterface:
    def test_mapping_protocol(self):
        xs = np.arange(5.0)
        store = MemoryColumnStore.from_arrays({"flat_x": xs})
        assert "flat_x" in store
        assert store["flat_x"] is xs
        assert store.get("missing") is None
        assert list(store) == ["flat_x"]
        assert store.names() == ("flat_x",)
        assert dict(store.items())["flat_x"] is xs

    def test_missing_column_raises_keyerror(self):
        store = MemoryColumnStore.from_arrays({})
        with pytest.raises(KeyError):
            store["flat_x"]

    def test_generation_bumps(self):
        store = MemoryColumnStore.from_arrays({})
        assert store.generation == 0
        store.bump()
        store.bump()
        assert store.generation == 2

    def test_nbytes_sums_columns(self):
        store = MemoryColumnStore.from_arrays(
            {"a": np.zeros(4, dtype=np.float64), "b": np.zeros(2, dtype=np.int64)}
        )
        assert store.nbytes == 4 * 8 + 2 * 8

    def test_memory_store_is_writable_and_unmapped(self):
        store = MemoryColumnStore.from_arrays({"a": np.zeros(3)})
        assert store.writable
        assert not store.is_mapped("a")

    def test_canonical_column_names(self):
        assert "flat_x" in COLUMN_NAMES
        assert "leaf_starts" in COLUMN_NAMES
        assert "skip_right" in COLUMN_NAMES
        assert len(COLUMN_NAMES) == 9


class TestGather:
    def test_gather_matches_leaflist_contents(self):
        index = _small_index()
        store = MemoryColumnStore.gather(index.leaflist)
        starts = store["leaf_starts"]
        assert starts[0] == 0
        assert int(starts[-1]) == len(index)
        lo = 0
        for i, entry in enumerate(index.leaflist):
            hi = lo + len(entry.page)
            assert int(starts[i + 1]) == hi
            np.testing.assert_array_equal(store["flat_x"][lo:hi], entry.page.xs)
            np.testing.assert_array_equal(store["flat_y"][lo:hi], entry.page.ys)
            lo = hi

    def test_adopted_store_backs_the_flat_cache(self):
        index = _small_index()
        index.batch_range_query(())  # primes the flat cache
        store = index._store
        assert isinstance(store, MemoryColumnStore)
        assert np.shares_memory(index._flat_x, store["flat_x"])
        assert np.shares_memory(index._flat_y, store["flat_y"])

    def test_pages_become_views_after_gather(self):
        index = _small_index()
        index._ensure_flat()
        store = index._store
        assert any(not e.page.owns_buffers for e in index.leaflist if len(e.page))
        for entry in index.leaflist:
            if len(entry.page):
                assert np.shares_memory(entry.page.xs, store["flat_x"])

    def test_mutation_bumps_store_and_promotes_page(self):
        index = _small_index()
        index._ensure_flat()
        old_store = index._store
        generation = old_store.generation
        index.insert(Point(1.5, 2.5))
        # The store was dropped/bumped; queries still correct.
        assert index._store is None or index._store is not old_store
        assert old_store.generation > generation
        assert index.point_query(Point(1.5, 2.5))


class TestMmapStore:
    def test_open_container_maps_columns(self, tmp_path):
        index = _small_index(use_skipping=True)
        path = tmp_path / "snap.zip"
        save_snapshot(index, path)
        store = MmapColumnStore.open(path)
        assert not store.writable
        for name in COLUMN_NAMES:
            assert name in store
            assert store.is_mapped(name), name
        np.testing.assert_array_equal(store["flat_x"], index._flat_columns()[0])
        assert store.manifest["kind"] == "zindex-structure"
        assert store.path == path

    def test_mapped_columns_are_readonly(self, tmp_path):
        index = _small_index()
        path = tmp_path / "snap.zip"
        save_snapshot(index, path)
        store = MmapColumnStore.open(path)
        with pytest.raises(ValueError):
            store["flat_x"][0] = 99.0

    def test_open_sidecars(self, tmp_path):
        from repro.persistence import extract_array_members

        index = _small_index()
        path = tmp_path / "snap.zip"
        save_snapshot(index, path)
        extracted = extract_array_members(path, tmp_path / "cols")
        names = ("flat_x", "flat_y", "leaf_starts")
        store = MmapColumnStore.open_sidecars(tmp_path / "cols", names)
        for name in names:
            assert store.is_mapped(name)
        np.testing.assert_array_equal(store["flat_x"], index._flat_columns()[0])
        assert set(extracted) >= set(names)

    def test_base_store_type_not_writable(self):
        store = ColumnStore({"a": np.zeros(2)})
        assert not store.writable
