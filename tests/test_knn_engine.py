"""Tests for the vectorized kNN engine and the batch_knn protocol.

Covers the Section 6.3 remark end to end: every index answers kNN through
the expanding-window decomposition (scalar default) or the vectorized
columnar kernel (Z-index family), and both must agree with each other and
with the brute-force oracle — including on tie-heavy and duplicate-point
datasets, where result ordering is pinned down by the stable
distance sort.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import build_index
from repro.api import INDEX_NAMES
from repro.core import WaZI
from repro.geometry import Point, Rect
from repro.interfaces import SpatialIndex, brute_force_knn
from repro.zindex import BaseZIndex

#: Names of the indexes whose knn/batch_knn go through the columnar kernel.
ZINDEX_FAMILY = ("base", "base+sk", "wazi", "wazi-sk")

#: Small fixed workload handed to the workload-aware indexes.
TINY_WORKLOAD = [Rect(5.0, 5.0, 30.0, 30.0), Rect(40.0, 10.0, 60.0, 50.0)]

# Coarse coordinates make duplicate points and distance ties common.
tie_coordinates = st.integers(min_value=0, max_value=7).map(float)
smooth_coordinates = st.floats(
    min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


@st.composite
def tie_heavy_points(draw, min_size=3, max_size=60):
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    xs = draw(st.lists(tie_coordinates, min_size=n, max_size=n))
    ys = draw(st.lists(tie_coordinates, min_size=n, max_size=n))
    return [Point(x, y) for x, y in zip(xs, ys)]


@st.composite
def smooth_points(draw, min_size=3, max_size=60):
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    xs = draw(st.lists(smooth_coordinates, min_size=n, max_size=n))
    ys = draw(st.lists(smooth_coordinates, min_size=n, max_size=n))
    return [Point(x, y) for x, y in zip(xs, ys)]


def assert_knn_matches_oracle(index, points, center, k):
    """knn and batch_knn agree with each other and with brute force."""
    got = index.knn(center, k)
    (batched,) = index.batch_knn([center], k)
    assert batched == got
    expected = brute_force_knn(points, center, k)
    assert len(got) == len(expected)
    got_distances = [p.distance_squared(center) for p in got]
    expected_distances = [p.distance_squared(center) for p in expected]
    assert got_distances == expected_distances
    # Sorted ascending by construction.
    assert got_distances == sorted(got_distances)


class TestEveryIndexAgainstBruteForce:
    @pytest.mark.parametrize("name", INDEX_NAMES)
    @settings(max_examples=5, deadline=None)
    @given(points=tie_heavy_points(), data=st.data())
    def test_tie_heavy_and_duplicate_datasets(self, name, points, data):
        index = build_index(name, points, TINY_WORKLOAD, leaf_capacity=8, seed=0)
        center = Point(
            data.draw(tie_coordinates, label="cx"), data.draw(tie_coordinates, label="cy")
        )
        k = data.draw(st.integers(min_value=1, max_value=len(points) + 3), label="k")
        assert_knn_matches_oracle(index, points, center, k)

    @pytest.mark.parametrize("name", INDEX_NAMES)
    @settings(max_examples=5, deadline=None)
    @given(points=smooth_points(), data=st.data())
    def test_smooth_datasets(self, name, points, data):
        index = build_index(name, points, TINY_WORKLOAD, leaf_capacity=8, seed=0)
        center = Point(
            data.draw(smooth_coordinates, label="cx"),
            data.draw(smooth_coordinates, label="cy"),
        )
        k = data.draw(st.integers(min_value=1, max_value=len(points) + 3), label="k")
        assert_knn_matches_oracle(index, points, center, k)

    @pytest.mark.parametrize("name", INDEX_NAMES)
    def test_all_points_identical(self, name):
        """The ultimate tie dataset: every indexed point at one coordinate."""
        points = [Point(2.0, 3.0)] * 40 + [Point(9.0, 9.0)]
        index = build_index(name, points, TINY_WORKLOAD, leaf_capacity=8, seed=0)
        got = index.knn(Point(2.1, 3.1), 5)
        assert len(got) == 5
        assert all(p == Point(2.0, 3.0) for p in got)


class TestColumnarKernelIdentity:
    """The Z-family kernel is byte-identical to the scalar decomposition."""

    @pytest.mark.parametrize("name", ZINDEX_FAMILY)
    def test_results_and_counters_match_scalar_default(
        self, name, clustered_points, small_workload
    ):
        data = clustered_points[:600]
        index = build_index(name, data, small_workload.queries[:10], leaf_capacity=16, seed=1)
        for probe_index, k in ((0, 1), (3, 7), (11, 50)):
            center = data[probe_index]
            index.reset_counters()
            got = index.knn(center, k)
            vectorized_counters = index.counters.snapshot()
            index.reset_counters()
            reference = SpatialIndex.knn(index, center, k)
            scalar_counters = index.counters.snapshot()
            assert got == reference
            assert vectorized_counters == scalar_counters

    @pytest.mark.parametrize("name", ZINDEX_FAMILY)
    def test_far_away_center_and_explicit_radius(self, name, uniform_points):
        index = build_index(name, uniform_points, TINY_WORKLOAD, leaf_capacity=16, seed=0)
        for center in (Point(25.0, 25.0), Point(-4.0, 0.5)):
            assert index.knn(center, 4) == SpatialIndex.knn(index, center, 4)
            assert index.knn(center, 4, initial_radius=1e-4) == SpatialIndex.knn(
                index, center, 4, initial_radius=1e-4
            )

    def test_batch_knn_equals_per_probe_loop(self, clustered_points):
        index = BaseZIndex(clustered_points, leaf_capacity=32)
        probes = clustered_points[:30]
        assert index.batch_knn(probes, 6) == [index.knn(p, 6) for p in probes]

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    def test_non_finite_center_rejected_not_hung(self, uniform_points, bad):
        """Regression: a NaN window never overlaps anything *and* never
        covers the extent, so the expanding-window loop would spin forever
        instead of raising."""
        index = BaseZIndex(uniform_points, leaf_capacity=16)
        with pytest.raises(ValueError, match="finite"):
            index.knn(Point(bad, 0.5), 3)
        with pytest.raises(ValueError, match="finite"):
            index.batch_knn([uniform_points[0], Point(0.5, bad)], 3)
        with pytest.raises(ValueError, match="finite"):
            index.batch_radius_query([Point(bad, bad)], 0.1)
        zpgm = build_index("zpgm", uniform_points, TINY_WORKLOAD, seed=0)
        with pytest.raises(ValueError, match="finite"):
            zpgm.knn(Point(bad, 0.5), 3)
        with pytest.raises(ValueError, match="finite"):
            zpgm.batch_radius_query([Point(0.5, bad)], 0.1)

    def test_edge_cases_match_protocol_default(self):
        empty = BaseZIndex([])
        assert empty.knn(Point(0.0, 0.0), 5) == []
        assert empty.batch_knn([Point(0.0, 0.0)], 5) == [[]]
        tiny = BaseZIndex([Point(float(i), float(i)) for i in range(6)], leaf_capacity=4)
        assert tiny.knn(Point(0.0, 0.0), 0) == []
        assert tiny.batch_knn([Point(0.0, 0.0)], -2) == [[]]
        assert len(tiny.knn(Point(0.0, 0.0), 50)) == 6

    @pytest.mark.parametrize("bad_radius", [float("nan"), float("inf"), -0.5])
    def test_invalid_radius_rejected(self, uniform_points, bad_radius):
        index = BaseZIndex(uniform_points, leaf_capacity=16)
        with pytest.raises(ValueError, match="radius"):
            index.batch_radius_query(uniform_points[:3], bad_radius)
        zpgm = build_index("zpgm", uniform_points, TINY_WORKLOAD, seed=0)
        with pytest.raises(ValueError, match="radius"):
            zpgm.batch_radius_query(uniform_points[:3], bad_radius)

    def test_knn_respects_stale_scan_budget(self, uniform_points):
        """A single kNN right after a mutation must not force the O(N)
        flat-cache rebuild that the range-query path deliberately defers."""
        data = list(uniform_points[:200])
        index = BaseZIndex(data, leaf_capacity=8)
        index.range_query(Rect(0.0, 0.0, 1.0, 1.0))  # builds the flat cache
        assert index._flat_starts is not None
        newcomer = Point(0.41, 0.59)
        index.insert(newcomer)
        data.append(newcomer)
        assert index._flat_starts is None
        center = Point(0.4, 0.6)
        got = index.knn(center, 7)
        assert index._flat_starts is None  # budget honoured, no rebuild
        assert [p.distance_squared(center) for p in got] == [
            p.distance_squared(center) for p in brute_force_knn(data, center, 7)
        ]

    def test_knn_exact_after_inserts_and_deletes(self, uniform_points):
        """The kernel must rebuild its caches after structural mutations."""
        index = BaseZIndex(uniform_points[:200], leaf_capacity=8)
        live = list(uniform_points[:200])
        center = Point(0.4, 0.6)
        assert_knn_matches_oracle(index, live, center, 9)
        for point in uniform_points[200:260]:
            index.insert(point)
            live.append(point)
        assert_knn_matches_oracle(index, live, center, 9)
        for victim in uniform_points[:40]:
            if index.delete(victim):
                live.remove(victim)
        assert_knn_matches_oracle(index, live, center, 9)


class TestWaZIKnnProperties:
    @settings(max_examples=10, deadline=None)
    @given(points=tie_heavy_points(min_size=5, max_size=80), data=st.data())
    def test_wazi_kernel_matches_scalar_decomposition(self, points, data):
        index = WaZI(points, TINY_WORKLOAD, leaf_capacity=8, num_candidates=4, seed=0)
        center = Point(
            data.draw(smooth_coordinates, label="cx"),
            data.draw(smooth_coordinates, label="cy"),
        )
        k = data.draw(st.integers(min_value=1, max_value=len(points) + 2), label="k")
        assert index.knn(center, k) == SpatialIndex.knn(index, center, k)
        assert_knn_matches_oracle(index, points, center, k)
