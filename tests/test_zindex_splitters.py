"""Unit tests for split strategies and quadrant partitioning helpers."""

import numpy as np

from repro.geometry import Rect
from repro.zindex.node import ORDER_ABCD
from repro.zindex.splitters import (
    FixedDecisionStrategy,
    MedianSplitStrategy,
    MidpointSplitStrategy,
    SplitDecision,
    partition_by_quadrant,
    points_in_cell,
)


def array_of(*pairs):
    return np.array(pairs, dtype=np.float64)


class TestMedianSplitStrategy:
    def test_splits_at_medians(self):
        points = array_of((0, 0), (1, 2), (2, 4), (3, 6), (4, 8))
        decision = MedianSplitStrategy().choose(Rect(0, 0, 10, 10), points, depth=0)
        assert decision.split_x == 2.0
        assert decision.split_y == 4.0
        assert decision.ordering == ORDER_ABCD

    def test_median_clamped_into_cell(self):
        points = array_of((5, 5), (6, 6), (7, 7))
        decision = MedianSplitStrategy().choose(Rect(0, 0, 4, 4), points, depth=0)
        assert 0 <= decision.split_x <= 4
        assert 0 <= decision.split_y <= 4

    def test_empty_points_fall_back_to_center(self):
        decision = MedianSplitStrategy().choose(Rect(0, 0, 4, 2), np.empty((0, 2)), depth=0)
        assert decision.split_x == 2.0
        assert decision.split_y == 1.0


class TestMidpointSplitStrategy:
    def test_always_cell_center(self):
        points = array_of((0, 0), (0.1, 0.1))
        decision = MidpointSplitStrategy().choose(Rect(0, 0, 8, 4), points, depth=3)
        assert decision.split_x == 4.0
        assert decision.split_y == 2.0


class TestFixedDecisionStrategy:
    def test_returns_configured_decision(self):
        decision = SplitDecision(1.0, 2.0, ORDER_ABCD)
        strategy = FixedDecisionStrategy(decision)
        assert strategy.choose(Rect(0, 0, 4, 4), np.empty((0, 2)), 0) is decision


class TestPartitionHelpers:
    def test_points_in_cell_closed_boundaries(self):
        points = array_of((0, 0), (1, 1), (2, 2), (3, 3))
        inside = points_in_cell(points, Rect(1, 1, 2, 2))
        assert inside.shape[0] == 2

    def test_points_in_cell_empty_input(self):
        empty = np.empty((0, 2))
        assert points_in_cell(empty, Rect(0, 0, 1, 1)).shape[0] == 0

    def test_partition_by_quadrant_counts(self):
        points = array_of((1, 1), (3, 1), (1, 3), (3, 3), (2, 2))
        quadrant_a, quadrant_b, quadrant_c, quadrant_d = partition_by_quadrant(points, 2.0, 2.0)
        # The boundary point (2, 2) goes to A, matching the strict > comparisons.
        assert quadrant_a.shape[0] == 2
        assert quadrant_b.shape[0] == 1
        assert quadrant_c.shape[0] == 1
        assert quadrant_d.shape[0] == 1

    def test_partition_preserves_all_points(self):
        rng = np.random.default_rng(0)
        points = rng.uniform(0, 1, size=(200, 2))
        parts = partition_by_quadrant(points, 0.4, 0.6)
        assert sum(p.shape[0] for p in parts) == 200

    def test_partition_is_consistent_with_quadrant_of(self):
        from repro.zindex.node import InternalNode

        rng = np.random.default_rng(1)
        points = rng.uniform(0, 1, size=(100, 2))
        node = InternalNode(Rect(0, 0, 1, 1), 0.5, 0.5, ORDER_ABCD)
        parts = partition_by_quadrant(points, 0.5, 0.5)
        for quadrant, part in enumerate(parts):
            for x, y in part:
                assert node.quadrant_of(x, y) == quadrant
