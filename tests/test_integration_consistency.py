"""Cross-index integration tests: every index must agree with brute force.

These tests treat the whole library as a black box: for each region, build
every index on the same data and check that range queries, point queries
and kNN agree with the brute-force oracle (and therefore with each other).
"""

import pytest

from repro import build_index
from repro.geometry import Point, Rect
from repro.interfaces import brute_force_knn, brute_force_range
from repro.workloads import (
    dataset_extent,
    generate_dataset,
    generate_range_workload,
)

ALL_INDEXES = [
    "base",
    "base+sk",
    "wazi",
    "wazi-sk",
    "str",
    "cur",
    "flood",
    "quasii",
    "zpgm",
    "rtree",
    "quadtree",
    "kdtree",
]


def result_set(points):
    return sorted((p.x, p.y) for p in points)


@pytest.fixture(scope="module")
def scenario():
    data = generate_dataset("iberia", 1500, seed=21)
    workload = generate_range_workload("iberia", 40, selectivity_percent=0.0256, seed=21)
    return data, workload


@pytest.fixture(scope="module")
def built_indexes(scenario):
    data, workload = scenario
    return {
        name: build_index(name, data, workload.queries, leaf_capacity=32, seed=5)
        for name in ALL_INDEXES
    }


class TestRangeQueryConsistency:
    @pytest.mark.parametrize("name", ALL_INDEXES)
    def test_workload_queries_match_brute_force(self, name, scenario, built_indexes):
        data, workload = scenario
        index = built_indexes[name]
        for query in workload.queries[:15]:
            expected = result_set(brute_force_range(data, query))
            assert result_set(index.range_query(query)) == expected

    @pytest.mark.parametrize("name", ALL_INDEXES)
    def test_full_extent_query_returns_everything(self, name, scenario, built_indexes):
        data, _ = scenario
        extent = dataset_extent("iberia")
        assert len(built_indexes[name].range_query(extent)) == len(data)

    @pytest.mark.parametrize("name", ALL_INDEXES)
    def test_empty_query_returns_nothing(self, name, built_indexes):
        empty_region = Rect(-50.0, -50.0, -40.0, -40.0)
        assert built_indexes[name].range_query(empty_region) == []


class TestPointQueryConsistency:
    @pytest.mark.parametrize("name", ALL_INDEXES)
    def test_existing_points_found(self, name, scenario, built_indexes):
        data, _ = scenario
        index = built_indexes[name]
        assert all(index.point_query(p) for p in data[::50])

    @pytest.mark.parametrize("name", ALL_INDEXES)
    def test_missing_point_not_found(self, name, built_indexes):
        assert not built_indexes[name].point_query(Point(-123.0, -321.0))


class TestSizeAndCardinality:
    @pytest.mark.parametrize("name", ALL_INDEXES)
    def test_len_matches_data(self, name, scenario, built_indexes):
        data, _ = scenario
        assert len(built_indexes[name]) == len(data)

    @pytest.mark.parametrize("name", ALL_INDEXES)
    def test_size_bytes_positive(self, name, built_indexes):
        assert built_indexes[name].size_bytes() > 0


class TestKnnConsistency:
    @pytest.mark.parametrize("name", ["base", "wazi", "str", "flood", "quasii"])
    def test_knn_matches_brute_force(self, name, scenario, built_indexes):
        data, _ = scenario
        index = built_indexes[name]
        center = Point(55.0, 45.0)
        expected = brute_force_knn(data, center, 10)
        got = index.knn(center, 10)
        expected_distances = sorted(p.distance_squared(center) for p in expected)
        got_distances = sorted(p.distance_squared(center) for p in got)
        assert len(got) == 10
        assert got_distances == pytest.approx(expected_distances)
