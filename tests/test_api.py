"""Tests for the high-level convenience API."""

import pytest

from repro import build_index, compare_indexes
from repro.api import (
    INDEX_NAMES,
    run_join_workload,
    run_knn_workload,
    run_point_workload,
    run_range_workload,
    workload_summary,
)
from repro.baselines import FloodIndex, STRRTree
from repro.core import WaZI
from repro.interfaces import brute_force_range
from repro.zindex import BaseZIndex


class TestBuildIndex:
    def test_unknown_name_rejected(self, uniform_points):
        with pytest.raises(ValueError):
            build_index("btree", uniform_points)

    @pytest.mark.parametrize("name", INDEX_NAMES)
    def test_every_registered_name_builds(self, name, clustered_points, small_workload):
        index = build_index(name, clustered_points[:600], small_workload.queries[:20], seed=1)
        assert len(index) == 600

    def test_returns_expected_types(self, clustered_points, small_workload):
        assert isinstance(build_index("wazi", clustered_points[:200], small_workload.queries), WaZI)
        assert isinstance(build_index("base", clustered_points[:200]), BaseZIndex)
        assert isinstance(build_index("str", clustered_points[:200]), STRRTree)
        assert isinstance(build_index("flood", clustered_points[:200]), FloodIndex)

    def test_name_case_insensitive(self, uniform_points):
        index = build_index("BASE", uniform_points[:100])
        assert isinstance(index, BaseZIndex)

    @pytest.mark.parametrize("name", ["wazi", "base", "str", "cur", "flood", "quasii"])
    def test_built_indexes_answer_queries_correctly(self, name, clustered_points, small_workload):
        data = clustered_points[:800]
        index = build_index(name, data, small_workload.queries, seed=2)
        for query in small_workload.queries[:10]:
            expected = sorted((p.x, p.y) for p in brute_force_range(data, query))
            got = sorted((p.x, p.y) for p in index.range_query(query))
            assert got == expected


class TestCompareIndexes:
    def test_compare_two_indexes(self, clustered_points, small_workload):
        results = compare_indexes(
            ["base", "wazi"],
            clustered_points[:800],
            small_workload.queries[:20],
            point_queries=clustered_points[:10],
            seed=1,
        )
        assert set(results) == {"base", "wazi"}
        for result in results.values():
            assert result.range_stats is not None
            assert result.point_stats is not None

    def test_forwards_repeats_and_batch_ranges(self, clustered_points, small_workload):
        """Regression: repeats/batch_ranges used to be silently dropped,
        making the batch engine unreachable from the top-level API."""
        results = compare_indexes(
            ["base"],
            clustered_points[:400],
            small_workload.queries[:6],
            seed=1,
            repeats=3,
            batch_ranges=True,
        )
        assert results["base"].range_stats.num_queries == 18

    def test_measures_knn_scenario(self, clustered_points, small_workload):
        results = compare_indexes(
            ["base", "str"],
            clustered_points[:400],
            small_workload.queries[:6],
            knn_queries=clustered_points[:8],
            knn_k=4,
            seed=1,
            batch_knn=True,
        )
        for result in results.values():
            assert result.knn_stats is not None
            assert result.knn_stats.num_queries == 8
            assert result.knn_stats.extra["k"] == 4.0


class TestWorkloadHelpers:
    def test_run_range_workload(self, uniform_points, sample_queries):
        index = build_index("base", uniform_points)
        stats = run_range_workload(index, sample_queries[:10])
        assert stats.num_queries == 10

    def test_run_point_workload(self, uniform_points):
        index = build_index("base", uniform_points)
        stats = run_point_workload(index, uniform_points[:10])
        assert stats.counters.points_returned == 10

    def test_run_knn_workload(self, uniform_points):
        index = build_index("base", uniform_points)
        for batch in (False, True):
            stats = run_knn_workload(index, uniform_points[:10], k=5, batch=batch)
            assert stats.num_queries == 10
            assert stats.counters.points_returned > 0

    def test_run_join_workload(self, uniform_points):
        index = build_index("base", uniform_points)
        stats = run_join_workload(index, uniform_points[:10], "radius", radius=0.05)
        assert stats.num_queries == 10
        assert stats.extra["num_pairs"] >= 10  # every probe matches itself

    def test_workload_summary_keys(self, uniform_points, sample_queries):
        index = build_index("base", uniform_points)
        stats = run_range_workload(index, sample_queries[:10])
        summary = workload_summary(stats)
        assert summary["index"] == "Base"
        assert summary["queries"] == 10
        assert summary["mean_micros"] > 0
        assert summary["points_filtered_per_query"] >= summary["excess_points_per_query"]


class TestDeprecationShims:
    """The legacy free functions warn (once per call site) with a migration hint."""

    def test_build_index_warns_once_per_call_site(self, uniform_points):
        import warnings

        import repro.api as api

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("default")
            for _ in range(3):  # one call site, three calls
                api.build_index("base", uniform_points[:50])
            deprecations = [
                w for w in caught if issubclass(w.category, DeprecationWarning)
            ]
            assert len(deprecations) == 1
            message = str(deprecations[0].message)
            assert "deprecated" in message
            assert "SpatialEngine" in message  # the migration hint
            # a second, distinct call site warns again
            api.build_index("base", uniform_points[:50])
            deprecations = [
                w for w in caught if issubclass(w.category, DeprecationWarning)
            ]
            assert len(deprecations) == 2

    def test_build_or_load_index_warns_once_per_call_site(self, uniform_points,
                                                          tmp_path):
        import warnings

        import repro.api as api

        path = tmp_path / "shim.snapshot"
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("default")
            for _ in range(2):  # one call site: load path after first call
                api.build_or_load_index(
                    "base", uniform_points[:50], snapshot_path=path
                )
            deprecations = [
                w for w in caught if issubclass(w.category, DeprecationWarning)
            ]
            # exactly one warning: the shim's own (the internal build_index
            # delegation must not add a second one)
            assert len(deprecations) == 1
            assert "SpatialEngine.open" in str(deprecations[0].message)

    def test_canonical_engine_functions_do_not_warn(self, uniform_points,
                                                    tmp_path):
        import warnings

        from repro.engine import build_index, build_or_load_index

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            build_index("base", uniform_points[:50])
            build_or_load_index(
                "base", uniform_points[:50],
                snapshot_path=tmp_path / "canonical.snapshot",
            )

    def test_loading_a_rebuild_snapshot_does_not_warn(self, uniform_points,
                                                      tmp_path):
        import warnings

        from repro.persistence import load_snapshot, save_rebuild_snapshot

        path = tmp_path / "recipe.snapshot"
        save_rebuild_snapshot("str", uniform_points[:50], path)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            load_snapshot(path)
