"""Tests for the scatter/gather dispatcher (in-process backends).

The contract: a ShardedIndex over a shard directory answers every query
type byte-identically to the unsharded index it was built from — same
rows, same order, same cost counters — and the merged results compose
with the rest of the query surface (joins) unchanged.
"""

import numpy as np
import pytest

from repro.geometry import Point, Rect
from repro.joins import box_join, radius_join
from repro.serving import build_shards, open_sharded
from repro.zindex import ZIndex


def _dataset(n=4000, seed=23, span=400.0):
    rng = np.random.default_rng(seed)
    # A skewed mixture so shard bounding boxes differ in density.
    a = rng.uniform(0, span, size=(n // 2, 2))
    b = rng.normal(span * 0.25, span * 0.02, size=(n - n // 2, 2))
    return np.clip(np.concatenate([a, b]), 0, span), rng


def _build_pair(tmp_path, *, num_shards=6, use_skipping=True, n=4000):
    coords, rng = _dataset(n=n)
    pts = [Point(float(x), float(y)) for x, y in coords]
    index = ZIndex(pts, leaf_capacity=32, use_skipping=use_skipping)
    build_shards(index, tmp_path / "shards", num_shards=num_shards)
    sharded = open_sharded(tmp_path / "shards", workers=0)
    return index, sharded, rng


#: Counters measuring data touched.  These match the unsharded engine
#: exactly (shards partition the rows).  Traversal counters
#: (nodes_visited, bbs_checked, leaves_skipped) legitimately differ:
#: every shard descends its own copy of the global tree (more node
#: visits), but clamps its scan to its live leaf span (often fewer bbox
#: checks than the one global interval).
DATA_COUNTERS = ("pages_scanned", "points_filtered", "points_returned")


def _assert_data_counters_match(index, sharded):
    expect = vars(index.counters)
    got = vars(sharded.counters)
    for name in DATA_COUNTERS:
        assert got[name] == expect[name], name
    assert got["nodes_visited"] >= expect["nodes_visited"]


def _assert_same_results(expect, got):
    assert len(expect) == len(got)
    for e, g in zip(expect, got):
        ex, ey = e.as_arrays()
        gx, gy = g.as_arrays()
        np.testing.assert_array_equal(ex, gx)
        np.testing.assert_array_equal(ey, gy)


@pytest.fixture()
def pair(tmp_path):
    index, sharded, rng = _build_pair(tmp_path)
    yield index, sharded, rng
    sharded.close()


class TestRangeIdentity:
    def test_batch_range_query_byte_identical(self, pair):
        index, sharded, rng = pair
        queries = []
        for _ in range(60):
            x0, x1 = sorted(rng.uniform(0, 400, 2).tolist())
            y0, y1 = sorted(rng.uniform(0, 400, 2).tolist())
            queries.append(Rect(x0, y0, x1, y1))
        queries.append(Rect(-10, -10, 500, 500))  # everything
        queries.append(Rect(900, 900, 901, 901))  # nothing
        index.reset_counters()
        sharded.reset_counters()
        _assert_same_results(
            index.batch_range_query(queries), sharded.batch_range_query(queries)
        )
        _assert_data_counters_match(index, sharded)

    def test_range_count_matches(self, pair):
        index, sharded, rng = pair
        queries = []
        for _ in range(20):
            x0, x1 = sorted(rng.uniform(0, 400, 2).tolist())
            y0, y1 = sorted(rng.uniform(0, 400, 2).tolist())
            queries.append(Rect(x0, y0, x1, y1))
        assert sharded.batch_range_count(queries) == index.batch_range_count(queries)
        assert sharded.range_count(queries[0]) == index.range_count(queries[0])

    def test_empty_batch(self, pair):
        _, sharded, _ = pair
        assert sharded.batch_range_query([]) == []
        assert sharded.batch_range_count([]) == []


class TestKnnIdentity:
    def test_batch_knn_byte_identical_across_k(self, pair):
        index, sharded, rng = pair
        centers = [Point(float(x), float(y)) for x, y in rng.uniform(0, 400, size=(15, 2))]
        centers.append(Point(-50.0, -50.0))  # outside every shard bbox
        for k in (1, 7, 64):
            index.reset_counters()
            sharded.reset_counters()
            _assert_same_results(
                index.batch_knn(centers, k), sharded.batch_knn(centers, k)
            )

    def test_scalar_knn_with_pruning_matches(self, pair):
        index, sharded, rng = pair
        for x, y in rng.uniform(0, 400, size=(25, 2)):
            center = Point(float(x), float(y))
            for k in (1, 9):
                _assert_same_results([index.knn(center, k)], [sharded.knn(center, k)])

    def test_knn_k_exceeds_population(self, pair):
        index, sharded, _ = pair
        center = Point(10.0, 10.0)
        _assert_same_results(
            [index.knn(center, len(index) + 100)],
            [sharded.knn(center, len(sharded) + 100)],
        )

    def test_knn_duplicate_points_tie_break(self, tmp_path):
        # Many exactly coincident points force distance ties: the merge's
        # stable sort must reproduce the unsharded flat-order tie-break.
        rng = np.random.default_rng(5)
        coords = rng.uniform(0, 100, size=(500, 2))
        coords = np.concatenate([coords, np.tile([[50.0, 50.0]], (40, 1))])
        pts = [Point(float(x), float(y)) for x, y in coords]
        index = ZIndex(pts, leaf_capacity=16)
        build_shards(index, tmp_path / "s", num_shards=5)
        with open_sharded(tmp_path / "s", workers=0) as sharded:
            for k in (1, 10, 40, 45):
                _assert_same_results(
                    [index.knn(Point(50.0, 50.0), k)],
                    [sharded.knn(Point(50.0, 50.0), k)],
                )

    def test_knn_invalid_inputs(self, pair):
        _, sharded, _ = pair
        assert sharded.knn(Point(1.0, 1.0), 0).count() == 0
        assert sharded.batch_knn([], 5) == []
        with pytest.raises(ValueError):
            sharded.knn(Point(float("nan"), 0.0), 3)


class TestRadiusAndPoint:
    def test_batch_radius_byte_identical(self, pair):
        index, sharded, rng = pair
        centers = [Point(float(x), float(y)) for x, y in rng.uniform(0, 400, size=(18, 2))]
        for radius in (0.5, 12.0, 600.0):
            _assert_same_results(
                index.batch_radius_query(centers, radius),
                sharded.batch_radius_query(centers, radius),
            )

    def test_radius_rejects_bad_radius(self, pair):
        _, sharded, _ = pair
        with pytest.raises(ValueError):
            sharded.batch_radius_query([Point(1.0, 1.0)], -1.0)

    def test_point_query_matches(self, pair):
        index, sharded, _ = pair
        sample = index.all_points()[:: max(1, len(index) // 50)]
        for point in sample:
            assert sharded.point_query(point)
        assert not sharded.point_query(Point(-3.0, -3.0))


class TestJoinsThroughDispatcher:
    def test_box_join_identical(self, pair):
        index, sharded, rng = pair
        probes = [Point(float(x), float(y)) for x, y in rng.uniform(0, 400, size=(30, 2))]
        assert box_join(sharded, probes, 5.0) == box_join(index, probes, 5.0)

    def test_radius_join_identical(self, pair):
        index, sharded, rng = pair
        probes = [Point(float(x), float(y)) for x, y in rng.uniform(0, 400, size=(30, 2))]
        assert radius_join(sharded, probes, 7.5) == radius_join(index, probes, 7.5)


class TestDispatcherPlumbing:
    def test_len_extent_size(self, pair):
        index, sharded, _ = pair
        assert len(sharded) == len(index)
        assert sharded.size_bytes() > 0
        extent = sharded.extent()
        for point in index.all_points()[:: max(1, len(index) // 20)]:
            assert extent.contains_point(point)

    def test_mutations_rejected(self, pair):
        _, sharded, _ = pair
        with pytest.raises(NotImplementedError):
            sharded.insert(Point(1.0, 1.0))

    def test_single_shard_plan(self, tmp_path):
        index, sharded, rng = _build_pair(tmp_path, num_shards=1, n=800)
        try:
            assert sharded.num_shards == 1
            queries = [Rect(0, 0, 200, 200), Rect(50, 50, 60, 60)]
            _assert_same_results(
                index.batch_range_query(queries), sharded.batch_range_query(queries)
            )
        finally:
            sharded.close()

    def test_reset_counters_resets_shards_too(self, pair):
        _, sharded, _ = pair
        sharded.range_count(Rect(0, 0, 400, 400))
        assert sharded.counters.pages_scanned > 0
        sharded.reset_counters()
        assert sharded.counters.pages_scanned == 0
        sharded.range_count(Rect(0, 0, 400, 400))
        assert sharded.counters.pages_scanned > 0

    def test_busy_accounting(self, pair):
        _, sharded, _ = pair
        sharded.reset_busy()
        sharded.range_count(Rect(0, 0, 400, 400))
        assert sum(sharded.shard_busy_seconds) > 0.0
        sharded.reset_busy()
        assert sum(sharded.shard_busy_seconds) == 0.0

    def test_context_manager_closes(self, tmp_path):
        _, sharded, _ = _build_pair(tmp_path, num_shards=2, n=600)
        with sharded:
            assert len(sharded) == 600
        # close() is idempotent.
        sharded.close()

    def test_column_info_reports_mmap(self, pair):
        _, sharded, _ = pair
        info = sharded.column_info()
        assert len(info) == sharded.num_shards
        for entry in info:
            assert entry["store"] == "MmapColumnStore"
            assert all(entry["mapped"].values())
