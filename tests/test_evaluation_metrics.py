"""Unit tests for cost counters, phase timers and query statistics."""

import time

import pytest

from repro.evaluation import CostCounters, PhaseTimer, QueryStats


class TestCostCounters:
    def test_defaults_to_zero(self):
        counters = CostCounters()
        assert counters.snapshot() == {
            "nodes_visited": 0,
            "bbs_checked": 0,
            "pages_scanned": 0,
            "points_filtered": 0,
            "points_returned": 0,
            "leaves_skipped": 0,
            "excess_points": 0,
        }

    def test_excess_points(self):
        counters = CostCounters(points_filtered=10, points_returned=3)
        assert counters.excess_points == 7

    def test_excess_points_never_negative(self):
        counters = CostCounters(points_filtered=1, points_returned=5)
        assert counters.excess_points == 0

    def test_reset(self):
        counters = CostCounters(nodes_visited=5, bbs_checked=3)
        counters.reset()
        assert counters.nodes_visited == 0
        assert counters.bbs_checked == 0

    def test_add_accumulates(self):
        first = CostCounters(nodes_visited=1, pages_scanned=2)
        second = CostCounters(nodes_visited=3, pages_scanned=4, leaves_skipped=5)
        first.add(second)
        assert first.nodes_visited == 4
        assert first.pages_scanned == 6
        assert first.leaves_skipped == 5

    def test_subtraction(self):
        after = CostCounters(nodes_visited=10, points_filtered=20)
        before = CostCounters(nodes_visited=4, points_filtered=5)
        delta = after - before
        assert delta.nodes_visited == 6
        assert delta.points_filtered == 15

    def test_copy_is_independent(self):
        original = CostCounters(bbs_checked=2)
        duplicate = original.copy()
        duplicate.bbs_checked += 1
        assert original.bbs_checked == 2


class TestPhaseTimer:
    def test_records_elapsed_time(self):
        timer = PhaseTimer()
        with timer.phase("scan"):
            time.sleep(0.01)
        assert timer.total("scan") >= 0.005

    def test_accumulates_over_entries(self):
        timer = PhaseTimer()
        for _ in range(3):
            with timer.phase("projection"):
                pass
        assert timer.total("projection") >= 0.0
        assert set(timer.totals()) == {"projection"}

    def test_unknown_phase_is_zero(self):
        assert PhaseTimer().total("missing") == 0.0

    def test_reset(self):
        timer = PhaseTimer()
        with timer.phase("scan"):
            pass
        timer.reset()
        assert timer.totals() == {}


class TestQueryStats:
    def test_mean_latency(self):
        stats = QueryStats(index_name="x", num_queries=4, total_seconds=2.0)
        assert stats.mean_seconds == 0.5
        assert stats.mean_micros == pytest.approx(500_000.0)

    def test_mean_with_zero_queries(self):
        stats = QueryStats(index_name="x", num_queries=0, total_seconds=1.0)
        assert stats.mean_seconds == 0.0

    def test_per_query_counter(self):
        stats = QueryStats(
            index_name="x",
            num_queries=10,
            total_seconds=1.0,
            counters=CostCounters(bbs_checked=50, points_filtered=200, points_returned=40),
        )
        assert stats.per_query("bbs_checked") == 5.0
        assert stats.per_query("excess_points") == 16.0

    def test_per_query_with_zero_queries(self):
        stats = QueryStats(index_name="x", num_queries=0, total_seconds=0.0)
        assert stats.per_query("bbs_checked") == 0.0
