"""Unit tests for the greedy workload-aware split strategy (Algorithm 3)."""

import numpy as np
import pytest

from repro.core.construction import GreedySplitStrategy, build_density_estimator
from repro.density import ExactDensity, RandomForestDensity
from repro.geometry import Point, Rect
from repro.zindex.node import ORDER_ABCD, ORDER_ACBD, ORDERINGS


def uniform_array(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 1.0, size=(n, 2))


class TestGreedySplitStrategy:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GreedySplitStrategy([], num_candidates=0)
        with pytest.raises(ValueError):
            GreedySplitStrategy([], alpha=-0.1)

    def test_falls_back_to_median_without_queries(self):
        strategy = GreedySplitStrategy([], num_candidates=8, seed=0)
        points = np.array([(0.1, 0.1), (0.2, 0.6), (0.9, 0.9)])
        decision = strategy.choose(Rect(0, 0, 1, 1), points, depth=0)
        assert decision.split_x == pytest.approx(np.median(points[:, 0]))
        assert decision.split_y == pytest.approx(np.median(points[:, 1]))
        assert decision.ordering == ORDER_ABCD

    def test_split_point_inside_cell(self):
        workload = [Rect(0.1, 0.1, 0.3, 0.3)] * 5
        strategy = GreedySplitStrategy(workload, num_candidates=16, seed=1)
        cell = Rect(0.0, 0.0, 1.0, 1.0)
        decision = strategy.choose(cell, uniform_array(200), depth=0)
        assert cell.contains_xy(decision.split_x, decision.split_y)
        assert decision.ordering in ORDERINGS

    def test_deterministic_given_seed(self):
        workload = [Rect(0.2, 0.2, 0.4, 0.8)] * 10
        points = uniform_array(300, seed=3)
        first = GreedySplitStrategy(workload, num_candidates=12, seed=7).choose(
            Rect(0, 0, 1, 1), points, 0
        )
        second = GreedySplitStrategy(workload, num_candidates=12, seed=7).choose(
            Rect(0, 0, 1, 1), points, 0
        )
        assert first == second

    def test_prefers_split_that_isolates_hot_region(self):
        """A workload confined to the lower-left corner should pull the split
        towards (or past) that corner so the hot region is isolated."""
        points = uniform_array(500, seed=5)
        hot = Rect(0.0, 0.0, 0.25, 0.25)
        workload = [hot] * 50
        strategy = GreedySplitStrategy(workload, num_candidates=64, alpha=1e-5, seed=2)
        decision = strategy.choose(Rect(0, 0, 1, 1), points, depth=0)
        counts = ExactDensity([Point(x, y) for x, y in points])
        # Cost of the chosen split must not exceed the median split's cost.
        from repro.core.cost import best_ordering, QuadrantCounts

        def cost_of(split_x, split_y):
            quads = Rect(0, 0, 1, 1).split(split_x, split_y)
            quad_counts = QuadrantCounts(*(counts.estimate(q) for q in quads))
            return best_ordering(workload, quad_counts, split_x, split_y, 1e-5)[1]

        median_x = float(np.median(points[:, 0]))
        median_y = float(np.median(points[:, 1]))
        assert cost_of(decision.split_x, decision.split_y) <= cost_of(median_x, median_y) + 1e-9

    def test_vertical_queries_prefer_acbd_ordering(self):
        points = uniform_array(400, seed=9)
        workload = [Rect(0.05, 0.05, 0.15, 0.95)] * 30
        strategy = GreedySplitStrategy(workload, num_candidates=32, seed=4)
        decision = strategy.choose(Rect(0, 0, 1, 1), points, depth=0)
        # Tall queries spanning A and C favour the ordering that keeps A and C
        # adjacent whenever the split separates the hot column.
        if decision.split_x > 0.15:
            assert decision.ordering == ORDER_ACBD

    def test_relevant_queries_clipped_to_cell(self):
        strategy = GreedySplitStrategy([Rect(0.0, 0.0, 2.0, 2.0)], seed=0)
        clipped = strategy._relevant_queries(Rect(0.5, 0.5, 1.0, 1.0))
        assert clipped == [Rect(0.5, 0.5, 1.0, 1.0)]

    def test_irrelevant_queries_dropped(self):
        strategy = GreedySplitStrategy([Rect(5.0, 5.0, 6.0, 6.0)], seed=0)
        assert strategy._relevant_queries(Rect(0.0, 0.0, 1.0, 1.0)) == []

    def test_candidate_splits_include_median_and_samples(self):
        strategy = GreedySplitStrategy([Rect(0, 0, 1, 1)], num_candidates=5, seed=0)
        points = uniform_array(50)
        candidates = strategy._candidate_splits(Rect(0, 0, 1, 1), points)
        assert len(candidates) == 6
        assert candidates[0][0] == pytest.approx(float(np.median(points[:, 0])))

    def test_external_density_estimator_used(self):
        points = uniform_array(200, seed=11)
        point_objects = [Point(x, y) for x, y in points]
        estimator = RandomForestDensity(point_objects, num_trees=2, seed=0)
        strategy = GreedySplitStrategy(
            [Rect(0.2, 0.2, 0.5, 0.5)] * 5, density=estimator, num_candidates=8, seed=0
        )
        decision = strategy.choose(Rect(0, 0, 1, 1), points, depth=0)
        assert Rect(0, 0, 1, 1).contains_xy(decision.split_x, decision.split_y)


class TestBuildDensityEstimator:
    def test_rfde(self):
        points = [Point(0.1, 0.2), Point(0.3, 0.4)]
        estimator = build_density_estimator(points, kind="rfde", num_trees=2, seed=0)
        assert isinstance(estimator, RandomForestDensity)
        assert estimator.total == 2

    def test_exact(self):
        estimator = build_density_estimator([Point(0, 0)], kind="exact")
        assert isinstance(estimator, ExactDensity)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            build_density_estimator([], kind="neural")
