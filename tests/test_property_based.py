"""Property-based tests (hypothesis) on the library's core invariants.

These tests generate random points, rectangles and workloads and check the
invariants the paper's correctness rests on:

* geometric predicates are consistent with each other,
* the Z-order encoding is a bijection and respects domination,
* the retrieval-cost model is monotone in alpha and bounded by the total
  point count,
* every Z-index variant answers range and point queries exactly like a
  brute-force scan,
* the look-ahead pointers always point forward and never skip a relevant
  leaf.
"""

from hypothesis import given, settings, strategies as st

from repro.core import WaZI
from repro.core.cost import QuadrantCounts, single_query_cost
from repro.geometry import Point, Rect, bounding_box, classify_quadrants
from repro.geometry.rect import QUADRANT_A, QUADRANT_B, QUADRANT_C, QUADRANT_D
from repro.interfaces import brute_force_range
from repro.zindex import BaseZIndex
from repro.zindex.node import ORDER_ABCD, ORDER_ACBD
from repro.zorder import deinterleave, interleave, z_less
from repro.zorder.mapper import ZOrderMapper


# --------------------------------------------------------------------------
# strategies
# --------------------------------------------------------------------------
coordinates = st.floats(min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False)


@st.composite
def points_strategy(draw, min_size=1, max_size=120):
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    xs = draw(st.lists(coordinates, min_size=n, max_size=n))
    ys = draw(st.lists(coordinates, min_size=n, max_size=n))
    return [Point(x, y) for x, y in zip(xs, ys)]


@st.composite
def rect_strategy(draw):
    x1 = draw(coordinates)
    x2 = draw(coordinates)
    y1 = draw(coordinates)
    y2 = draw(coordinates)
    return Rect(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))


grid_coordinates = st.integers(min_value=0, max_value=255)


# --------------------------------------------------------------------------
# geometry properties
# --------------------------------------------------------------------------
class TestGeometryProperties:
    @given(rect_strategy(), rect_strategy())
    def test_overlap_symmetric_and_consistent_with_intersection(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)
        assert (a.intersection(b) is not None) == a.overlaps(b)

    @given(rect_strategy(), rect_strategy())
    def test_union_contains_both(self, a, b):
        union = a.union(b)
        assert union.contains_rect(a)
        assert union.contains_rect(b)

    @given(rect_strategy(), rect_strategy())
    def test_intersection_contained_in_both(self, a, b):
        overlap = a.intersection(b)
        if overlap is not None:
            assert a.contains_rect(overlap)
            assert b.contains_rect(overlap)

    @given(points_strategy(min_size=1, max_size=50))
    def test_bounding_box_contains_every_point(self, points):
        box = bounding_box(points)
        assert all(box.contains_xy(p.x, p.y) for p in points)

    @given(rect_strategy(), coordinates, coordinates)
    def test_split_partitions_area(self, cell, fraction_x, fraction_y):
        # Clamp like ZIndex._build_node does: xmin + 1.0 * width can land
        # one ulp past xmax, which Rect.split rightly rejects.
        split_x = min(cell.xmax, cell.xmin + (fraction_x / 100.0) * cell.width)
        split_y = min(cell.ymax, cell.ymin + (fraction_y / 100.0) * cell.height)
        quadrants = cell.split(split_x, split_y)
        assert abs(sum(q.area for q in quadrants) - cell.area) < 1e-6 * max(cell.area, 1.0)

    @given(rect_strategy(), coordinates, coordinates)
    def test_classified_corner_pair_is_always_legal(self, query, split_x, split_y):
        pair = classify_quadrants(query, split_x, split_y)
        legal = {
            (QUADRANT_A, QUADRANT_A), (QUADRANT_B, QUADRANT_B),
            (QUADRANT_C, QUADRANT_C), (QUADRANT_D, QUADRANT_D),
            (QUADRANT_A, QUADRANT_B), (QUADRANT_A, QUADRANT_C),
            (QUADRANT_A, QUADRANT_D), (QUADRANT_B, QUADRANT_D),
            (QUADRANT_C, QUADRANT_D),
        }
        assert pair in legal


# --------------------------------------------------------------------------
# Z-order properties
# --------------------------------------------------------------------------
class TestZOrderProperties:
    @given(grid_coordinates, grid_coordinates)
    def test_interleave_roundtrip(self, x, y):
        assert deinterleave(interleave(x, y, bits=8), bits=8) == (x, y)

    @given(grid_coordinates, grid_coordinates, grid_coordinates, grid_coordinates)
    def test_z_less_matches_encoded_order(self, ax, ay, bx, by):
        expected = interleave(ax, ay, bits=8) < interleave(bx, by, bits=8)
        assert z_less((ax, ay), (bx, by), bits=8) == expected

    @given(grid_coordinates, grid_coordinates,
           st.integers(min_value=0, max_value=50), st.integers(min_value=0, max_value=50))
    def test_domination_implies_smaller_address(self, x, y, dx, dy):
        if dx == 0 and dy == 0:
            return
        x2, y2 = min(x + dx, 255), min(y + dy, 255)
        if (x2, y2) == (x, y):
            return
        assert interleave(x, y, bits=8) < interleave(x2, y2, bits=8)

    @given(points_strategy(min_size=2, max_size=60))
    def test_mapper_preserves_domination(self, points):
        extent = bounding_box(points)
        mapper = ZOrderMapper(extent, bits=10)
        for a in points[:10]:
            for b in points[:10]:
                if a.x < b.x and a.y < b.y:
                    assert mapper.z_address(a) <= mapper.z_address(b)


# --------------------------------------------------------------------------
# cost-model properties
# --------------------------------------------------------------------------
corner_pairs = st.sampled_from([
    (QUADRANT_A, QUADRANT_A), (QUADRANT_B, QUADRANT_B), (QUADRANT_C, QUADRANT_C),
    (QUADRANT_D, QUADRANT_D), (QUADRANT_A, QUADRANT_B), (QUADRANT_A, QUADRANT_C),
    (QUADRANT_A, QUADRANT_D), (QUADRANT_B, QUADRANT_D), (QUADRANT_C, QUADRANT_D),
])
count_values = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)


class TestCostModelProperties:
    @given(corner_pairs, count_values, count_values, count_values, count_values,
           st.floats(min_value=0.0, max_value=1.0), st.sampled_from([ORDER_ABCD, ORDER_ACBD]))
    def test_cost_bounded_by_total(self, pair, na, nb, nc, nd, alpha, ordering):
        counts = QuadrantCounts(na, nb, nc, nd)
        cost = single_query_cost(pair, counts, ordering, alpha)
        assert 0.0 <= cost <= counts.total + 1e-6

    @given(corner_pairs, count_values, count_values, count_values, count_values,
           st.floats(min_value=0.0, max_value=0.5), st.floats(min_value=0.5, max_value=1.0),
           st.sampled_from([ORDER_ABCD, ORDER_ACBD]))
    def test_cost_monotone_in_alpha(self, pair, na, nb, nc, nd, alpha_low, alpha_high, ordering):
        counts = QuadrantCounts(na, nb, nc, nd)
        low = single_query_cost(pair, counts, ordering, alpha_low)
        high = single_query_cost(pair, counts, ordering, alpha_high)
        assert low <= high + 1e-9

    @given(count_values, count_values, count_values, count_values,
           st.floats(min_value=0.0, max_value=1.0))
    def test_full_span_query_costs_everything_under_both_orderings(self, na, nb, nc, nd, alpha):
        counts = QuadrantCounts(na, nb, nc, nd)
        for ordering in (ORDER_ABCD, ORDER_ACBD):
            cost = single_query_cost((QUADRANT_A, QUADRANT_D), counts, ordering, alpha)
            assert abs(cost - counts.total) < 1e-6


# --------------------------------------------------------------------------
# index correctness properties
# --------------------------------------------------------------------------
class TestIndexProperties:
    @settings(max_examples=25, deadline=None)
    @given(points_strategy(min_size=1, max_size=150), rect_strategy())
    def test_base_zindex_matches_brute_force(self, points, query):
        index = BaseZIndex(points, leaf_capacity=8)
        expected = sorted((p.x, p.y) for p in brute_force_range(points, query))
        got = sorted((p.x, p.y) for p in index.range_query(query))
        assert got == expected

    @settings(max_examples=15, deadline=None)
    @given(points_strategy(min_size=5, max_size=120),
           st.lists(rect_strategy(), min_size=1, max_size=6), rect_strategy())
    def test_wazi_matches_brute_force(self, points, workload, query):
        index = WaZI(points, workload, leaf_capacity=8, num_candidates=4, seed=0)
        expected = sorted((p.x, p.y) for p in brute_force_range(points, query))
        got = sorted((p.x, p.y) for p in index.range_query(query))
        assert got == expected

    @settings(max_examples=25, deadline=None)
    @given(points_strategy(min_size=1, max_size=120))
    def test_every_point_is_found_by_point_query(self, points):
        index = BaseZIndex(points, leaf_capacity=8)
        assert all(index.point_query(p) for p in points)

    @settings(max_examples=20, deadline=None)
    @given(points_strategy(min_size=8, max_size=120),
           st.lists(rect_strategy(), min_size=1, max_size=4))
    def test_wazi_lookahead_pointers_always_forward(self, points, workload):
        index = WaZI(points, workload, leaf_capacity=8, num_candidates=4, seed=0)
        assert index.leaflist.check_linked()
        assert index.leaflist.check_skip_pointers_forward()

    @settings(max_examples=20, deadline=None)
    @given(points_strategy(min_size=10, max_size=100), points_strategy(min_size=1, max_size=20))
    def test_inserts_preserve_correctness(self, initial, inserts):
        index = BaseZIndex(initial, leaf_capacity=8)
        for point in inserts:
            index.insert(point)
        everything = initial + inserts
        box = bounding_box(everything)
        got = sorted((p.x, p.y) for p in index.range_query(box))
        assert got == sorted((p.x, p.y) for p in everything)


# --------------------------------------------------------------------------
# columnar / batch engine properties
# --------------------------------------------------------------------------
@st.composite
def skewed_points_strategy(draw, min_size=5, max_size=120):
    """Points concentrated towards the origin (quadratically skewed)."""
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    xs = draw(st.lists(coordinates, min_size=n, max_size=n))
    ys = draw(st.lists(coordinates, min_size=n, max_size=n))
    return [Point(x * x / 100.0, y * y / 100.0) for x, y in zip(xs, ys)]


class TestColumnarEngineProperties:
    """WaZI's vectorized single and batch query paths are exact."""

    @settings(max_examples=15, deadline=None)
    @given(points_strategy(min_size=5, max_size=120),
           st.lists(rect_strategy(), min_size=1, max_size=4),
           st.lists(rect_strategy(), min_size=1, max_size=6))
    def test_wazi_batch_matches_brute_force(self, points, workload, queries):
        index = WaZI(points, workload, leaf_capacity=8, num_candidates=4, seed=0)
        batch = index.batch_range_query(queries)
        for query, got in zip(queries, batch):
            expected = sorted((p.x, p.y) for p in brute_force_range(points, query))
            assert sorted((p.x, p.y) for p in got) == expected
        assert batch == [index.range_query(query) for query in queries]

    @settings(max_examples=10, deadline=None)
    @given(skewed_points_strategy(min_size=10, max_size=120),
           st.lists(rect_strategy(), min_size=1, max_size=4), rect_strategy())
    def test_wazi_exact_on_skewed_data(self, points, workload, query):
        index = WaZI(points, workload, leaf_capacity=8, num_candidates=4, seed=1)
        expected = sorted((p.x, p.y) for p in brute_force_range(points, query))
        assert sorted((p.x, p.y) for p in index.range_query(query)) == expected
        (batch_result,) = index.batch_range_query([query])
        assert sorted((p.x, p.y) for p in batch_result) == expected

    @settings(max_examples=10, deadline=None)
    @given(points_strategy(min_size=8, max_size=80),
           points_strategy(min_size=1, max_size=20),
           st.lists(rect_strategy(), min_size=1, max_size=4), rect_strategy())
    def test_wazi_exact_after_inserts_and_deletes(
        self, initial, inserts, workload, query
    ):
        index = WaZI(initial, workload, leaf_capacity=8, num_candidates=4, seed=2)
        live = list(initial)
        for point in inserts:
            index.insert(point)
            live.append(point)
        for victim in initial[::3]:
            if index.delete(victim):
                live.remove(victim)
        expected = sorted((p.x, p.y) for p in brute_force_range(live, query))
        assert sorted((p.x, p.y) for p in index.range_query(query)) == expected
        (batch_result,) = index.batch_range_query([query])
        assert sorted((p.x, p.y) for p in batch_result) == expected
        assert len(index) == len(live)
