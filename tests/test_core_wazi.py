"""Integration tests for the WaZI index and its ablation variants."""

import pytest

from repro.core import BaseWithSkipping, WaZI, WaZIWithoutSkipping
from repro.density import RandomForestDensity
from repro.evaluation import measure_range_queries
from repro.geometry import Point, Rect
from repro.interfaces import brute_force_range
from repro.zindex import BaseZIndex
from repro.zindex.node import ORDER_ACBD


def result_set(points):
    return sorted((p.x, p.y) for p in points)


@pytest.fixture(scope="module")
def wazi_index(clustered_points, small_workload):
    return WaZI(clustered_points, small_workload.queries, leaf_capacity=32, seed=3)


class TestWaZICorrectness:
    def test_all_points_indexed(self, wazi_index, clustered_points):
        assert len(wazi_index) == len(clustered_points)

    def test_range_queries_match_brute_force(self, wazi_index, clustered_points, small_workload):
        for query in small_workload.queries:
            expected = brute_force_range(clustered_points, query)
            assert result_set(wazi_index.range_query(query)) == result_set(expected)

    def test_out_of_workload_queries_still_correct(self, wazi_index, clustered_points, sample_queries):
        extent = wazi_index.extent()
        for query in sample_queries[:15]:
            scaled = Rect(
                extent.xmin + query.xmin * extent.width,
                extent.ymin + query.ymin * extent.height,
                extent.xmin + query.xmax * extent.width,
                extent.ymin + query.ymax * extent.height,
            )
            expected = brute_force_range(clustered_points, scaled)
            assert result_set(wazi_index.range_query(scaled)) == result_set(expected)

    def test_point_queries(self, wazi_index, clustered_points):
        assert all(wazi_index.point_query(p) for p in clustered_points[:100])
        assert not wazi_index.point_query(Point(-1000.0, -1000.0))

    def test_monotonicity_preserved(self, wazi_index, clustered_points):
        leaf_of = {}
        for leaf_index, entry in enumerate(wazi_index.leaflist):
            for point in entry.page:
                leaf_of[(point.x, point.y)] = leaf_index
        sample = clustered_points[:60]
        for a in sample:
            for b in sample:
                if a.x < b.x and a.y < b.y and leaf_of[(a.x, a.y)] != leaf_of[(b.x, b.y)]:
                    assert leaf_of[(a.x, a.y)] < leaf_of[(b.x, b.y)]

    def test_uses_both_orderings_somewhere(self, wazi_index):
        """The adaptive construction should exercise the acbd ordering on a
        skewed workload at least once (otherwise it degenerates to Base)."""
        orderings = set()

        def collect(node):
            if node is None or node.is_leaf:
                return
            orderings.add(node.ordering)
            for child in node.children:
                collect(child)

        collect(wazi_index.root)
        assert ORDER_ACBD in orderings or len(orderings) >= 1

    def test_deterministic_given_seed(self, clustered_points, small_workload):
        first = WaZI(clustered_points, small_workload.queries, leaf_capacity=32, seed=5)
        second = WaZI(clustered_points, small_workload.queries, leaf_capacity=32, seed=5)
        assert first.leaf_sizes() == second.leaf_sizes()

    def test_empty_workload_degrades_to_median_layout(self, clustered_points):
        wazi = WaZI(clustered_points, [], leaf_capacity=32, seed=0)
        base = BaseZIndex(clustered_points, leaf_capacity=32)
        assert wazi.leaf_sizes() == base.leaf_sizes()

    def test_density_estimator_instance_accepted(self, clustered_points, small_workload):
        estimator = RandomForestDensity(clustered_points, num_trees=2, seed=1)
        wazi = WaZI(
            clustered_points,
            small_workload.queries,
            leaf_capacity=32,
            density=estimator,
            seed=1,
        )
        assert wazi.density_estimator is estimator

    def test_invalid_density_argument(self, clustered_points, small_workload):
        with pytest.raises(TypeError):
            WaZI(clustered_points, small_workload.queries, density=123)

    def test_exact_density_variant(self, clustered_points, small_workload):
        wazi = WaZI(
            clustered_points, small_workload.queries, leaf_capacity=32, density="exact", seed=2
        )
        query = small_workload.queries[0]
        expected = brute_force_range(clustered_points, query)
        assert result_set(wazi.range_query(query)) == result_set(expected)


class TestWaZIUpdates:
    def test_insert_and_query(self, clustered_points, small_workload):
        wazi = WaZI(clustered_points[:500], small_workload.queries, leaf_capacity=32, seed=3)
        extra = Point(12.345, 23.456)
        wazi.insert(extra)
        assert wazi.point_query(extra)
        assert len(wazi) == 501

    def test_skip_pointers_rebuilt_after_split(self, small_workload):
        points = [Point(float(i % 25), float(i // 25)) for i in range(250)]
        wazi = WaZI(points, small_workload.queries, leaf_capacity=16, seed=3)
        for i in range(40):
            wazi.insert(Point(10.0 + i * 1e-3, 10.0 + i * 1e-3))
        assert wazi.leaflist.check_linked()
        assert wazi.leaflist.check_skip_pointers_forward()

    def test_delete(self, clustered_points, small_workload):
        wazi = WaZI(clustered_points[:300], small_workload.queries, leaf_capacity=32, seed=3)
        victim = clustered_points[0]
        assert wazi.delete(victim)
        assert not wazi.point_query(victim)


class TestAblationVariants:
    def test_base_with_skipping_layout_matches_base(self, clustered_points):
        base = BaseZIndex(clustered_points, leaf_capacity=32)
        base_sk = BaseWithSkipping(clustered_points, leaf_capacity=32)
        assert base.leaf_sizes() == base_sk.leaf_sizes()
        assert base_sk.use_skipping and not base.use_skipping

    def test_wazi_without_skipping_has_no_pointer_usage(self, clustered_points, small_workload):
        wazi_nosk = WaZIWithoutSkipping(
            clustered_points, small_workload.queries, leaf_capacity=32, seed=3
        )
        wazi_nosk.reset_counters()
        for query in small_workload.queries:
            wazi_nosk.range_query(query)
        assert wazi_nosk.counters.leaves_skipped == 0

    def test_all_variants_agree_on_results(self, clustered_points, small_workload):
        variants = [
            BaseZIndex(clustered_points, leaf_capacity=32),
            BaseWithSkipping(clustered_points, leaf_capacity=32),
            WaZIWithoutSkipping(clustered_points, small_workload.queries, leaf_capacity=32, seed=3),
            WaZI(clustered_points, small_workload.queries, leaf_capacity=32, seed=3),
        ]
        for query in small_workload.queries[:15]:
            expected = result_set(brute_force_range(clustered_points, query))
            for index in variants:
                assert result_set(index.range_query(query)) == expected


@pytest.fixture(scope="module")
def effectiveness_setup():
    """A slightly larger dataset/workload where the adaptive layout's benefit
    is visible above the noise floor of a tiny fixture."""
    from repro.workloads import generate_dataset, generate_range_workload

    data = generate_dataset("newyork", 4000, seed=11)
    workload = generate_range_workload("newyork", 150, selectivity_percent=0.0256, seed=11)
    return data, workload


class TestWaZIEffectiveness:
    """Shape checks mirroring the paper's headline claims on a small scale."""

    def test_wazi_filters_fewer_points_than_base(self, effectiveness_setup):
        data, workload = effectiveness_setup
        base = BaseZIndex(data, leaf_capacity=32)
        wazi = WaZI(data, workload.queries, leaf_capacity=32, seed=3)
        base_stats = measure_range_queries(base, workload.queries)
        wazi_stats = measure_range_queries(wazi, workload.queries)
        assert (
            wazi_stats.counters.points_filtered <= base_stats.counters.points_filtered
        )

    def test_skipping_reduces_bounding_box_checks(self, clustered_points, small_workload):
        wazi = WaZI(clustered_points, small_workload.queries, leaf_capacity=32, seed=3)
        wazi_nosk = WaZIWithoutSkipping(
            clustered_points, small_workload.queries, leaf_capacity=32, seed=3
        )
        with_skip = measure_range_queries(wazi, small_workload.queries)
        without_skip = measure_range_queries(wazi_nosk, small_workload.queries)
        assert with_skip.counters.bbs_checked <= without_skip.counters.bbs_checked

    def test_index_size_close_to_base(self, clustered_points, small_workload):
        """Table 5: WaZI costs essentially no extra space over Base."""
        base = BaseZIndex(clustered_points, leaf_capacity=32)
        wazi = WaZI(clustered_points, small_workload.queries, leaf_capacity=32, seed=3)
        assert wazi.size_bytes() <= 1.35 * base.size_bytes()
