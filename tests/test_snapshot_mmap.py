"""Tests for zero-copy (mmap) snapshot loading.

The contract: ``load_snapshot(path, mmap=True)`` serves byte-identical
results, ordering and cost counters to both the original index and a
conventionally loaded copy, while holding its columns as views into the
file mapping; the first mutation copies-on-write and the file is never
written through.
"""

import numpy as np
import pytest

from repro.engine import SpatialEngine
from repro.geometry import Point, Rect
from repro.persistence import (
    SnapshotFormatError,
    load_snapshot,
    save_rebuild_snapshot,
    save_snapshot,
    save_workload,
)
from repro.storage import MmapColumnStore
from repro.workloads import Workload
from repro.zindex import ZIndex


def _build(n=2000, seed=7, **kwargs):
    rng = np.random.default_rng(seed)
    pts = [Point(float(x), float(y)) for x, y in rng.uniform(0, 200, size=(n, 2))]
    kwargs.setdefault("leaf_capacity", 32)
    return ZIndex(pts, **kwargs), rng


def _windows(rng, count=40, span=200.0):
    out = []
    for _ in range(count):
        x0, x1 = sorted(rng.uniform(0, span, 2).tolist())
        y0, y1 = sorted(rng.uniform(0, span, 2).tolist())
        out.append(Rect(x0, y0, x1, y1))
    return out


@pytest.fixture(params=[False, True], ids=["plain", "skipping"])
def saved(request, tmp_path):
    index, rng = _build(use_skipping=request.param)
    path = tmp_path / "snap.zip"
    save_snapshot(index, path)
    return index, path, rng


class TestMmapLoad:
    def test_columns_are_views_into_the_mapping(self, saved):
        _, path, _ = saved
        loaded = load_snapshot(path, mmap=True, validate=False)
        store = loaded._store
        assert isinstance(store, MmapColumnStore)
        assert np.shares_memory(loaded._flat_x, store["flat_x"])
        assert isinstance(loaded._flat_x.base, np.memmap)
        for entry in loaded.leaflist:
            if len(entry.page):
                assert not entry.page.owns_buffers
                assert np.shares_memory(entry.page.xs, store["flat_x"])

    def test_results_and_counters_identical(self, saved):
        index, path, rng = saved
        mapped = load_snapshot(path, mmap=True, validate=False)
        copied = load_snapshot(path)
        queries = _windows(rng)
        centers = [Point(float(x), float(y)) for x, y in rng.uniform(0, 200, size=(12, 2))]
        for reference in (index, copied):
            for engine in (reference, mapped):
                engine.reset_counters()
            expect = reference.batch_range_query(queries)
            got = mapped.batch_range_query(queries)
            for e, g in zip(expect, got):
                np.testing.assert_array_equal(e.as_arrays()[0], g.as_arrays()[0])
                np.testing.assert_array_equal(e.as_arrays()[1], g.as_arrays()[1])
            assert vars(reference.counters) == vars(mapped.counters)
            for engine in (reference, mapped):
                engine.reset_counters()
            ek = reference.batch_knn(centers, 7)
            gk = mapped.batch_knn(centers, 7)
            for e, g in zip(ek, gk):
                np.testing.assert_array_equal(e.as_arrays()[0], g.as_arrays()[0])
            assert vars(reference.counters) == vars(mapped.counters)
            er = reference.batch_radius_query(centers, 9.0)
            gr = mapped.batch_radius_query(centers, 9.0)
            for e, g in zip(er, gr):
                np.testing.assert_array_equal(e.as_arrays()[0], g.as_arrays()[0])

    def test_validate_true_also_loads(self, saved):
        index, path, rng = saved
        mapped = load_snapshot(path, mmap=True, validate=True)
        for query in _windows(rng, 5):
            assert mapped.range_count(query) == index.range_count(query)

    def test_mutation_copies_on_write_and_file_survives(self, saved):
        index, path, rng = saved
        before = path.read_bytes()
        mapped = load_snapshot(path, mmap=True, validate=False)
        new_points = [Point(float(x), float(y)) for x, y in rng.uniform(0, 200, size=(40, 2))]
        for point in new_points:
            mapped.insert(point)
        for point in new_points:
            assert mapped.point_query(point)
        assert len(mapped) == len(index) + len(new_points)
        assert path.read_bytes() == before
        # And a fresh mapping still serves the original contents.
        again = load_snapshot(path, mmap=True, validate=False)
        assert len(again) == len(index)

    def test_point_queries_against_mapping(self, saved):
        index, path, _ = saved
        mapped = load_snapshot(path, mmap=True, validate=False)
        for point in index.all_points()[:: max(1, len(index) // 25)]:
            assert mapped.point_query(point)
        assert not mapped.point_query(Point(-1.0, -1.0))


class TestMmapRefusals:
    def test_workload_snapshot_refuses_mmap(self, tmp_path):
        path = tmp_path / "w.zip"
        save_workload(Workload(queries=[Rect(0, 0, 1, 1)]), path)
        with pytest.raises(SnapshotFormatError):
            load_snapshot(path, mmap=True)

    def test_rebuild_snapshot_refuses_mmap(self, tmp_path):
        path = tmp_path / "r.zip"
        pts = [Point(float(i), float(i % 5)) for i in range(64)]
        save_rebuild_snapshot("str", pts, path, leaf_capacity=16)
        with pytest.raises(SnapshotFormatError):
            load_snapshot(path, mmap=True)


class TestEnginePassthrough:
    def test_engine_load_mmap(self, tmp_path):
        index, rng = _build(n=600)
        engine = SpatialEngine(index)
        path = tmp_path / "e.zip"
        engine.save(path)
        served = SpatialEngine.load(path, mmap=True, validate=False)
        assert isinstance(served.index._store, MmapColumnStore)
        for query in _windows(rng, 5):
            assert served.index.range_count(query) == index.range_count(query)
