"""Unit tests for the density estimators (exact, k-d tree, RFDE, grid, weighted)."""

import numpy as np
import pytest

from repro.density import (
    ExactDensity,
    GridHistogramDensity,
    KDTreeDensity,
    RandomForestDensity,
    WeightedPointSet,
)
from repro.geometry import Point, Rect


@pytest.fixture(scope="module")
def grid_points():
    """A deterministic 40x40 lattice of points in the unit square."""
    return [
        Point(x / 39.0, y / 39.0)
        for x in range(40)
        for y in range(40)
    ]


class TestExactDensity:
    def test_total(self, grid_points):
        assert ExactDensity(grid_points).total == len(grid_points)

    def test_estimate_counts_exactly(self, grid_points):
        estimator = ExactDensity(grid_points)
        query = Rect(0.0, 0.0, 0.5, 0.5)
        expected = sum(1 for p in grid_points if query.contains_xy(p.x, p.y))
        assert estimator.estimate(query) == expected

    def test_empty_dataset(self):
        estimator = ExactDensity([])
        assert estimator.total == 0
        assert estimator.estimate(Rect(0, 0, 1, 1)) == 0
        assert estimator.selectivity(Rect(0, 0, 1, 1)) == 0.0

    def test_selectivity_fraction(self, grid_points):
        estimator = ExactDensity(grid_points)
        assert estimator.selectivity(Rect(-1, -1, 2, 2)) == pytest.approx(1.0)


class TestKDTreeDensity:
    def test_total_matches_dataset(self, grid_points):
        tree = KDTreeDensity(grid_points, leaf_size=32, rng=np.random.default_rng(0))
        assert tree.total == len(grid_points)

    def test_full_extent_estimate_is_total(self, grid_points):
        tree = KDTreeDensity(grid_points, leaf_size=32, rng=np.random.default_rng(0))
        assert tree.estimate(Rect(-1, -1, 2, 2)) == pytest.approx(tree.total)

    def test_exact_leaves_give_exact_counts(self, grid_points):
        tree = KDTreeDensity(grid_points, leaf_size=16, rng=np.random.default_rng(1))
        exact = ExactDensity(grid_points)
        for query in [Rect(0.1, 0.1, 0.4, 0.6), Rect(0.5, 0.0, 1.0, 0.2)]:
            assert tree.estimate(query) == pytest.approx(exact.estimate(query))

    def test_interpolated_leaves_approximate(self, grid_points):
        tree = KDTreeDensity(
            grid_points, leaf_size=200, rng=np.random.default_rng(2), exact_leaves=False
        )
        exact = ExactDensity(grid_points)
        query = Rect(0.2, 0.2, 0.8, 0.8)
        estimate = tree.estimate(query)
        truth = exact.estimate(query)
        assert abs(estimate - truth) <= 0.25 * truth

    def test_disjoint_query_estimates_zero(self, grid_points):
        tree = KDTreeDensity(grid_points, leaf_size=32, rng=np.random.default_rng(0))
        assert tree.estimate(Rect(5.0, 5.0, 6.0, 6.0)) == 0.0

    def test_empty_dataset(self):
        tree = KDTreeDensity([], leaf_size=8)
        assert tree.total == 0.0
        assert tree.estimate(Rect(0, 0, 1, 1)) == 0.0

    def test_invalid_leaf_size(self):
        with pytest.raises(ValueError):
            KDTreeDensity([Point(0, 0)], leaf_size=0)

    def test_node_count_and_depth_positive(self, grid_points):
        tree = KDTreeDensity(grid_points, leaf_size=64, rng=np.random.default_rng(3))
        assert tree.node_count() >= 1
        assert tree.depth() >= 1
        assert tree.size_bytes() > 0

    def test_duplicate_points_do_not_recurse_forever(self):
        duplicates = [Point(0.5, 0.5)] * 500
        tree = KDTreeDensity(duplicates, leaf_size=16, rng=np.random.default_rng(4))
        assert tree.estimate(Rect(0.4, 0.4, 0.6, 0.6)) == pytest.approx(500.0)


class TestRandomForestDensity:
    def test_total(self, grid_points):
        forest = RandomForestDensity(grid_points, num_trees=3, seed=0)
        assert forest.total == len(grid_points)
        assert forest.num_trees == 3

    def test_estimate_close_to_exact(self, grid_points):
        forest = RandomForestDensity(grid_points, num_trees=4, leaf_size=32, seed=0)
        exact = ExactDensity(grid_points)
        for query in [Rect(0.0, 0.0, 0.3, 0.3), Rect(0.25, 0.4, 0.9, 0.8)]:
            truth = exact.estimate(query)
            assert abs(forest.estimate(query) - truth) <= max(10.0, 0.15 * truth)

    def test_deterministic_given_seed(self, grid_points):
        query = Rect(0.1, 0.2, 0.6, 0.9)
        first = RandomForestDensity(grid_points, num_trees=3, seed=42).estimate(query)
        second = RandomForestDensity(grid_points, num_trees=3, seed=42).estimate(query)
        assert first == second

    def test_subsampled_forest_scales_estimates(self, grid_points):
        forest = RandomForestDensity(
            grid_points, num_trees=4, sample_fraction=0.5, leaf_size=32, seed=1
        )
        full = forest.estimate(Rect(-1, -1, 2, 2))
        assert full == pytest.approx(forest.total, rel=0.05)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RandomForestDensity([Point(0, 0)], num_trees=0)
        with pytest.raises(ValueError):
            RandomForestDensity([Point(0, 0)], sample_fraction=0.0)
        with pytest.raises(ValueError):
            RandomForestDensity([Point(0, 0)], weights=[1.0, 2.0])
        with pytest.raises(ValueError):
            RandomForestDensity([Point(0, 0)], weights=[-1.0])

    def test_weighted_total_and_estimates(self):
        points = [Point(0.1, 0.1), Point(0.9, 0.9)]
        forest = RandomForestDensity(points, num_trees=4, seed=0, weights=[3.0, 1.0])
        assert forest.total == pytest.approx(4.0)
        left = forest.estimate(Rect(0.0, 0.0, 0.5, 0.5))
        right = forest.estimate(Rect(0.5, 0.5, 1.0, 1.0))
        assert left > right

    def test_empty_dataset(self):
        forest = RandomForestDensity([], num_trees=2, seed=0)
        assert forest.total == 0.0
        assert forest.estimate(Rect(0, 0, 1, 1)) == 0.0


class TestGridHistogramDensity:
    def test_total(self, grid_points):
        histogram = GridHistogramDensity(grid_points, bins_x=16, bins_y=16)
        assert histogram.total == len(grid_points)
        assert histogram.shape == (16, 16)

    def test_full_extent_estimate(self, grid_points):
        histogram = GridHistogramDensity(grid_points, bins_x=16, bins_y=16)
        assert histogram.estimate(Rect(-1, -1, 2, 2)) == pytest.approx(len(grid_points))

    def test_half_plane_estimate_close(self, grid_points):
        histogram = GridHistogramDensity(grid_points, bins_x=20, bins_y=20)
        truth = ExactDensity(grid_points).estimate(Rect(0.0, 0.0, 0.5, 1.0))
        assert abs(histogram.estimate(Rect(0.0, 0.0, 0.5, 1.0)) - truth) <= 0.1 * len(grid_points)

    def test_disjoint_query(self, grid_points):
        histogram = GridHistogramDensity(grid_points, bins_x=8, bins_y=8)
        assert histogram.estimate(Rect(3.0, 3.0, 4.0, 4.0)) == 0.0

    def test_empty_dataset(self):
        histogram = GridHistogramDensity([], bins_x=4, bins_y=4)
        assert histogram.total == 0.0
        assert histogram.estimate(Rect(0, 0, 1, 1)) == 0.0

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            GridHistogramDensity([], bins_x=0, bins_y=4)

    def test_size_bytes_positive(self, grid_points):
        assert GridHistogramDensity(grid_points, bins_x=8, bins_y=8).size_bytes() > 0


class TestWeightedPointSet:
    def test_weights_count_matching_queries(self):
        points = [Point(0.25, 0.25), Point(0.75, 0.75)]
        queries = [Rect(0, 0, 0.5, 0.5), Rect(0, 0, 1, 1), Rect(0.6, 0.6, 1, 1)]
        weighted = WeightedPointSet(points, queries)
        assert list(weighted.weights) == [2.0, 2.0]
        assert weighted.total_weight == 4.0

    def test_smoothing_adds_floor(self):
        weighted = WeightedPointSet([Point(0, 0)], [])
        assert list(weighted.smoothed_weights(epsilon=0.5)) == [0.5]

    def test_estimator_prefers_heavily_queried_regions(self):
        points = [Point(0.1, 0.1)] * 20 + [Point(0.9, 0.9)] * 20
        queries = [Rect(0.0, 0.0, 0.2, 0.2)] * 10
        weighted = WeightedPointSet(points, queries)
        estimator = weighted.estimator(num_trees=4, seed=0, epsilon=0.1)
        hot = estimator.estimate(Rect(0.0, 0.0, 0.2, 0.2))
        cold = estimator.estimate(Rect(0.8, 0.8, 1.0, 1.0))
        assert hot > cold

    def test_top_weighted(self):
        points = [Point(0.1, 0.1), Point(0.9, 0.9)]
        queries = [Rect(0, 0, 0.2, 0.2)]
        weighted = WeightedPointSet(points, queries)
        assert weighted.top_weighted(1) == [Point(0.1, 0.1)]
        assert weighted.top_weighted(0) == []

    def test_empty_points(self):
        weighted = WeightedPointSet([], [Rect(0, 0, 1, 1)])
        assert weighted.total_weight == 0.0
        assert weighted.top_weighted(3) == []


class TestEstimatorsAgainstBruteForce:
    """Every estimator's ``estimate()`` vs exact brute-force counts.

    These are the numbers the advise stage (``engine.advise`` /
    :func:`repro.analysis.tuning.advise_layout`) trusts to score a
    re-derived layout, so each approximate estimator is held to an
    explicit accuracy bound on a small clustered dataset.
    """

    @pytest.fixture(scope="class")
    def clustered(self):
        rng = np.random.default_rng(42)
        cluster_a = rng.normal((0.25, 0.25), 0.05, size=(150, 2))
        cluster_b = rng.normal((0.75, 0.7), 0.08, size=(150, 2))
        background = rng.uniform(0.0, 1.0, size=(100, 2))
        coords = np.clip(np.concatenate([cluster_a, cluster_b, background]), 0, 1)
        return [Point(float(x), float(y)) for x, y in coords]

    @pytest.fixture(scope="class")
    def probe_queries(self):
        rng = np.random.default_rng(7)
        queries = []
        for _ in range(25):
            x1, x2 = sorted(rng.uniform(0.0, 1.0, size=2))
            y1, y2 = sorted(rng.uniform(0.0, 1.0, size=2))
            queries.append(Rect(float(x1), float(y1), float(x2), float(y2)))
        return queries

    @staticmethod
    def brute_force(points, query):
        return sum(1 for p in points if query.contains_xy(p.x, p.y))

    def test_exact_density_is_exact(self, clustered, probe_queries):
        estimator = ExactDensity(clustered)
        for query in probe_queries:
            assert estimator.estimate(query) == self.brute_force(clustered, query)

    def test_kdtree_density_with_exact_leaves_is_exact(self, clustered,
                                                       probe_queries):
        tree = KDTreeDensity(clustered, leaf_size=16,
                             rng=np.random.default_rng(0), exact_leaves=True)
        for query in probe_queries:
            assert tree.estimate(query) == self.brute_force(clustered, query)

    def test_kdtree_density_interpolated_bounded_error(self, clustered,
                                                       probe_queries):
        tree = KDTreeDensity(clustered, leaf_size=16,
                             rng=np.random.default_rng(0), exact_leaves=False)
        n = len(clustered)
        for query in probe_queries:
            truth = self.brute_force(clustered, query)
            # the area-interpolated arm is the documented cheaper/less
            # accurate mode, hence the looser bound than the RFDE forest
            assert abs(tree.estimate(query) - truth) <= max(10.0, 0.20 * n)

    def test_rfde_bounded_error(self, clustered, probe_queries):
        forest = RandomForestDensity(clustered, num_trees=4, leaf_size=16, seed=0)
        n = len(clustered)
        for query in probe_queries:
            truth = self.brute_force(clustered, query)
            assert abs(forest.estimate(query) - truth) <= max(10.0, 0.15 * n)

    def test_grid_histogram_bounded_error(self, clustered, probe_queries):
        histogram = GridHistogramDensity(clustered, bins_x=32, bins_y=32)
        n = len(clustered)
        for query in probe_queries:
            truth = self.brute_force(clustered, query)
            assert abs(histogram.estimate(query) - truth) <= max(10.0, 0.15 * n)

    @pytest.mark.parametrize("factory", [
        lambda pts: ExactDensity(pts),
        lambda pts: KDTreeDensity(pts, leaf_size=16, rng=np.random.default_rng(1)),
        lambda pts: RandomForestDensity(pts, num_trees=3, leaf_size=16, seed=1),
        lambda pts: GridHistogramDensity(pts, bins_x=16, bins_y=16),
    ])
    def test_totals_and_selectivity_consistency(self, factory, clustered):
        estimator = factory(clustered)
        everything = Rect(-1.0, -1.0, 2.0, 2.0)
        assert estimator.total == pytest.approx(len(clustered))
        assert estimator.estimate(everything) == pytest.approx(len(clustered), rel=0.05)
        assert estimator.selectivity(everything) == pytest.approx(1.0, rel=0.05)
        nothing = Rect(5.0, 5.0, 6.0, 6.0)
        assert estimator.estimate(nothing) == pytest.approx(0.0, abs=1e-9)
