"""Tests for the R-tree family: dynamic R-tree, STR bulk loading and CUR."""

import numpy as np
import pytest

from repro.baselines import CURTree, RTree, STRRTree
from repro.baselines.rtree import RTreeNode
from repro.geometry import Point, Rect
from repro.interfaces import brute_force_range


def result_set(points):
    return sorted((p.x, p.y) for p in points)


class TestRTreeNode:
    def test_leaf_bbox_recomputation(self):
        node = RTreeNode(is_leaf=True)
        node.points = [Point(0, 0), Point(2, 3)]
        node.recompute_bbox()
        assert node.bbox == Rect(0, 0, 2, 3)

    def test_empty_leaf_bbox_is_none(self):
        node = RTreeNode(is_leaf=True)
        node.recompute_bbox()
        assert node.bbox is None

    def test_internal_bbox_unions_children(self):
        parent = RTreeNode(is_leaf=False)
        for rect in (Rect(0, 0, 1, 1), Rect(3, 3, 4, 4)):
            child = RTreeNode(is_leaf=True)
            child.bbox = rect
            parent.children.append(child)
        parent.recompute_bbox()
        assert parent.bbox == Rect(0, 0, 4, 4)

    def test_count_points_and_depth(self):
        node = RTreeNode(is_leaf=True)
        node.points = [Point(0, 0)]
        assert node.count_points() == 1
        assert node.depth() == 1


class TestDynamicRTree:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RTree(leaf_capacity=1)
        with pytest.raises(ValueError):
            RTree(fanout=2)

    def test_incremental_inserts_remain_correct(self, uniform_points, sample_queries):
        tree = RTree(leaf_capacity=16, fanout=8)
        for point in uniform_points:
            tree.insert(point)
        assert len(tree) == len(uniform_points)
        for query in sample_queries[:15]:
            expected = brute_force_range(uniform_points, query)
            assert result_set(tree.range_query(query)) == result_set(expected)

    def test_point_queries(self, uniform_points):
        tree = RTree(uniform_points, leaf_capacity=16)
        assert all(tree.point_query(p) for p in uniform_points[:50])
        assert not tree.point_query(Point(5.0, 5.0))

    def test_delete(self, uniform_points):
        tree = RTree(uniform_points, leaf_capacity=16)
        victim = uniform_points[10]
        assert tree.delete(victim)
        assert not tree.point_query(victim)
        assert len(tree) == len(uniform_points) - 1
        assert not tree.delete(Point(42.0, 42.0))

    def test_bbox_contains_all_points(self, uniform_points):
        tree = RTree(uniform_points, leaf_capacity=16)
        extent = tree.extent()
        assert all(extent.contains_xy(p.x, p.y) for p in uniform_points)

    def test_depth_grows_with_data(self):
        rng = np.random.default_rng(0)
        points = [Point(float(x), float(y)) for x, y in rng.uniform(0, 1, size=(2000, 2))]
        small = RTree(points[:100], leaf_capacity=8, fanout=4)
        large = RTree(points, leaf_capacity=8, fanout=4)
        assert large.depth() >= small.depth()

    def test_counters_updated(self, uniform_points, sample_queries):
        tree = RTree(uniform_points, leaf_capacity=16)
        tree.reset_counters()
        tree.range_query(sample_queries[0])
        assert tree.counters.nodes_visited > 0


class TestSTRRTree:
    def test_matches_brute_force(self, clustered_points, small_workload):
        tree = STRRTree(clustered_points, leaf_capacity=32)
        for query in small_workload.queries[:20]:
            expected = brute_force_range(clustered_points, query)
            assert result_set(tree.range_query(query)) == result_set(expected)

    def test_leaf_capacity_respected(self, clustered_points):
        tree = STRRTree(clustered_points, leaf_capacity=32)

        def max_leaf(node):
            if node.is_leaf:
                return len(node.points)
            return max(max_leaf(child) for child in node.children)

        assert max_leaf(tree.root) <= 32

    def test_fanout_respected(self, clustered_points):
        tree = STRRTree(clustered_points, leaf_capacity=32, fanout=8)

        def max_fanout(node):
            if node.is_leaf:
                return 0
            return max(len(node.children), max(max_fanout(child) for child in node.children))

        assert max_fanout(tree.root) <= 8

    def test_empty_and_single_point(self):
        assert len(STRRTree([])) == 0
        single = STRRTree([Point(1, 1)])
        assert single.point_query(Point(1, 1))

    def test_supports_inserts_after_bulk_load(self, uniform_points):
        tree = STRRTree(uniform_points[:200], leaf_capacity=16)
        tree.insert(Point(0.5, 0.123))
        assert tree.point_query(Point(0.5, 0.123))

    def test_build_is_balanced(self, clustered_points):
        tree = STRRTree(clustered_points, leaf_capacity=32)

        def leaf_depths(node, depth=1):
            if node.is_leaf:
                return [depth]
            depths = []
            for child in node.children:
                depths.extend(leaf_depths(child, depth + 1))
            return depths

        depths = leaf_depths(tree.root)
        assert max(depths) - min(depths) <= 1


class TestCURTree:
    def test_matches_brute_force(self, clustered_points, small_workload):
        tree = CURTree(clustered_points, small_workload.queries, leaf_capacity=32)
        for query in small_workload.queries[:20]:
            expected = brute_force_range(clustered_points, query)
            assert result_set(tree.range_query(query)) == result_set(expected)

    def test_all_points_present(self, clustered_points, small_workload):
        tree = CURTree(clustered_points, small_workload.queries, leaf_capacity=32)
        assert tree.root.count_points() == len(clustered_points)

    def test_leaf_capacity_respected(self, clustered_points, small_workload):
        tree = CURTree(clustered_points, small_workload.queries, leaf_capacity=32)

        def max_leaf(node):
            if node.is_leaf:
                return len(node.points)
            return max(max_leaf(child) for child in node.children)

        assert max_leaf(tree.root) <= 32

    def test_empty_workload_still_builds(self, uniform_points, sample_queries):
        tree = CURTree(uniform_points, [], leaf_capacity=16)
        for query in sample_queries[:10]:
            expected = brute_force_range(uniform_points, query)
            assert result_set(tree.range_query(query)) == result_set(expected)

    def test_hot_region_gets_smaller_leaves(self):
        rng = np.random.default_rng(4)
        points = [Point(float(x), float(y)) for x, y in rng.uniform(0, 1, size=(3000, 2))]
        hot_query = Rect(0.0, 0.0, 0.15, 0.15)
        tree = CURTree(points, [hot_query] * 50, leaf_capacity=64)

        hot_sizes, cold_sizes = [], []

        def collect(node):
            if node.is_leaf:
                if node.bbox is not None and node.bbox.overlaps(hot_query):
                    hot_sizes.append(len(node.points))
                else:
                    cold_sizes.append(len(node.points))
                return
            for child in node.children:
                collect(child)

        collect(tree.root)
        assert hot_sizes and cold_sizes
        assert np.mean(hot_sizes) <= np.mean(cold_sizes)

    def test_weighted_point_set_exposed(self, clustered_points, small_workload):
        tree = CURTree(clustered_points, small_workload.queries, leaf_capacity=32)
        assert tree.weighted.total_weight >= 0
