"""Tests for aligned container members and zero-copy mapping.

The contract: array members of a snapshot container start at 64-byte-
aligned file offsets (via a benign ZIP extra field any reader ignores),
``map_container`` yields memmaps byte-identical to ``read_container``'s
copies, and the file stays a plain, deterministic ZIP archive.
"""

import struct
import zipfile

import numpy as np
import pytest

from repro.persistence import (
    MEMBER_ALIGNMENT,
    SnapshotFormatError,
    array_member_offsets,
    extract_array_members,
    map_container,
    read_container,
    write_container,
)
from repro.persistence.container import _LOCAL_HEADER_SIZE


def _sample_arrays(seed=0):
    rng = np.random.default_rng(seed)
    return {
        "flat_x": rng.uniform(size=701),
        "flat_y": rng.uniform(size=701),
        "leaf_starts": np.arange(45, dtype=np.int64),
        "boxes": rng.uniform(size=(44, 4)),
        "mask": rng.uniform(size=44) > 0.5,
        "empty": np.empty(0, dtype=np.float64),
        "weird_name_αβ": np.arange(7, dtype=np.int16),
    }


class TestAlignment:
    def test_every_member_data_offset_is_aligned(self, tmp_path):
        path = tmp_path / "c.zip"
        write_container(path, {"kind": "test"}, _sample_arrays())
        offsets = array_member_offsets(path)
        assert set(offsets) == set(_sample_arrays())
        for name, offset in offsets.items():
            assert offset % MEMBER_ALIGNMENT == 0, (name, offset)

    def test_alignment_preserved_for_any_member_order(self, tmp_path):
        arrays = _sample_arrays()
        for i, order in enumerate((sorted(arrays), sorted(arrays, reverse=True))):
            path = tmp_path / f"c{i}.zip"
            write_container(path, {"kind": "test"}, {k: arrays[k] for k in order})
            for name, offset in array_member_offsets(path).items():
                assert offset % MEMBER_ALIGNMENT == 0

    def test_file_is_still_plain_zip(self, tmp_path):
        path = tmp_path / "c.zip"
        write_container(path, {"kind": "test"}, _sample_arrays())
        with zipfile.ZipFile(path) as archive:
            assert archive.testzip() is None
            names = set(archive.namelist())
        assert "manifest.json" in names
        assert "flat_x.npy" in names

    def test_writes_stay_deterministic(self, tmp_path):
        a, b = tmp_path / "a.zip", tmp_path / "b.zip"
        write_container(a, {"kind": "test"}, _sample_arrays())
        write_container(b, {"kind": "test"}, _sample_arrays())
        assert a.read_bytes() == b.read_bytes()

    def test_alignment_math_matches_zip_headers(self, tmp_path):
        path = tmp_path / "c.zip"
        write_container(path, {"kind": "test"}, _sample_arrays())
        offsets = array_member_offsets(path)
        raw = path.read_bytes()
        with zipfile.ZipFile(path) as archive:
            for info in archive.infolist():
                if not info.filename.endswith(".npy"):
                    continue
                name = info.filename[: -len(".npy")]
                header = raw[info.header_offset: info.header_offset + _LOCAL_HEADER_SIZE]
                name_len, extra_len = struct.unpack("<HH", header[26:30])
                data_offset = info.header_offset + _LOCAL_HEADER_SIZE + name_len + extra_len
                assert offsets[name] == data_offset


class TestMapContainer:
    def test_mapped_arrays_byte_identical_to_read(self, tmp_path):
        path = tmp_path / "c.zip"
        arrays = _sample_arrays()
        write_container(path, {"kind": "test"}, arrays)
        manifest_r, copied = read_container(path)
        manifest_m, mapped = map_container(path)
        assert manifest_r == manifest_m
        assert set(copied) == set(mapped)
        for name in copied:
            np.testing.assert_array_equal(copied[name], mapped[name])
            assert copied[name].dtype == mapped[name].dtype
            assert copied[name].shape == mapped[name].shape

    def test_nonempty_members_are_memmaps(self, tmp_path):
        path = tmp_path / "c.zip"
        write_container(path, {"kind": "test"}, _sample_arrays())
        _, mapped = map_container(path)
        for name, array in mapped.items():
            if array.size:
                assert isinstance(array, np.memmap), name
            assert not array.flags.writeable

    def test_mapped_arrays_survive_source_dict(self, tmp_path):
        # The mapping must read from the file, not from process state.
        path = tmp_path / "c.zip"
        arrays = _sample_arrays()
        write_container(path, {"kind": "test"}, arrays)
        expected = {k: v.copy() for k, v in arrays.items()}
        del arrays
        _, mapped = map_container(path)
        for name, want in expected.items():
            np.testing.assert_array_equal(mapped[name], want)

    def test_corrupt_file_raises_format_error(self, tmp_path):
        path = tmp_path / "c.zip"
        path.write_bytes(b"not a zip at all")
        with pytest.raises(SnapshotFormatError):
            map_container(path)

    def test_missing_file_raises_format_error(self, tmp_path):
        with pytest.raises((SnapshotFormatError, OSError)):
            map_container(tmp_path / "nope.zip")


class TestExtract:
    def test_extracted_sidecars_load_with_numpy(self, tmp_path):
        path = tmp_path / "c.zip"
        arrays = _sample_arrays()
        write_container(path, {"kind": "test"}, arrays)
        extracted = extract_array_members(path, tmp_path / "out")
        assert set(extracted) == set(arrays)
        for name, sidecar in extracted.items():
            loaded = np.load(sidecar, mmap_mode="r" if arrays[name].size else None)
            np.testing.assert_array_equal(loaded, arrays[name])
