"""Runtime sanitizer: clean indexes pass, corrupted state is caught with a
named invariant, install/uninstall leaves the library pristine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.devtools import invariants
from repro.devtools.invariants import (
    InvariantViolation,
    check_index_invariants,
    check_shard_conservation,
    install_sanitizer,
    sanitize_enabled,
    sanitizer_installed,
    uninstall_sanitizer,
)
from repro.engine import build_index
from repro.geometry import Point, Rect
from repro.persistence import load_snapshot, save_snapshot
from repro.serving import build_shards, open_sharded
from repro.zindex.base import ZIndex


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(41)
    return [Point(float(x), float(y)) for x, y in rng.uniform(0.0, 1.0, (900, 2))]


@pytest.fixture(scope="module")
def workload():
    return [Rect(0.1, 0.1, 0.45, 0.45), Rect(0.5, 0.5, 0.9, 0.9)]


@pytest.fixture()
def wazi(points, workload):
    return build_index("wazi", points, workload, leaf_capacity=16, seed=0)


@pytest.fixture()
def snapshot(wazi, tmp_path):
    path = tmp_path / "index.snapshot"
    save_snapshot(wazi, path)
    return path


class TestCleanIndexesPass:
    @pytest.mark.parametrize("name", ["base", "wazi"])
    def test_fresh_build(self, name, points, workload):
        index = build_index(name, points, workload, leaf_capacity=16, seed=0)
        check_index_invariants(index)

    def test_after_queries_and_mutations(self, wazi, points):
        wazi.range_query(Rect(0.2, 0.2, 0.7, 0.7))
        check_index_invariants(wazi)
        wazi.insert(Point(0.31, 0.77))
        wazi.delete(points[3])
        check_index_invariants(wazi)

    def test_snapshot_load_memory_and_mmap(self, snapshot):
        check_index_invariants(load_snapshot(snapshot))
        loaded = load_snapshot(snapshot, mmap=True)
        check_index_invariants(loaded)

    def test_non_zindex_passes_vacuously(self, points, workload):
        index = build_index("str", points, workload)
        check_index_invariants(index)


class TestCorruptionIsNamed:
    def test_backward_skip_pointer(self, snapshot):
        index = load_snapshot(snapshot)
        index.leaflist.entries[2].set_skip_pointer("below", 0)
        with pytest.raises(InvariantViolation) as exc:
            check_index_invariants(index)
        assert exc.value.invariant == "skip-pointer-range"
        assert "skip-pointer-range" in str(exc.value)

    def test_in_range_but_wrong_skip_pointer(self, snapshot):
        index = load_snapshot(snapshot)
        assert index.use_skipping
        entries = index.leaflist.entries
        mutated = False
        for position, entry in enumerate(entries[:-2]):
            current = entry.skip_pointer("left")
            if current not in (-1, position + 1):
                entry.set_skip_pointer("left", position + 1)
                mutated = True
                break
        assert mutated, "workload should produce at least one long left pointer"
        with pytest.raises(InvariantViolation) as exc:
            check_index_invariants(index)
        assert exc.value.invariant == "skip-pointer-rebuild"

    def test_shrunken_leaf_box(self, snapshot):
        index = load_snapshot(snapshot)
        packed = index.leaflist.packed()
        packed._ensure_writable()
        row = int(np.flatnonzero(np.asarray(packed.nonempty))[0])
        packed.boxes[row, 2] -= 1e-3
        with pytest.raises(InvariantViolation) as exc:
            check_index_invariants(index)
        assert exc.value.invariant == "leaf-boxes-tight"

    def test_inconsistent_nonempty_flag(self, snapshot):
        index = load_snapshot(snapshot)
        packed = index.leaflist.packed()
        packed._ensure_writable()
        row = int(np.flatnonzero(np.asarray(packed.nonempty))[0])
        packed.nonempty[row] = False
        with pytest.raises(InvariantViolation) as exc:
            check_index_invariants(index)
        assert exc.value.invariant == "leaf-nonempty-consistent"

    def test_stale_flat_cache(self, wazi):
        wazi.range_query(Rect(0.2, 0.2, 0.7, 0.7))  # installs the flat cache
        assert wazi._flat_x is not None
        # Mutate a page behind the cache's back (promote first so the write
        # hits a private buffer, leaving the cached column stale).
        entry = next(e for e in wazi.leaflist.entries if len(e.page) > 0)
        page = entry.page
        page._promote()
        page._xs[0] += 0.5
        with pytest.raises(InvariantViolation) as exc:
            check_index_invariants(wazi)
        assert exc.value.invariant in ("flat-cache-coherent", "leaf-boxes-tight")

    def test_writable_readonly_store_column(self, snapshot):
        index = load_snapshot(snapshot, mmap=True)
        # Forge a writeable column inside the read-only store.
        name = index._store.names()[0]
        index._store._columns[name] = np.array(index._store[name])
        with pytest.raises(InvariantViolation) as exc:
            check_index_invariants(index)
        assert exc.value.invariant == "mmap-read-only"


class TestShardConservation:
    def test_counters_conserved_and_corruption_caught(self, wazi, tmp_path):
        directory = tmp_path / "shards"
        build_shards(wazi, directory, num_shards=3)
        with open_sharded(directory, workers=0) as sharded:
            sharded.reset_counters()
            for query in (Rect(0.1, 0.1, 0.6, 0.6), Rect(0.4, 0.2, 0.9, 0.8)):
                sharded.range_query(query)
            check_shard_conservation(sharded)
            sharded.counters.pages_scanned += 1  # simulate a lost delta
            with pytest.raises(InvariantViolation) as exc:
                check_shard_conservation(sharded)
            assert exc.value.invariant == "shard-conservation"


@pytest.fixture()
def pristine_sanitizer():
    """Start the test with the sanitizer uninstalled; restore after.

    Under a REPRO_SANITIZE=1 run the session fixture installed it already —
    these tests exercise install/uninstall themselves, so they need the
    pristine entry points to compare against.
    """
    was_installed = sanitizer_installed()
    if was_installed:
        uninstall_sanitizer()
    yield
    uninstall_sanitizer()
    if was_installed:
        install_sanitizer()


class TestInstallation:
    def test_install_checks_builds_and_loads(
        self, points, workload, tmp_path, pristine_sanitizer
    ):
        pristine_build = ZIndex._build
        install_sanitizer()
        try:
            assert sanitizer_installed()
            assert ZIndex._build is not pristine_build
            index = build_index("wazi", points[:300], workload, leaf_capacity=8, seed=0)
            path = tmp_path / "s.snapshot"
            save_snapshot(index, path)
            load_snapshot(path, mmap=True)
            install_sanitizer()  # idempotent
        finally:
            uninstall_sanitizer()
        assert not sanitizer_installed()
        assert ZIndex._build is pristine_build

    def test_installed_sanitizer_rejects_corrupt_snapshot_state(
        self, wazi, pristine_sanitizer
    ):
        # An in-range but *wrong* skip pointer: the loader's own validation
        # (range, monotone starts, tight boxes) cannot see it — only the
        # sanitizer's fresh Algorithm 4 rebuild does.
        from dataclasses import replace

        state = wazi.snapshot_state()
        arrays = dict(state.arrays)
        skip_left = np.array(arrays["skip_left"], dtype=np.int64)
        row = next(
            i for i, target in enumerate(skip_left[:-2].tolist())
            if target not in (-1, i + 1)
        )
        skip_left[row] = row + 1
        arrays["skip_left"] = skip_left
        corrupt = replace(state, arrays=arrays)
        install_sanitizer()
        try:
            with pytest.raises(InvariantViolation) as exc:
                ZIndex.from_snapshot_state(corrupt)
            assert exc.value.invariant == "skip-pointer-rebuild"
        finally:
            uninstall_sanitizer()

    def test_enabled_flag_reads_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not sanitize_enabled()
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not sanitize_enabled()
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize_enabled()

    def test_expected_pointers_match_builder(self, wazi):
        expected = invariants.expected_skip_pointers(wazi.leaflist.entries)
        for criterion, pointers in expected.items():
            stored = [e.skip_pointer(criterion) for e in wazi.leaflist.entries]
            assert pointers == stored
