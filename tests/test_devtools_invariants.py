"""Runtime sanitizer: clean indexes pass, corrupted state is caught with a
named invariant, install/uninstall leaves the library pristine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.devtools import invariants
from repro.devtools.invariants import (
    InvariantViolation,
    check_index_invariants,
    check_shard_conservation,
    install_sanitizer,
    sanitize_enabled,
    sanitizer_installed,
    uninstall_sanitizer,
)
from repro.engine import build_index
from repro.geometry import Point, Rect
from repro.persistence import load_snapshot, save_snapshot
from repro.serving import build_shards, open_sharded
from repro.zindex.base import ZIndex


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(41)
    return [Point(float(x), float(y)) for x, y in rng.uniform(0.0, 1.0, (900, 2))]


@pytest.fixture(scope="module")
def workload():
    return [Rect(0.1, 0.1, 0.45, 0.45), Rect(0.5, 0.5, 0.9, 0.9)]


@pytest.fixture()
def wazi(points, workload):
    return build_index("wazi", points, workload, leaf_capacity=16, seed=0)


@pytest.fixture()
def snapshot(wazi, tmp_path):
    path = tmp_path / "index.snapshot"
    save_snapshot(wazi, path)
    return path


class TestCleanIndexesPass:
    @pytest.mark.parametrize("name", ["base", "wazi"])
    def test_fresh_build(self, name, points, workload):
        index = build_index(name, points, workload, leaf_capacity=16, seed=0)
        check_index_invariants(index)

    def test_after_queries_and_mutations(self, wazi, points):
        wazi.range_query(Rect(0.2, 0.2, 0.7, 0.7))
        check_index_invariants(wazi)
        wazi.insert(Point(0.31, 0.77))
        wazi.delete(points[3])
        check_index_invariants(wazi)

    def test_snapshot_load_memory_and_mmap(self, snapshot):
        check_index_invariants(load_snapshot(snapshot))
        loaded = load_snapshot(snapshot, mmap=True)
        check_index_invariants(loaded)

    def test_non_zindex_passes_vacuously(self, points, workload):
        index = build_index("str", points, workload)
        check_index_invariants(index)


class TestCorruptionIsNamed:
    def test_backward_skip_pointer(self, snapshot):
        index = load_snapshot(snapshot)
        index.leaflist.entries[2].set_skip_pointer("below", 0)
        with pytest.raises(InvariantViolation) as exc:
            check_index_invariants(index)
        assert exc.value.invariant == "skip-pointer-range"
        assert "skip-pointer-range" in str(exc.value)

    def test_in_range_but_wrong_skip_pointer(self, snapshot):
        index = load_snapshot(snapshot)
        assert index.use_skipping
        entries = index.leaflist.entries
        mutated = False
        for position, entry in enumerate(entries[:-2]):
            current = entry.skip_pointer("left")
            if current not in (-1, position + 1):
                entry.set_skip_pointer("left", position + 1)
                mutated = True
                break
        assert mutated, "workload should produce at least one long left pointer"
        with pytest.raises(InvariantViolation) as exc:
            check_index_invariants(index)
        assert exc.value.invariant == "skip-pointer-rebuild"

    def test_shrunken_leaf_box(self, snapshot):
        index = load_snapshot(snapshot)
        packed = index.leaflist.packed()
        packed._ensure_writable()
        row = int(np.flatnonzero(np.asarray(packed.nonempty))[0])
        packed.boxes[row, 2] -= 1e-3
        with pytest.raises(InvariantViolation) as exc:
            check_index_invariants(index)
        assert exc.value.invariant == "leaf-boxes-tight"

    def test_inconsistent_nonempty_flag(self, snapshot):
        index = load_snapshot(snapshot)
        packed = index.leaflist.packed()
        packed._ensure_writable()
        row = int(np.flatnonzero(np.asarray(packed.nonempty))[0])
        packed.nonempty[row] = False
        with pytest.raises(InvariantViolation) as exc:
            check_index_invariants(index)
        assert exc.value.invariant == "leaf-nonempty-consistent"

    def test_stale_flat_cache(self, wazi):
        wazi.range_query(Rect(0.2, 0.2, 0.7, 0.7))  # installs the flat cache
        assert wazi._flat_x is not None
        # Mutate a page behind the cache's back (promote first so the write
        # hits a private buffer, leaving the cached column stale).
        entry = next(e for e in wazi.leaflist.entries if len(e.page) > 0)
        page = entry.page
        page._promote()
        page._xs[0] += 0.5
        with pytest.raises(InvariantViolation) as exc:
            check_index_invariants(wazi)
        assert exc.value.invariant in ("flat-cache-coherent", "leaf-boxes-tight")

    def test_writable_readonly_store_column(self, snapshot):
        index = load_snapshot(snapshot, mmap=True)
        # Forge a writeable column inside the read-only store.
        name = index._store.names()[0]
        index._store._columns[name] = np.array(index._store[name])
        with pytest.raises(InvariantViolation) as exc:
            check_index_invariants(index)
        assert exc.value.invariant == "mmap-read-only"


class TestShardConservation:
    def test_counters_conserved_and_corruption_caught(self, wazi, tmp_path):
        directory = tmp_path / "shards"
        build_shards(wazi, directory, num_shards=3)
        with open_sharded(directory, workers=0) as sharded:
            sharded.reset_counters()
            for query in (Rect(0.1, 0.1, 0.6, 0.6), Rect(0.4, 0.2, 0.9, 0.8)):
                sharded.range_query(query)
            check_shard_conservation(sharded)
            sharded.counters.pages_scanned += 1  # simulate a lost delta
            with pytest.raises(InvariantViolation) as exc:
                check_shard_conservation(sharded)
            assert exc.value.invariant == "shard-conservation"


class TestDeltaConservation:
    def _online(self, points):
        from repro.online import OnlineIndex

        return OnlineIndex(ZIndex(points[:300], leaf_capacity=16))

    def test_clean_online_index_passes(self, points):
        from repro.devtools.invariants import check_delta_conservation

        online = self._online(points)
        check_delta_conservation(online)
        online.insert(Point(0.5, 0.5))
        online.insert(Point(0.5, 0.5))
        online.delete(points[0])
        online.delete(Point(0.5, 0.5))
        check_delta_conservation(online)
        online.compact()
        check_delta_conservation(online)

    def test_unmatched_tombstone_is_caught(self, points):
        from repro.devtools.invariants import check_delta_conservation

        online = self._online(points)
        # corrupt behind the API: a tombstone no delete() ever validated
        online._state.delta.tombstone(99.0, 99.0)
        with pytest.raises(InvariantViolation) as exc:
            check_delta_conservation(online)
        assert exc.value.invariant == "delta-conservation"

    def test_installed_sanitizer_samples_the_write_path(
        self, points, pristine_sanitizer
    ):
        from repro.online.index import OnlineIndex

        install_sanitizer(delta_sample_every=2)
        try:
            online = self._online(points)
            online._state.delta.tombstone(99.0, 99.0)
            with pytest.raises(InvariantViolation) as exc:
                online.insert(Point(0.1, 0.1))
                online.insert(Point(0.2, 0.2))  # second mutation samples
            assert exc.value.invariant == "delta-conservation"
        finally:
            uninstall_sanitizer()
        assert not hasattr(OnlineIndex.insert, "__wrapped__")
        assert not hasattr(OnlineIndex.delete, "__wrapped__")
        assert not hasattr(OnlineIndex.compact, "__wrapped__")

    def test_sample_every_must_be_positive(self, pristine_sanitizer):
        with pytest.raises(ValueError):
            install_sanitizer(delta_sample_every=0)


@pytest.fixture()
def pristine_sanitizer():
    """Start the test with the sanitizer uninstalled; restore after.

    Under a REPRO_SANITIZE=1 run the session fixture installed it already —
    these tests exercise install/uninstall themselves, so they need the
    pristine entry points to compare against.
    """
    was_installed = sanitizer_installed()
    if was_installed:
        uninstall_sanitizer()
    yield
    uninstall_sanitizer()
    if was_installed:
        install_sanitizer()


class TestInstallation:
    def test_install_checks_builds_and_loads(
        self, points, workload, tmp_path, pristine_sanitizer
    ):
        pristine_build = ZIndex._build
        install_sanitizer()
        try:
            assert sanitizer_installed()
            assert ZIndex._build is not pristine_build
            index = build_index("wazi", points[:300], workload, leaf_capacity=8, seed=0)
            path = tmp_path / "s.snapshot"
            save_snapshot(index, path)
            load_snapshot(path, mmap=True)
            install_sanitizer()  # idempotent
        finally:
            uninstall_sanitizer()
        assert not sanitizer_installed()
        assert ZIndex._build is pristine_build

    def test_installed_sanitizer_rejects_corrupt_snapshot_state(
        self, wazi, pristine_sanitizer
    ):
        # An in-range but *wrong* skip pointer: the loader's own validation
        # (range, monotone starts, tight boxes) cannot see it — only the
        # sanitizer's fresh Algorithm 4 rebuild does.
        from dataclasses import replace

        state = wazi.snapshot_state()
        arrays = dict(state.arrays)
        skip_left = np.array(arrays["skip_left"], dtype=np.int64)
        row = next(
            i for i, target in enumerate(skip_left[:-2].tolist())
            if target not in (-1, i + 1)
        )
        skip_left[row] = row + 1
        arrays["skip_left"] = skip_left
        corrupt = replace(state, arrays=arrays)
        install_sanitizer()
        try:
            with pytest.raises(InvariantViolation) as exc:
                ZIndex.from_snapshot_state(corrupt)
            assert exc.value.invariant == "skip-pointer-rebuild"
        finally:
            uninstall_sanitizer()

    def test_enabled_flag_reads_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not sanitize_enabled()
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not sanitize_enabled()
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize_enabled()

    def test_expected_pointers_match_builder(self, wazi):
        expected = invariants.expected_skip_pointers(wazi.leaflist.entries)
        for criterion, pointers in expected.items():
            stored = [e.skip_pointer(criterion) for e in wazi.leaflist.entries]
            assert pointers == stored


# ---------------------------------------------------------------------------
# kernel-parity: sampled differential re-execution of the kernel tier
# ---------------------------------------------------------------------------


def _backend_copy(**overrides):
    """A standalone backend namespace cloned from the reference kernels."""
    import types

    from repro.kernels import KERNEL_NAMES, fallback

    backend = types.SimpleNamespace(BACKEND="numpy")
    for name in KERNEL_NAMES:
        setattr(backend, name, getattr(fallback, name))
    for name, fn in overrides.items():
        setattr(backend, name, fn)
    return backend


def _dropping_range_select(*args, **kwargs):
    # A miscompiled kernel in miniature: silently drops the last match.
    from repro.kernels import fallback

    sel = fallback.range_select(*args, **kwargs)
    return sel[:-1] if sel.size else sel


def _wrong_dtype_range_select(*args, **kwargs):
    from repro.kernels import fallback

    return fallback.range_select(*args, **kwargs).astype(np.int32)


def _off_by_one_range_count(*args, **kwargs):
    from repro.kernels import fallback

    return fallback.range_count(*args, **kwargs) + 1


class TestKernelParityChecker:
    COLUMNS = (
        np.linspace(0.0, 1.0, 32),
        np.linspace(1.0, 0.0, 32),
    )

    def _call_select(self, checker):
        x, y = self.COLUMNS
        return checker.range_select(x, y, 0, 32, 0.0, 0.0, 1.0, 1.0)

    def test_sample_every_must_be_positive(self):
        from repro.devtools.invariants import KernelParityChecker
        from repro.kernels import fallback

        with pytest.raises(ValueError):
            KernelParityChecker(fallback, fallback, sample_every=0)

    def test_clean_backend_passes_and_counts_checks(self):
        from repro.devtools.invariants import KernelParityChecker
        from repro.kernels import fallback

        checker = KernelParityChecker(_backend_copy(), fallback, sample_every=3)
        for _ in range(9):
            self._call_select(checker)
        assert checker.calls == 9
        assert checker.checked == 3  # deterministic 1-in-3, no RNG

    def test_dropped_match_fires_named_violation(self):
        from repro.devtools.invariants import KernelParityChecker
        from repro.kernels import fallback

        checker = KernelParityChecker(
            _backend_copy(range_select=_dropping_range_select),
            fallback, sample_every=1,
        )
        with pytest.raises(InvariantViolation) as exc:
            self._call_select(checker)
        assert exc.value.invariant == "kernel-parity"
        assert "range_select()" in str(exc.value)

    def test_wrong_dtype_fires(self):
        from repro.devtools.invariants import KernelParityChecker
        from repro.kernels import fallback

        checker = KernelParityChecker(
            _backend_copy(range_select=_wrong_dtype_range_select),
            fallback, sample_every=1,
        )
        with pytest.raises(InvariantViolation) as exc:
            self._call_select(checker)
        assert "dtype" in str(exc.value)

    def test_wrong_scalar_fires(self):
        from repro.devtools.invariants import KernelParityChecker
        from repro.kernels import fallback

        checker = KernelParityChecker(
            _backend_copy(range_count=_off_by_one_range_count),
            fallback, sample_every=1,
        )
        x, y = self.COLUMNS
        with pytest.raises(InvariantViolation) as exc:
            checker.range_count(x, y, 0, 32, 0.0, 0.0, 1.0, 1.0)
        assert exc.value.invariant == "kernel-parity"
        assert "range_count()" in str(exc.value)

    def test_sampling_skips_unsampled_calls(self):
        from repro.devtools.invariants import KernelParityChecker
        from repro.kernels import fallback

        checker = KernelParityChecker(
            _backend_copy(range_select=_dropping_range_select),
            fallback, sample_every=2,
        )
        self._call_select(checker)  # call 1 of 2: unsampled, passes through
        with pytest.raises(InvariantViolation):
            self._call_select(checker)  # call 2 of 2: sampled, caught

    def test_tuple_kernel_mismatch_names_element(self):
        from repro.devtools.invariants import assert_kernel_parity

        good = (np.array([1, 2], dtype=np.int64), np.array([0.5, 0.25]))
        bad = (np.array([1, 2], dtype=np.int64), np.array([0.5, 0.75]))
        with pytest.raises(InvariantViolation) as exc:
            assert_kernel_parity("knn_candidates", bad, good)
        assert "element 1" in str(exc.value)


class TestKernelParityInstallation:
    def test_install_interposes_and_uninstall_restores(self, pristine_sanitizer):
        from repro import kernels
        from repro.devtools.invariants import KernelParityChecker

        original = kernels.get_kernels()
        install_sanitizer()
        try:
            active = kernels.get_kernels()
            assert isinstance(active, KernelParityChecker)
            assert active.wrapped is original
            # The wrapped backend's name still shows through.
            assert kernels.backend_name() == getattr(
                original, "BACKEND", kernels.backend_name()
            )
        finally:
            uninstall_sanitizer()
        assert kernels.get_kernels() is original

    def test_sanitized_queries_catch_corrupt_backend(
        self, points, workload, pristine_sanitizer
    ):
        from repro import kernels

        original = kernels.set_kernels(
            _backend_copy(range_select=_dropping_range_select)
        )
        try:
            install_sanitizer(kernel_sample_every=1)
            try:
                index = build_index(
                    "wazi", points[:200], workload, leaf_capacity=8, seed=0
                )
                with pytest.raises(InvariantViolation) as exc:
                    index.range_query(Rect(0.1, 0.1, 0.9, 0.9))
                assert exc.value.invariant == "kernel-parity"
            finally:
                uninstall_sanitizer()
        finally:
            kernels.set_kernels(original)

    def test_sanitized_clean_queries_pass(self, points, workload, pristine_sanitizer):
        from repro import kernels

        install_sanitizer(kernel_sample_every=1)
        try:
            checker = kernels.get_kernels()
            index = build_index(
                "wazi", points[:200], workload, leaf_capacity=8, seed=0
            )
            result = index.range_query(Rect(0.1, 0.1, 0.9, 0.9))
            assert len(result) == index.range_count(Rect(0.1, 0.1, 0.9, 0.9))
            assert checker.checked >= 1  # every call was differentially checked
        finally:
            uninstall_sanitizer()
