"""Tests for the command-line interface (python -m repro / repro.cli).

Fast commands run in-process through ``main(argv)``; ``serve`` — which
blocks — is exercised once as a real subprocess, the way wrappers use it.
"""

import json
import os
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main

ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    """A small built snapshot, reused by every in-process CLI test."""
    path = tmp_path_factory.mktemp("cli") / "small.snapshot"
    code = main([
        "build", str(path), "--num-points", "4000",
        "--workload-queries", "60", "--seed", "17",
    ])
    assert code == 0
    return path


def _last_json(capsys):
    out = capsys.readouterr().out.strip().splitlines()
    return json.loads(out[-1])


class TestBuild:
    def test_build_announces_snapshot(self, snapshot, tmp_path, capsys):
        path = tmp_path / "t.snapshot"
        assert main(["build", str(path), "--num-points", "2000",
                     "--workload-queries", "40"]) == 0
        event = _last_json(capsys)
        assert event["event"] == "built"
        assert event["num_points"] == 2000
        assert Path(event["snapshot"]).exists()

    def test_build_with_shards(self, tmp_path, capsys):
        path = tmp_path / "t.snapshot"
        assert main(["build", str(path), "--num-points", "2000",
                     "--workload-queries", "40", "--shards", "2"]) == 0
        event = _last_json(capsys)
        assert event["event"] == "sharded"
        assert event["num_shards"] == 2
        assert (Path(event["directory"]) / "shards.json").exists()


class TestQuery:
    def test_range_count_only(self, snapshot, capsys):
        assert main(["query", "--snapshot", str(snapshot),
                     "--rect", "10", "10", "50", "50",
                     "--count-only"]) == 0
        body = _last_json(capsys)
        assert body["result"]["count"] > 0

    def test_knn(self, snapshot, capsys):
        assert main(["query", "--snapshot", str(snapshot),
                     "--center", "30", "30", "--k", "5"]) == 0
        body = _last_json(capsys)
        assert body["result"]["count"] == 5

    def test_radius(self, snapshot, capsys):
        assert main(["query", "--snapshot", str(snapshot),
                     "--center", "30", "30", "--radius", "5"]) == 0
        body = _last_json(capsys)
        assert body["result"]["count"] == len(body["result"]["xs"])

    def test_missing_plan_exits_with_usage_error(self, snapshot):
        with pytest.raises(SystemExit):
            main(["query", "--snapshot", str(snapshot)])

    def test_missing_snapshot_is_exit_2(self, tmp_path):
        assert main(["query", "--snapshot", str(tmp_path / "nope.snapshot"),
                     "--rect", "0", "0", "1", "1"]) == 2


class TestAdaptAndExport:
    def test_adapt_missing_snapshot_is_exit_2(self, tmp_path):
        assert main(["adapt", str(tmp_path / "missing.snapshot")]) == 2

    def test_adapt_force_writes_out(self, snapshot, tmp_path, capsys):
        out = tmp_path / "adapted.snapshot"
        code = main(["adapt", str(snapshot), "--out", str(out), "--force"])
        assert code == 0
        event = _last_json(capsys)
        assert event["event"] in ("adapted", "kept")
        if event["event"] == "adapted":
            assert Path(event["snapshot"]).exists()

    def test_export_history(self, snapshot, tmp_path, capsys):
        out = tmp_path / "dump"
        assert main(["export", "--snapshot", str(snapshot),
                     "--out", str(out), "--format", "npy"]) == 0
        event = _last_json(capsys)
        assert event["event"] == "exported"
        ranges = np.load(out / "workload_ranges.npy")
        assert ranges.shape[1] == 5

    def test_export_missing_snapshot_is_exit_2(self, tmp_path):
        assert main(["export", "--snapshot", str(tmp_path / "no.snapshot"),
                     "--out", str(tmp_path / "dump")]) == 2


class TestServeSubprocess:
    @pytest.fixture(scope="class")
    def server(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("serve")
        snapshot = tmp / "serve.snapshot"
        assert main(["build", str(snapshot), "--num-points", "4000",
                     "--workload-queries", "60"]) == 0
        env = dict(os.environ)
        env["PYTHONPATH"] = str(ROOT / "src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", str(snapshot),
             "--port", "0", "--quiet", "--shards", "2"],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            text=True, env=env,
        )
        url = None
        deadline = time.time() + 60
        while time.time() < deadline:
            line = proc.stdout.readline()
            if not line:
                if proc.poll() is not None:
                    break
                continue
            event = json.loads(line)
            if event.get("event") == "ready":
                url = event["url"]
                break
        if url is None:
            proc.kill()
            pytest.fail("repro serve did not announce readiness")
        yield url
        proc.terminate()
        proc.wait(timeout=10)

    def test_healthz(self, server):
        with urllib.request.urlopen(server + "/healthz") as response:
            body = json.loads(response.read())
        assert body["status"] == "ok"
        assert body["num_points"] == 4000

    def test_query_via_cli_url_mode(self, server, capsys):
        assert main(["query", "--url", server,
                     "--rect", "10", "10", "50", "50",
                     "--count-only"]) == 0
        body = _last_json(capsys)
        assert body["result"]["count"] > 0

    def test_metrics_scrape_and_export(self, server, tmp_path, capsys):
        assert main(["export", "--url", server, "--what", "metrics",
                     "--out", str(tmp_path)]) == 0
        event = _last_json(capsys)
        text = Path(event["files"][0]).read_text()
        assert "repro_queries_total" in text

    def test_stats_shows_shards(self, server):
        with urllib.request.urlopen(server + "/stats") as response:
            stats = json.loads(response.read())
        assert stats["num_shards"] == 2


class TestServeOnlineSubprocess:
    @pytest.fixture(scope="class")
    def server(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("serve_online")
        snapshot = tmp / "online.snapshot"
        assert main(["build", str(snapshot), "--num-points", "3000",
                     "--workload-queries", "40"]) == 0
        env = dict(os.environ)
        env["PYTHONPATH"] = str(ROOT / "src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", str(snapshot),
             "--port", "0", "--quiet", "--online",
             "--maintenance-interval", "0.05", "--compact-min-rows", "8"],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            text=True, env=env,
        )
        url = None
        deadline = time.time() + 60
        while time.time() < deadline:
            line = proc.stdout.readline()
            if not line:
                if proc.poll() is not None:
                    break
                continue
            event = json.loads(line)
            if event.get("event") == "ready":
                assert event["online"] is True
                url = event["url"]
                break
        if url is None:
            proc.kill()
            pytest.fail("repro serve --online did not announce readiness")
        yield url
        proc.terminate()
        proc.wait(timeout=10)

    @staticmethod
    def _post(url, path, payload):
        request = urllib.request.Request(
            url + path, data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())

    def test_ingest_maintenance_round_trip(self, server):
        status, body = self._post(server, "/ingest", {
            "insert": [[10.0 + i, 10.0] for i in range(12)],
        })
        assert status == 200
        assert body["inserted"] == 12
        status, body = self._post(server, "/maintenance", {"action": "run_once"})
        assert status == 200
        assert body["status"]["online"] is True
        with urllib.request.urlopen(server + "/maintenance") as response:
            maintenance = json.loads(response.read())
        assert maintenance["online"] is True
        # 12 buffered rows >= compact-min-rows 8: some tick compacted them
        assert maintenance["compactions"] >= 1
        with urllib.request.urlopen(server + "/healthz") as response:
            assert json.loads(response.read())["num_points"] == 3012

    def test_metrics_include_online_families(self, server):
        with urllib.request.urlopen(server + "/metrics") as response:
            text = response.read().decode()
        assert "repro_ingest_total" in text
        assert "repro_maintenance_ticks_total" in text


def test_serve_online_rejects_sharded_backend(tmp_path, capsys):
    snapshot = tmp_path / "guard.snapshot"
    assert main(["build", str(snapshot), "--num-points", "1000",
                 "--workload-queries", "20"]) == 0
    code = main(["serve", str(snapshot), "--port", "0", "--quiet",
                 "--online", "--shards", "2"])
    assert code == 2
    err = json.loads(capsys.readouterr().err.strip().splitlines()[-1])
    assert err["event"] == "error"
    assert "--online" in err["message"]
