"""Unit tests for look-ahead pointer construction and skip-target selection."""

import numpy as np
import pytest

from repro.geometry import Point, Rect
from repro.interfaces import brute_force_range
from repro.storage import LeafEntry, LeafList, Page
from repro.storage.leaflist import END_OF_LIST, SKIP_ABOVE, SKIP_BELOW, SKIP_CRITERIA, SKIP_LEFT, SKIP_RIGHT
from repro.zindex.skipping import (
    build_lookahead_pointers,
    choose_skip_target,
    disqualifying_criteria,
    leaf_box,
)
from repro.core import BaseWithSkipping
from repro.zindex import BaseZIndex


def make_leaflist(boxes):
    """Build a LeafList whose leaves have the given data bounding boxes."""
    leaflist = LeafList()
    for (xmin, ymin, xmax, ymax) in boxes:
        page = Page(4, [Point(xmin, ymin), Point(xmax, ymax)])
        leaflist.append(LeafEntry(cell=Rect(xmin, ymin, xmax, ymax), page=page))
    return leaflist


class TestLeafBox:
    def test_uses_data_bbox_when_present(self):
        entry = LeafEntry(cell=Rect(0, 0, 10, 10), page=Page(4, [Point(1, 1)]))
        assert leaf_box(entry) == Rect(1, 1, 1, 1)

    def test_falls_back_to_cell_when_empty(self):
        entry = LeafEntry(cell=Rect(0, 0, 10, 10), page=Page(4))
        assert leaf_box(entry) == Rect(0, 0, 10, 10)


class TestDisqualifyingCriteria:
    def test_overlapping_leaf_has_no_criteria(self):
        entry = LeafEntry(cell=Rect(0, 0, 4, 4), page=Page(4, [Point(2, 2)]))
        assert disqualifying_criteria(entry, Rect(1, 1, 3, 3)) == ()

    def test_below_and_right_simultaneously(self):
        entry = LeafEntry(cell=Rect(5, 0, 6, 1), page=Page(4, [Point(5.5, 0.5)]))
        criteria = disqualifying_criteria(entry, Rect(0, 2, 4, 4))
        assert SKIP_BELOW in criteria
        assert SKIP_RIGHT in criteria

    @pytest.mark.parametrize(
        "box, expected",
        [
            ((0, 0, 1, 1), SKIP_BELOW),
            ((0, 9, 1, 10), SKIP_ABOVE),
            ((0, 4, 1, 6), SKIP_LEFT),
            ((9, 4, 10, 6), SKIP_RIGHT),
        ],
    )
    def test_single_criterion(self, box, expected):
        entry = LeafEntry(cell=Rect(*box), page=Page(4, [Point(box[0], box[1]), Point(box[2], box[3])]))
        criteria = disqualifying_criteria(entry, Rect(3, 3, 7, 7))
        assert expected in criteria


class TestBuildLookaheadPointers:
    def test_last_leaf_points_to_end(self):
        leaflist = make_leaflist([(0, 0, 1, 1), (2, 2, 3, 3)])
        build_lookahead_pointers(leaflist)
        last = leaflist[-1]
        assert all(last.skip_pointer(c) == END_OF_LIST for c in SKIP_CRITERIA)

    def test_pointers_always_forward(self):
        rng = np.random.default_rng(5)
        boxes = []
        for _ in range(30):
            x, y = rng.uniform(0, 10, size=2)
            boxes.append((x, y, x + rng.uniform(0, 2), y + rng.uniform(0, 2)))
        leaflist = make_leaflist(boxes)
        build_lookahead_pointers(leaflist)
        assert leaflist.check_skip_pointers_forward()

    def test_below_pointer_targets_strictly_higher_leaf(self):
        rng = np.random.default_rng(8)
        boxes = []
        for _ in range(40):
            x, y = rng.uniform(0, 10, size=2)
            boxes.append((x, y, x + 1.0, y + 1.0))
        leaflist = make_leaflist(boxes)
        build_lookahead_pointers(leaflist)
        for entry in leaflist:
            target = entry.below
            if target != END_OF_LIST:
                assert leaf_box(leaflist[target]).ymax > leaf_box(entry).ymax

    def test_skipped_leaves_do_not_improve_criterion(self):
        """Every leaf jumped over by a below-pointer is at most as high as the source."""
        rng = np.random.default_rng(13)
        boxes = []
        for _ in range(40):
            x, y = rng.uniform(0, 10, size=2)
            boxes.append((x, y, x + 1.0, y + 1.0))
        leaflist = make_leaflist(boxes)
        build_lookahead_pointers(leaflist)
        for entry in leaflist:
            target = entry.below
            stop = target if target != END_OF_LIST else len(leaflist)
            for skipped_index in range(entry.order + 1, stop):
                assert leaf_box(leaflist[skipped_index]).ymax <= leaf_box(entry).ymax

    def test_monotone_staircase_points_far_ahead(self):
        # Leaves stacked bottom-to-top: each below-pointer is simply the next
        # leaf, each above-pointer the end of the list.
        leaflist = make_leaflist([(0, float(i), 1, float(i) + 0.5) for i in range(10)])
        build_lookahead_pointers(leaflist)
        for entry in leaflist[:-1]:
            assert entry.below == entry.order + 1
            assert entry.above == END_OF_LIST


class TestChooseSkipTarget:
    def test_returns_none_for_overlapping_leaf(self):
        leaflist = make_leaflist([(0, 0, 4, 4), (5, 5, 6, 6)])
        build_lookahead_pointers(leaflist)
        assert choose_skip_target(leaflist[0], Rect(1, 1, 2, 2)) is None

    def test_prefers_farthest_pointer(self):
        leaflist = make_leaflist([(0, 0, 1, 1), (2, 0, 3, 1), (0, 5, 1, 6), (8, 8, 9, 9)])
        build_lookahead_pointers(leaflist)
        entry = leaflist[0]
        # Query far above and to the right: both Below and Left disqualify the
        # first leaf; the chosen target must be the farther of the two pointers.
        query = Rect(6, 6, 9.5, 9.5)
        target = choose_skip_target(entry, query)
        assert target == max(entry.below, entry.left)

    def test_end_of_list_signal(self):
        leaflist = make_leaflist([(0, 5, 1, 6), (0, 4, 1, 4.5), (0, 3, 1, 3.5)])
        build_lookahead_pointers(leaflist)
        # Query above every leaf except the first; from leaf 1 the Above
        # criterion can never improve, so the scan can stop.
        target = choose_skip_target(leaflist[1], Rect(0, 5.2, 1, 6.0))
        assert target == END_OF_LIST


class TestSkippingEndToEnd:
    def test_base_sk_results_match_base(self, clustered_points, small_workload):
        plain = BaseZIndex(clustered_points, leaf_capacity=32)
        skipping = BaseWithSkipping(clustered_points, leaf_capacity=32)
        for query in small_workload.queries:
            expected = sorted((p.x, p.y) for p in plain.range_query(query))
            got = sorted((p.x, p.y) for p in skipping.range_query(query))
            assert got == expected

    def test_skipping_reduces_bbs_checked(self, clustered_points, small_workload):
        plain = BaseZIndex(clustered_points, leaf_capacity=32)
        skipping = BaseWithSkipping(clustered_points, leaf_capacity=32)
        plain.reset_counters()
        skipping.reset_counters()
        for query in small_workload.queries:
            plain.range_query(query)
            skipping.range_query(query)
        assert skipping.counters.bbs_checked < plain.counters.bbs_checked
        assert skipping.counters.leaves_skipped > 0

    def test_skipping_correct_against_brute_force(self, clustered_points, small_workload):
        skipping = BaseWithSkipping(clustered_points, leaf_capacity=32)
        for query in small_workload.queries[:20]:
            expected = sorted((p.x, p.y) for p in brute_force_range(clustered_points, query))
            got = sorted((p.x, p.y) for p in skipping.range_query(query))
            assert got == expected
