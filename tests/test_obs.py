"""Unit tests for the metrics subsystem (repro.obs) and its engine wiring."""

import numpy as np
import pytest

from repro.engine import SpatialEngine
from repro.obs import (
    COST_FIELDS,
    Counter,
    EngineMetrics,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    dump_workload,
    log_spaced_buckets,
    plan_kind,
    render_csv,
    render_json,
    render_prometheus,
    shard_method_kind,
)
from repro.query import KnnQuery, PointQuery, RadiusQuery, RangeQuery


class TestLogSpacedBuckets:
    def test_default_span(self):
        bounds = log_spaced_buckets()
        assert bounds[0] == pytest.approx(1.0)
        assert bounds[-1] == pytest.approx(1e7)
        assert np.all(np.diff(bounds) > 0)

    def test_per_decade_density(self):
        bounds = log_spaced_buckets(start=1.0, stop=1000.0, per_decade=2)
        assert bounds.size == 7  # 3 decades * 2 + 1

    def test_rejects_bad_ranges(self):
        with pytest.raises(ValueError):
            log_spaced_buckets(start=0.0)
        with pytest.raises(ValueError):
            log_spaced_buckets(start=10.0, stop=1.0)
        with pytest.raises(ValueError):
            log_spaced_buckets(per_decade=0)


class TestCounterAndGauge:
    def test_counter_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_gauge_set_and_inc(self):
        gauge = Gauge("g")
        gauge.set(2.5)
        gauge.inc(0.5)
        assert gauge.value == pytest.approx(3.0)


class TestLatencyHistogram:
    def test_observe_lands_in_le_bucket(self):
        hist = LatencyHistogram("h", buckets=[10.0, 100.0, 1000.0])
        hist.observe(50e-6)  # 50us -> the le=100 bucket
        assert list(hist.bucket_counts) == [0, 1, 0, 0]

    def test_le_is_inclusive(self):
        hist = LatencyHistogram("h", buckets=[10.0, 100.0])
        hist.observe(10e-6)  # exactly the bound: le semantics include it
        assert list(hist.bucket_counts) == [1, 0, 0]

    def test_overflow_bucket(self):
        hist = LatencyHistogram("h", buckets=[10.0])
        hist.observe(1.0)  # 1s >> 10us
        assert list(hist.bucket_counts) == [0, 1]

    def test_observe_block_keeps_totals_exact(self):
        hist = LatencyHistogram("h")
        hist.observe_block(0.004, 8)  # 4ms over 8 queries
        assert hist.count == 8
        assert hist.sum_micros == pytest.approx(4000.0)
        assert hist.mean_micros == pytest.approx(500.0)

    def test_observe_block_ignores_empty(self):
        hist = LatencyHistogram("h")
        hist.observe_block(1.0, 0)
        assert hist.count == 0

    def test_ring_buffer_and_percentile(self):
        hist = LatencyHistogram("h", ring_size=4)
        for micros in (10.0, 20.0, 30.0, 40.0, 50.0):
            hist.observe(micros * 1e-6)
        samples = hist.samples()
        assert samples.size == 4  # oldest sample evicted
        assert 10.0 not in samples
        assert hist.percentile(100) == pytest.approx(50.0)

    def test_empty_percentile_is_zero(self):
        assert LatencyHistogram("h").percentile(99) == 0.0

    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            LatencyHistogram("h", buckets=[])
        with pytest.raises(ValueError):
            LatencyHistogram("h", buckets=[10.0, 5.0])
        with pytest.raises(ValueError):
            LatencyHistogram("h", ring_size=0)

    def test_views_are_read_only(self):
        hist = LatencyHistogram("h")
        with pytest.raises(ValueError):
            hist.bucket_counts[0] = 1
        with pytest.raises(ValueError):
            hist.bucket_bounds[0] = 1.0


class TestMetricsRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_queries_total", kind="range")
        second = registry.counter("repro_queries_total", kind="range")
        assert first is second
        assert len(registry) == 1

    def test_distinct_labels_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("c", kind="range")
        registry.counter("c", kind="knn")
        assert len(registry) == 2

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("c", shard=1, kind="range")
        b = registry.counter("c", kind="range", shard=1)
        assert a is b

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("series")
        with pytest.raises(ValueError):
            registry.gauge("series", other="label")

    def test_get_returns_none_for_missing(self):
        assert MetricsRegistry().get("nope") is None

    def test_collect_is_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.counter("a", z="2")
        registry.counter("a", z="1")
        names = [(i.name, i.labels) for i in registry.collect()]
        assert names == sorted(names)

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c", kind="range").inc(3)
        (entry,) = registry.snapshot()
        assert entry == {
            "name": "c", "kind": "counter",
            "labels": {"kind": "range"}, "value": 3,
        }


class TestExporters:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("repro_queries_total", kind="range").inc(7)
        registry.gauge("repro_drift_score").set(0.25)
        registry.histogram(
            "repro_query_latency_micros", kind="range", buckets=[10.0, 100.0]
        ).observe(50e-6)
        return registry

    def test_prometheus_families_and_samples(self):
        text = render_prometheus(self._populated())
        assert "# TYPE repro_queries_total counter" in text
        assert 'repro_queries_total{kind="range"} 7' in text
        assert "# TYPE repro_drift_score gauge" in text
        assert "repro_drift_score 0.25" in text

    def test_prometheus_histogram_is_cumulative(self):
        text = render_prometheus(self._populated())
        assert 'le="10.0"} 0' in text
        assert 'le="100.0"} 1' in text
        assert 'le="+Inf"} 1' in text
        assert 'repro_query_latency_micros_count{kind="range"} 1' in text
        assert 'repro_query_latency_micros_sum{kind="range"} 50.0' in text

    def test_prometheus_empty_registry(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_render_is_deterministic(self):
        assert render_prometheus(self._populated()) == render_prometheus(
            self._populated()
        )
        assert render_json(self._populated()) == render_json(self._populated())

    def test_json_parses_back(self):
        import json

        doc = json.loads(render_json(self._populated()))
        names = {entry["name"] for entry in doc["metrics"]}
        assert "repro_queries_total" in names

    def test_csv_has_header_and_rows(self):
        lines = render_csv(self._populated()).splitlines()
        assert lines[0] == "name,kind,labels,field,value"
        assert any("le=+Inf" in line for line in lines)
        assert any(line.startswith("repro_queries_total,counter") for line in lines)


class TestPlanKinds:
    def test_plan_kind_labels(self, unit_square):
        from repro.geometry import Point

        assert plan_kind(RangeQuery(unit_square)) == "range"
        assert plan_kind(PointQuery(Point(0.0, 0.0))) == "point"
        assert plan_kind(KnnQuery(Point(0.0, 0.0), 3)) == "knn"
        assert plan_kind(RadiusQuery(Point(0.0, 0.0), 0.1)) == "radius"
        assert plan_kind(object()) == "other"

    def test_shard_method_kind(self):
        assert shard_method_kind("batch_range_rows") == "range"
        assert shard_method_kind("batch_range_count") == "range"
        assert shard_method_kind("batch_knn_rows") == "knn"
        assert shard_method_kind("batch_radius_rows") == "radius"
        assert shard_method_kind("point_query") == "point"
        assert shard_method_kind("mystery") == "other"


class TestEngineIntegration:
    @pytest.fixture()
    def engine(self, clustered_points, small_workload):
        registry = MetricsRegistry()
        return SpatialEngine.build(
            "wazi", clustered_points, small_workload.queries,
            leaf_capacity=64, seed=1, metrics=registry,
        )

    def test_execute_records_kind_and_latency(self, engine, small_workload):
        registry = engine.metrics.registry
        engine.execute(RangeQuery(small_workload.queries[0]))
        assert registry.get("repro_queries_total", kind="range").value == 1
        hist = registry.get("repro_query_latency_micros", kind="range")
        assert hist.count == 1 and hist.sum_micros > 0

    def test_execute_many_records_block(self, engine, small_workload):
        plans = [RangeQuery(rect) for rect in small_workload.queries[:10]]
        engine.execute_many(plans, count_only=True)
        registry = engine.metrics.registry
        assert registry.get("repro_queries_total", kind="range").value == 10
        assert registry.get("repro_query_latency_micros", kind="range").count == 10

    def test_scan_cost_counters_reconcile(self, engine, small_workload):
        plans = [RangeQuery(rect) for rect in small_workload.queries[:10]]
        engine.index.counters.reset()
        engine.execute_many(plans, count_only=True)
        registry = engine.metrics.registry
        snapshot = engine.index.counters.snapshot()
        for field in COST_FIELDS:
            series = registry.get("repro_scan_cost_total", counter=field)
            recorded = series.value if series is not None else 0
            assert recorded == snapshot[field], field

    def test_detached_engine_records_nothing(self, clustered_points, small_workload):
        engine = SpatialEngine.build(
            "wazi", clustered_points, small_workload.queries,
            leaf_capacity=64, seed=1,
        )
        assert engine.metrics is None
        engine.execute(RangeQuery(small_workload.queries[0]))  # must not raise

    def test_attach_metrics_accepts_adapter_and_none(self, engine):
        adapter = engine.metrics
        assert isinstance(adapter, EngineMetrics)
        assert engine.attach_metrics(adapter) is adapter
        engine.attach_metrics(None)
        assert engine.metrics is None

    def test_results_identical_with_and_without_metrics(
        self, engine, clustered_points, small_workload
    ):
        bare = SpatialEngine(engine.index)
        plans = [RangeQuery(rect) for rect in small_workload.queries[:10]]
        assert engine.execute_many(plans, count_only=True) == bare.execute_many(
            plans, count_only=True
        )

    def test_advise_and_adapt_observed(self, engine, small_workload):
        registry = engine.metrics.registry
        engine.start_recording()
        engine.execute_many(
            [RangeQuery(rect) for rect in small_workload.queries],
            count_only=True,
        )
        report = engine.advise()
        verdict = "adapt" if report.should_adapt else "keep"
        assert (
            registry.get("repro_advise_verdicts_total", verdict=verdict).value == 1
        )
        engine.adapt()
        assert registry.get("repro_adapts_total").value == 1
        assert registry.get("repro_last_adapt_seconds").value > 0


class TestDumpWorkload:
    def test_dump_roundtrip(self, tmp_path, clustered_points, small_workload):
        engine = SpatialEngine.build(
            "wazi", clustered_points, small_workload.queries,
            leaf_capacity=64, seed=1,
        )
        engine.start_recording()
        engine.execute_many(
            [RangeQuery(rect) for rect in small_workload.queries[:12]],
            count_only=True,
        )
        from repro.geometry import Point

        engine.execute(KnnQuery(Point(0.5, 0.5), 3))
        written = dump_workload(engine.workload_log, tmp_path, fmt="both")
        names = sorted(p.split("/")[-1] for p in written)
        assert names == [
            "workload_knn.csv", "workload_knn.npy",
            "workload_ranges.csv", "workload_ranges.npy",
        ]
        ranges = np.load(tmp_path / "workload_ranges.npy")
        assert ranges.shape == (12, 5)
        knn = np.load(tmp_path / "workload_knn.npy")
        assert knn.shape == (1, 3)
        assert knn[0].tolist() == [0.5, 0.5, 3.0]
        header = (tmp_path / "workload_ranges.csv").read_text().splitlines()[0]
        assert header == "xmin,ymin,xmax,ymax,count"

    def test_dump_rejects_bad_fmt(self, clustered_points, small_workload):
        engine = SpatialEngine.build(
            "wazi", clustered_points, small_workload.queries,
            leaf_capacity=64, seed=1,
        )
        engine.start_recording()
        with pytest.raises(ValueError):
            dump_workload(engine.workload_log, "/tmp", fmt="xml")
