"""Tests for the Flood grid index and the converged QUASII cracking index."""

import numpy as np
import pytest

from repro.baselines import FloodIndex, QUASIIIndex
from repro.geometry import Point, Rect
from repro.interfaces import brute_force_range


def result_set(points):
    return sorted((p.x, p.y) for p in points)


class TestFloodIndex:
    def test_invalid_cell_target(self):
        with pytest.raises(ValueError):
            FloodIndex([Point(0, 0)], cell_target=0)

    def test_matches_brute_force(self, clustered_points, small_workload):
        index = FloodIndex(clustered_points, small_workload.queries, cell_target=32)
        for query in small_workload.queries[:20]:
            expected = brute_force_range(clustered_points, query)
            assert result_set(index.range_query(query)) == result_set(expected)

    def test_point_queries(self, clustered_points, small_workload):
        index = FloodIndex(clustered_points, small_workload.queries, cell_target=32)
        assert all(index.point_query(p) for p in clustered_points[:100])
        assert not index.point_query(Point(-999.0, -999.0))

    def test_empty_dataset(self):
        index = FloodIndex([], [])
        assert len(index) == 0
        assert index.range_query(Rect(0, 0, 1, 1)) == []

    def test_grid_shape_reflects_cell_target(self, clustered_points):
        fine = FloodIndex(clustered_points, [], cell_target=16)
        coarse = FloodIndex(clustered_points, [], cell_target=128)
        assert fine.columns * fine.rows > coarse.columns * coarse.rows

    def test_layout_search_adapts_to_tall_queries(self):
        rng = np.random.default_rng(0)
        points = [Point(float(x), float(y)) for x, y in rng.uniform(0, 1, size=(4000, 2))]
        tall = [Rect(0.4, 0.0, 0.45, 1.0)] * 60
        wide = [Rect(0.0, 0.4, 1.0, 0.45)] * 60
        tall_index = FloodIndex(points, tall, cell_target=64, seed=0)
        wide_index = FloodIndex(points, wide, cell_target=64, seed=0)
        # Tall queries favour more columns than rows and vice versa.
        assert tall_index.columns >= tall_index.rows
        assert wide_index.rows >= wide_index.columns

    def test_no_tree_traversal_for_projection(self, clustered_points, small_workload):
        index = FloodIndex(clustered_points, small_workload.queries, cell_target=32)
        index.reset_counters()
        index.range_query(small_workload.queries[0])
        assert index.counters.bbs_checked == 0

    def test_insert_and_delete(self, clustered_points, small_workload):
        index = FloodIndex(clustered_points, small_workload.queries, cell_target=32)
        inserted = Point(30.0, 30.0)
        index.insert(inserted)
        assert index.point_query(inserted)
        assert index.delete(inserted)
        assert not index.point_query(inserted)

    def test_insert_outside_extent_rebuilds(self, uniform_points):
        index = FloodIndex(uniform_points, [], cell_target=32)
        outsider = Point(5.0, 5.0)
        index.insert(outsider)
        assert index.point_query(outsider)
        assert len(index) == len(uniform_points) + 1

    def test_range_queries_after_inserts(self, uniform_points, sample_queries):
        index = FloodIndex(uniform_points[:300], [], cell_target=32)
        for point in uniform_points[300:]:
            index.insert(point)
        for query in sample_queries[:10]:
            expected = brute_force_range(uniform_points, query)
            assert result_set(index.range_query(query)) == result_set(expected)

    def test_size_bytes_positive(self, clustered_points):
        assert FloodIndex(clustered_points, [], cell_target=32).size_bytes() > 0


class TestQUASIIIndex:
    def test_invalid_min_piece_size(self):
        with pytest.raises(ValueError):
            QUASIIIndex([Point(0, 0)], [], min_piece_size=0)

    def test_matches_brute_force_on_training_workload(self, clustered_points, small_workload):
        index = QUASIIIndex(clustered_points, small_workload.queries)
        for query in small_workload.queries[:20]:
            expected = brute_force_range(clustered_points, query)
            assert result_set(index.range_query(query)) == result_set(expected)

    def test_matches_brute_force_on_unseen_queries(self, clustered_points, small_workload, sample_queries):
        index = QUASIIIndex(clustered_points, small_workload.queries)
        extent = index.extent()
        for query in sample_queries[:10]:
            scaled = Rect(
                extent.xmin + query.xmin * extent.width,
                extent.ymin + query.ymin * extent.height,
                extent.xmin + query.xmax * extent.width,
                extent.ymin + query.ymax * extent.height,
            )
            expected = brute_force_range(clustered_points, scaled)
            assert result_set(index.range_query(scaled)) == result_set(expected)

    def test_point_queries(self, clustered_points, small_workload):
        index = QUASIIIndex(clustered_points, small_workload.queries)
        assert all(index.point_query(p) for p in clustered_points[:100])
        assert not index.point_query(Point(-1.0, -1.0))

    def test_empty_workload_means_single_column(self, uniform_points):
        index = QUASIIIndex(uniform_points, [])
        assert index.num_pieces() >= 1
        assert len(index.range_query(Rect(-1, -1, 2, 2))) == len(uniform_points)

    def test_converged_layout_is_fragmented(self, clustered_points, small_workload):
        """More training queries crack the layout into more pieces."""
        few = QUASIIIndex(clustered_points, small_workload.queries[:5])
        many = QUASIIIndex(clustered_points, small_workload.queries)
        assert many.num_pieces() >= few.num_pieces()

    def test_max_boundaries_caps_fragmentation(self, clustered_points, small_workload):
        capped = QUASIIIndex(clustered_points, small_workload.queries, max_boundaries=4)
        assert capped.num_pieces() <= (4 + 1) * (4 + 2)

    def test_insert_and_delete(self, clustered_points, small_workload):
        index = QUASIIIndex(clustered_points, small_workload.queries)
        inserted = Point(31.0, 29.0)
        index.insert(inserted)
        assert index.point_query(inserted)
        assert index.delete(inserted)
        assert not index.point_query(inserted)

    def test_all_points_preserved(self, clustered_points, small_workload):
        index = QUASIIIndex(clustered_points, small_workload.queries)
        assert len(index) == len(clustered_points)
        everything = index.range_query(index.extent())
        assert len(everything) == len(clustered_points)

    def test_size_bytes_positive(self, clustered_points, small_workload):
        assert QUASIIIndex(clustered_points, small_workload.queries).size_bytes() > 0
