"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work in the
offline development environment (legacy ``pip install -e . --no-use-pep517``
needs a ``setup.py``; all metadata lives in ``pyproject.toml``).
"""

from setuptools import setup

setup()
